"""Extension: the area-feasibility table (Section I / III-B).

Paper anchors: minimal MAC+buffer hardware ~20% area penalty, inside the
25% ceiling; full-core PIM (prior work) far outside it; column-major
needs 16x the latches of the adder tree.
"""

from repro.experiments import area_budget


def test_area_budget(once):
    result = once(area_budget.run)
    print()
    print(result.render())
    newton = result.row("Newton (adder tree, 1 latch)").report
    assert 0.15 <= newton.overhead_fraction <= 0.25
    assert newton.within_budget
    assert not result.row("full core per bank (prior PIM)").report.within_budget
    tree = newton
    cm = result.row("column-major MACs (Section III-B)").report
    assert cm.latch_area == 16 * tree.latch_area
