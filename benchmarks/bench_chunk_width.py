"""Extension: the chunk-width tradeoff (Section III-C).

Paper anchor: the DRAM-row-wide chunk minimizes output traffic while the
channel-shared global buffer keeps even the widest chunk's area
negligible — the asymmetry that justifies the unusually wide choice.
"""

from repro.experiments import chunk_width_study


def test_chunk_width(once):
    result = once(chunk_width_study.run)
    print()
    print(result.render())
    assert result.output_traffic_hyperbolic()
    assert result.buffer_always_negligible()
    widest = result.rows[-1]
    assert widest.chunk_elems == 512  # Newton's choice: one DRAM row
    assert widest.output_reads == min(r.output_reads for r in result.rows)
