"""Extension: energy per inference (Section V-E's efficiency claim).

Paper anchor: ~10x speedup at only ~2.8x power implies a ~3.6x energy
advantage even when the non-PIM side's compute and transfer energy are
charged at zero.
"""

from repro.experiments import energy_efficiency


def test_energy_efficiency(once):
    result = once(energy_efficiency.run)
    print()
    print(result.render())
    assert 2.0 <= result.gmean_gain <= 4.5
    for row in result.rows:
        assert row.efficiency_gain > 1.0  # Newton wins on every layer
