"""Extension: Newton across DRAM families (the paper's conclusion).

GDDR6-AiM is the configuration SK hynix actually shipped; every family
must beat its own bandwidth bound, with the Section III-F model tracking
each family's operating point.
"""

from repro.experiments import family_study


def test_family_study(once):
    result = once(family_study.run)
    print()
    print(result.render())
    assert result.every_family_benefits()
    for row in result.rows:
        # The per-family analytical model should track the measurement.
        assert row.speedup_vs_ideal < row.model_prediction * 1.1
        assert row.speedup_vs_ideal > row.model_prediction * 0.6
