"""Figure 10: sensitivity to banks per channel (8 / 16 / 32).

Paper anchors: 28x / 54x / 96x — growing, but sublinearly (Amdahl's Law
on the activation overheads).
"""

from repro.experiments import fig10_banks


def test_fig10_banks(once):
    result = once(fig10_banks.run)
    print()
    print(result.render())
    assert result.sublinear()
    assert result.gmean(8) < result.gmean(16) < result.gmean(32)
    # The 8->16 and 16->32 gains in the paper are ~1.9x and ~1.8x; ours
    # must at least show meaningful (>25%) but sub-2x growth.
    assert 1.25 < result.gmean(16) / result.gmean(8) < 2.0
    assert 1.25 < result.gmean(32) / result.gmean(16) < 2.0
