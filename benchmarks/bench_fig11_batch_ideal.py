"""Figure 11: batch-size sensitivity vs Ideal Non-PIM.

Paper anchors: Newton's per-input performance is flat; Ideal Non-PIM
nearly catches up at batch 8 and is ~1.6x faster at batch 16.
"""

import pytest

from repro.experiments import fig11_batch_ideal


def test_fig11_batch_ideal(once):
    result = once(fig11_batch_ideal.run)
    print()
    print(result.render())
    for row in result.rows:
        vals = list(row.newton.values())
        assert max(vals) == pytest.approx(min(vals))  # Newton flat
        assert row.newton[1] > row.ideal[1]  # Newton wins at batch 1
    # The crossover falls at k ~= 8-16 for the steady-state layers.
    for name in ("GNMTs1", "BERTs3", "AlexNetL6"):
        assert result.crossover_batch(name) in (8, 16)
        row = next(r for r in result.rows if r.layer == name)
        ratio_at_16 = row.ideal[16] / row.newton[16]
        assert 1.2 <= ratio_at_16 <= 2.2  # paper: ~1.6x at k=16
