"""Figure 12: batch-size sensitivity vs the realistic GPU.

Paper anchor: a large batch (~64) is needed for the GPU to outperform
Newton; Newton dominates at edge-sized batches (<= 8).
"""

from repro.experiments import fig12_batch_gpu


def test_fig12_batch_gpu(once):
    result = once(fig12_batch_gpu.run)
    print()
    print(result.render())
    for row in result.rows:
        assert result.newton_wins_small_batches(row.layer, up_to=8)
    crossovers = {r.layer: result.crossover_batch(r.layer) for r in result.rows}
    # Steady-state layers cross between 32 and 128, around the paper's 64.
    for name in ("GNMTs1", "GNMTs2", "BERTs3", "AlexNetL6"):
        assert crossovers[name] and 32 <= crossovers[name] <= 128, name
