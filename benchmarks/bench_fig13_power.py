"""Figure 13: Newton's average power normalized to conventional DRAM.

Paper anchors: ~2.8x mean; all-bank COMP phases burn ~4x peak-read power;
Newton's 10x speedup at <3x power is the energy-efficiency argument.
"""

from repro.experiments import fig13_power


def test_fig13_power(once):
    result = once(fig13_power.run)
    print()
    print(result.render())
    assert 2.2 <= result.mean_power <= 3.2
    for row in result.rows:
        assert 1.5 < row.normalized_power < 4.0
        # Compute dominates the energy: the matrix never crosses the PHY.
        assert row.report.compute_energy > row.report.transfer_energy
