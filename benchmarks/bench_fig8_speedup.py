"""Figure 8: Newton / Non-opt-Newton / Ideal Non-PIM speedups over the GPU.

Paper anchors: 54x / 1.48x / 5.4x gmean (layers); Newton 10x over Ideal;
end-to-end key-target mean 49x; AlexNet 1.2x.
"""

from repro.experiments import fig8_speedup


def test_fig8_speedup(once):
    result = once(fig8_speedup.run)
    print()
    print(result.render())
    assert 40 <= result.gmean_newton <= 65
    assert 1.2 <= result.gmean_non_opt <= 2.2
    assert 4.5 <= result.gmean_ideal <= 7.0
    assert 6.5 <= result.newton_over_ideal <= 11
    assert 35 <= result.key_target_mean <= 60
    alexnet = next(r for r in result.model_rows if r.name == "AlexNet")
    assert 1.05 <= alexnet.newton <= 1.5
