"""Figure 9: isolating Newton's optimizations (the full ablation ladder).

Paper anchors: 1.48x without optimizations; ganging is the largest jump;
the complete design reaches 54x.
"""

from repro.experiments import fig9_ablation


def test_fig9_ablation(once):
    result = once(fig9_ablation.run)
    print()
    print(result.render())
    assert result.monotonically_improves()
    speeds = [r.gmean_speedup for r in result.rows]
    jumps = [b / a for a, b in zip(speeds, speeds[1:])]
    assert jumps[0] == max(jumps)  # gang yields the largest improvement
    assert 1.2 <= speeds[0] <= 2.2
    assert speeds[-1] >= 40
