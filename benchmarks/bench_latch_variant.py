"""Section III-C ablation: the rejected four-result-latch option.

Paper anchor: the full-reuse design "performs virtually similarly" to the
four-latch partial-reuse option, so the extra latches buy nothing; the
plain no-reuse layout is clearly worse.
"""

from repro.experiments import latch_variant


def test_latch_variant(once):
    result = once(latch_variant.run)
    print()
    print(result.render())
    for row in result.rows:
        assert row.four_latch_ratio < 1.35
        assert row.no_reuse > row.full_reuse
