"""Extension: AiM under interleaved ordinary DRAM traffic (Section III-D).

Newton memory is still normal memory; this quantifies the compute
slowdown as the host mixes in ordinary reads at tile boundaries.
"""

from repro.experiments import mixed_traffic_study


def test_mixed_traffic(once):
    result = once(mixed_traffic_study.run)
    print()
    print(result.render())
    assert result.slowdown_monotone()
    assert result.rows[0].slowdown == 1.0
    # Even heavy mixing (4 reads/tile) must not dominate the AiM work.
    assert result.rows[-1].slowdown < 2.0
