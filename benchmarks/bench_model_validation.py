"""Section V-A: the III-F analytical model vs the simulator.

Paper anchor: the model's prediction is within ~2% of simulation (the
residual being refresh, which the model ignores).
"""

from repro.experiments import model_validation


def test_model_validation(once):
    result = once(model_validation.run)
    print()
    print(result.render())
    for row in result.rows:
        assert row.error < 0.08, row.layer
    assert 9.0 <= result.predicted_gmean <= 11.0
