"""Extension: adder-tree vs column-major utilization (Section III-B).

Paper anchor: typical matrix heights (512+) exceed total banks (256-384)
but not total lanes, so the tree's unfavourable case is the rarer one.
"""

from repro.experiments import organization_study


def test_organization_study(once):
    result = once(organization_study.run)
    print()
    print(result.render())
    assert result.tree_always_at_least_as_good()
    # The paper's design point: at 512 rows the tree is mostly utilized,
    # column-major mostly idle.
    row512 = next(r for r in result.rows if r.m == 512)
    assert row512.tree > 0.5
    assert row512.column_major < 0.15
