"""Extension: ECC scrub-by-reload overhead (Section III-E).

Paper anchor: reloading the matrix once per ~1000 inputs is "a small
bandwidth overhead" — it must stay under 1% for every Table II layer.
"""

from repro.experiments import scrub_overhead


def test_scrub_overhead(once):
    result = once(scrub_overhead.run)
    print()
    print(result.render())
    assert result.worst_overhead < 0.01
    assert len(result.rows) == 8
