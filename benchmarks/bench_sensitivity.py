"""Extension: timing-parameter sensitivity (DESIGN.md ablations).

The command-gap sweep demonstrates the interface optimizations' purpose:
Non-opt-Newton's runtime scales with the inter-command delay (command-
bandwidth bound) while full Newton barely moves; the tFAW sweep is the
continuous form of the aggressive-tFAW step; refresh costs ~tRFC/tREFI.
"""

from repro.experiments import sensitivity


def test_sensitivity(once):
    result = once(sensitivity.run)
    print()
    print(result.render())
    assert result.full_design_insensitive_to_command_gap()
    # Non-opt is command-bound: cycles ~ linear in the command gap.
    gaps = result.series("t_cmd")
    assert gaps[-1].non_opt_cycles > 3 * gaps[0].non_opt_cycles
    # tFAW only binds the AiM activation stagger: monotone for Newton.
    faws = result.series("t_faw_aim")
    full = [r.full_cycles for r in faws]
    assert all(b >= a for a, b in zip(full, full[1:]))
    # Refresh costs about tRFC/tREFI of the run.
    assert 0.05 < result.refresh_cost_fraction < 0.15
