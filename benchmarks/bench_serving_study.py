"""Extension: tail latency under load (the edge-serving argument).

The ~60x service-time gap on DLRM becomes a ~60x sustainable-throughput
gap at bounded p99 — the quantitative form of the paper's small-batch
edge motivation.
"""

from repro.experiments import serving_study


def test_serving_study(once):
    result = once(serving_study.run)
    print()
    print(result.render())
    assert result.service_ratio > 30
    assert result.gpu_saturation_load() < 0.05
    # Newton's p99 stays within ~12x its service time through 80% load.
    heavy = result.rows[-1]
    assert heavy.newton_load == 0.8
    assert heavy.newton.p99 < 12 * result.newton_service
    # The GPU saturates within the sweep.
    assert any(row.gpu is None for row in result.rows)
