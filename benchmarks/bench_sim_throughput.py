"""Simulator throughput: the steady-state fast path vs per-command issue.

Measures simulated-commands/second and wall time for a representative
Table II layer (AlexNetL7: 2048x2048, one full channel's slice, refresh
enabled, full Newton optimizations) with the tile-schedule fast path on
and off, and writes ``BENCH_sim_throughput.json`` at the repository root
so the perf trajectory is tracked PR over PR.

Run standalone (``python benchmarks/bench_sim_throughput.py``) or under
pytest-benchmark (``pytest benchmarks/bench_sim_throughput.py -s``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.engine import NewtonChannelEngine
from repro.core.optimizations import FULL
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_sim_throughput.json"

LAYER_NAME = "AlexNetL7"
M, N = 2048, 2048
STEADY_RUNS = 3
"""Timed back-to-back GEMVs after one untimed warm-up run."""


def _make_engine(fast: bool) -> "tuple[NewtonChannelEngine, object]":
    engine = NewtonChannelEngine(
        hbm2e_like_config(),
        hbm2e_like_timing(),
        FULL,
        functional=False,
        refresh_enabled=True,
        fast=fast,
    )
    return engine, engine.add_matrix(M, N)


def _measure_mode(fast: bool) -> dict:
    """Wall time and command throughput for one engine mode.

    The cold run covers stream lowering plus (for the fast path) delta
    recording; the steady-state runs are the regime batch sweeps and the
    serving study live in.
    """
    engine, layout = _make_engine(fast)
    t0 = time.perf_counter()
    first = engine.run_gemv(layout)
    cold_wall = time.perf_counter() - t0
    commands_per_run = sum(first.stats["command_counts"].values())

    t0 = time.perf_counter()
    for _ in range(STEADY_RUNS):
        result = engine.run_gemv(layout)
    steady_wall = (time.perf_counter() - t0) / STEADY_RUNS
    return {
        "fast": fast,
        "commands_per_run": commands_per_run,
        "end_cycle": result.end_cycle,
        "cold_wall_s": round(cold_wall, 6),
        "steady_wall_s": round(steady_wall, 6),
        "cold_commands_per_s": round(commands_per_run / cold_wall),
        "steady_commands_per_s": round(commands_per_run / steady_wall),
    }


def measure() -> dict:
    """The full benchmark record (both modes plus derived speedups)."""
    slow = _measure_mode(fast=False)
    fast = _measure_mode(fast=True)
    assert slow["end_cycle"] == fast["end_cycle"], (
        "fast path diverged from the slow path: "
        f"{fast['end_cycle']} vs {slow['end_cycle']} cycles"
    )
    return {
        "benchmark": "sim_throughput",
        "layer": LAYER_NAME,
        "m": M,
        "n": N,
        "refresh_enabled": True,
        "opt": "FULL",
        "steady_runs": STEADY_RUNS,
        "slow": slow,
        "fast": fast,
        "steady_speedup": round(slow["steady_wall_s"] / fast["steady_wall_s"], 2),
        "cold_speedup": round(slow["cold_wall_s"] / fast["cold_wall_s"], 2),
    }


def write_result(record: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def test_sim_throughput(once):
    record = once(measure)
    write_result(record)
    print()
    print(json.dumps(record, indent=2))
    assert record["steady_speedup"] >= 5.0


def main() -> int:
    record = measure()
    write_result(record)
    print(json.dumps(record, indent=2))
    print(f"\nwrote {RESULT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
