"""Simulator throughput: the steady-state fast path vs per-command issue.

Measures simulated-commands/second and wall time for a representative
Table II layer (AlexNetL7: 2048x2048, one full channel's slice, refresh
enabled, full Newton optimizations) with the tile-schedule fast path on
and off, and writes ``BENCH_sim_throughput.json`` at the repository root
so the perf trajectory is tracked PR over PR.

The record also carries the **telemetry overhead**: the slow-path
steady-state cost of cycle attribution, measured against an engine
built with ``telemetry=False``. CI runs ``--quick --check-overhead``
(a smaller layer, gate at 5%) and uploads the ``--metrics`` JSON as an
artifact.

Run standalone (``python benchmarks/bench_sim_throughput.py``) or under
pytest-benchmark (``pytest benchmarks/bench_sim_throughput.py -s``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.engine import NewtonChannelEngine
from repro.core.optimizations import FULL
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_sim_throughput.json"

LAYER_NAME = "AlexNetL7"
M, N = 2048, 2048
QUICK_M, QUICK_N = 512, 1024
STEADY_RUNS = 3
"""Timed back-to-back GEMVs after one untimed warm-up run."""

OVERHEAD_BUDGET_PCT = 5.0
"""Telemetry must cost less than this on slow-path steady state."""

OVERHEAD_TRIALS = 3
"""Interleaved on/off trials; the minimum ratio is reported (noise only
ever inflates a trial, so the minimum is the fairest point estimate)."""

COLD_TRIALS = 3
"""Fresh-engine cold runs per mode; the minimum wall time is reported
(same noise argument as the overhead trials)."""

COLD_SPEEDUP_FLOOR = 3.0
"""The pytest gate on cold speedup — generous against runner noise; the
canonical record targets >= 5x (the burst kernel's design point)."""

COLD_REGRESSION_TOLERANCE = 0.4
"""``--check-cold`` fails below ``committed cold_speedup x tolerance``.
Deliberately generous: the committed record is the canonical AlexNetL7
layer while CI measures ``--quick`` (structurally a few x lower because
fixed per-run costs loom larger on a small layer), and runners are
noisy. A broken burst kernel reverts cold to ~1x, far below any floor
this derives."""


def _make_engine(
    fast: bool, m: int = M, n: int = N, *, telemetry: bool = True
) -> "tuple[NewtonChannelEngine, object]":
    engine = NewtonChannelEngine(
        hbm2e_like_config(),
        hbm2e_like_timing(),
        FULL,
        functional=False,
        refresh_enabled=True,
        fast=fast,
        telemetry=telemetry,
    )
    return engine, engine.add_matrix(m, n)


def _measure_mode(
    fast: bool,
    m: int = M,
    n: int = N,
    runs: int = STEADY_RUNS,
    cold_trials: int = COLD_TRIALS,
) -> dict:
    """Wall time and command throughput for one engine mode.

    The cold section is the first-encounter regime (stream lowering, the
    burst kernel on every tile, delta recording): each trial builds a
    fresh engine so nothing is warm, and the minimum wall over
    ``cold_trials`` is reported. The steady-state runs are the regime
    batch sweeps and the serving study live in.
    """
    cold_wall = float("inf")
    first = engine = layout = None
    for _ in range(cold_trials):
        engine, layout = _make_engine(fast, m, n)
        t0 = time.perf_counter()
        first = engine.run_gemv(layout)
        cold_wall = min(cold_wall, time.perf_counter() - t0)
    commands_per_run = sum(first.stats["command_counts"].values())

    t0 = time.perf_counter()
    for _ in range(runs):
        result = engine.run_gemv(layout)
    steady_wall = (time.perf_counter() - t0) / runs
    return {
        "fast": fast,
        "commands_per_run": commands_per_run,
        "end_cycle": result.end_cycle,
        "cold_trials": cold_trials,
        "cold_wall_s": round(cold_wall, 6),
        "steady_wall_s": round(steady_wall, 6),
        "cold_commands_per_s": round(commands_per_run / cold_wall),
        "steady_commands_per_s": round(commands_per_run / steady_wall),
        "burst_commands_cold": engine.burst_commands,
    }


def _steady_wall(telemetry: bool, m: int, n: int, runs: int) -> float:
    """Slow-path steady wall time per GEMV with telemetry on or off."""
    engine, layout = _make_engine(False, m, n, telemetry=telemetry)
    engine.run_gemv(layout)  # warm-up: stream lowering
    t0 = time.perf_counter()
    for _ in range(runs):
        engine.run_gemv(layout)
    return (time.perf_counter() - t0) / runs


def measure_telemetry_overhead(
    m: int = M, n: int = N, runs: int = STEADY_RUNS, trials: int = OVERHEAD_TRIALS
) -> dict:
    """Cycle-attribution cost on the per-command (slow) path.

    The fast path replays attribution deltas in O(1) per tile, so the
    slow path is where the accounting could hurt; this interleaves
    telemetry-on/off engines and reports the minimum ratio over
    ``trials`` (scheduler noise only ever inflates a single trial).
    """
    best_pct = float("inf")
    for _ in range(trials):
        off = _steady_wall(False, m, n, runs)
        on = _steady_wall(True, m, n, runs)
        best_pct = min(best_pct, (on / off - 1.0) * 100.0)
    return {
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "overhead_pct": round(best_pct, 2),
        "within_budget": best_pct <= OVERHEAD_BUDGET_PCT,
    }


def measure(quick: bool = False, backend: str = "newton", devices: int = 1) -> dict:
    """The full benchmark record (both modes plus derived speedups).

    The canonical record is the single-device cycle-accurate engine
    (``backend="newton"``, ``devices=1``); its ``backend``/``devices``
    keys pin those dimensions in ``BENCH_sim_throughput.json``. Other
    backend/device selections measure end-to-end GEMVs/s through the
    registry (and, for ``devices > 1``, a row-sharded cluster) instead
    of the engine's fast/slow command paths.
    """
    m, n = (QUICK_M, QUICK_N) if quick else (M, N)
    if backend != "newton" or devices != 1:
        return _measure_backend(backend, devices, m, n, quick=quick)
    slow = _measure_mode(fast=False, m=m, n=n)
    fast = _measure_mode(fast=True, m=m, n=n)
    assert slow["end_cycle"] == fast["end_cycle"], (
        "fast path diverged from the slow path: "
        f"{fast['end_cycle']} vs {slow['end_cycle']} cycles"
    )
    return {
        "benchmark": "sim_throughput",
        "layer": LAYER_NAME if not quick else f"quick-{QUICK_M}x{QUICK_N}",
        "m": m,
        "n": n,
        "backend": backend,
        "devices": devices,
        "refresh_enabled": True,
        "opt": "FULL",
        "steady_runs": STEADY_RUNS,
        "quick": quick,
        "slow": slow,
        "fast": fast,
        "steady_speedup": round(slow["steady_wall_s"] / fast["steady_wall_s"], 2),
        "cold_speedup": round(slow["cold_wall_s"] / fast["cold_wall_s"], 2),
        "telemetry": measure_telemetry_overhead(m, n),
    }


def _measure_backend(
    backend: str, devices: int, m: int, n: int, *, quick: bool, runs: int = STEADY_RUNS
) -> dict:
    """GEMV throughput through the backend registry / sharded cluster."""
    from repro.backends import make_backend
    from repro.cluster import ShardedCluster

    kwargs = dict(
        config=hbm2e_like_config(),
        timing=hbm2e_like_timing(),
        opt=FULL,
        functional=False,
        refresh_enabled=True,
    )
    if devices == 1:
        engine = make_backend(backend, **kwargs)
    else:
        engine = ShardedCluster.from_spec(backend, devices, **kwargs)
    handle = engine.load_matrix(m=m, n=n)
    t0 = time.perf_counter()
    first = engine.gemv(handle)
    cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(runs):
        engine.gemv(handle)
    steady_wall = (time.perf_counter() - t0) / runs
    return {
        "benchmark": "sim_throughput",
        "layer": LAYER_NAME if not quick else f"quick-{QUICK_M}x{QUICK_N}",
        "m": m,
        "n": n,
        "backend": backend,
        "devices": devices,
        "refresh_enabled": True,
        "opt": "FULL",
        "steady_runs": runs,
        "quick": quick,
        "cycles": float(first.cycles),
        "cold_wall_s": round(cold_wall, 6),
        "steady_wall_s": round(steady_wall, 6),
        "steady_gemvs_per_s": round(1.0 / steady_wall) if steady_wall else None,
    }


def write_result(record: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def committed_cold_floor(path: Path = RESULT_PATH) -> "float | None":
    """The cold-regression floor from the *committed* benchmark record.

    Must be read before :func:`write_result` overwrites the file. Returns
    ``None`` when no committed record (or no cold number) exists — e.g. a
    fresh clone whose benchmark has never run — in which case the check
    passes vacuously.
    """
    try:
        committed = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    cold = committed.get("cold_speedup")
    if not isinstance(cold, (int, float)) or cold <= 0:
        return None
    return cold * COLD_REGRESSION_TOLERANCE


def check_cold(record: dict, floor: "float | None") -> bool:
    """True when the measured cold speedup clears the committed floor."""
    if floor is None or "cold_speedup" not in record:
        return True
    return record["cold_speedup"] >= floor


def export_metrics(record: dict, path: Path) -> None:
    """Registry-shaped telemetry JSON: bench gauges + a probe breakdown."""
    from repro.telemetry import MetricsRegistry, validate_metrics

    registry = MetricsRegistry()
    if "steady_speedup" in record:
        registry.gauge("bench.steady_speedup").set(record["steady_speedup"])
        registry.gauge("bench.cold_speedup").set(record["cold_speedup"])
        registry.gauge("bench.telemetry_overhead_pct").set(
            record["telemetry"]["overhead_pct"]
        )
        registry.counter("bench.commands_per_run").inc(
            record["slow"]["commands_per_run"]
        )
    else:
        registry.gauge("bench.steady_wall_s").set(record["steady_wall_s"])
    engine, layout = _make_engine(True, record["m"], record["n"])
    result = engine.run_gemv(layout)
    registry.section(
        "probe", validate_metrics(engine.collect_metrics(end=result.end_cycle))
    )
    registry.write_json(path)


def test_sim_throughput(once):
    record = once(measure)
    write_result(record)
    print()
    print(json.dumps(record, indent=2))
    assert record["steady_speedup"] >= 5.0
    assert record["cold_speedup"] >= COLD_SPEEDUP_FLOOR, (
        f"cold speedup {record['cold_speedup']}x below the "
        f"{COLD_SPEEDUP_FLOOR}x floor: the burst kernel regressed"
    )
    assert record["telemetry"]["within_budget"], (
        "telemetry overhead "
        f"{record['telemetry']['overhead_pct']}% exceeds the "
        f"{OVERHEAD_BUDGET_PCT}% budget"
    )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fast-path throughput + telemetry overhead benchmark."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_M}x{QUICK_N} layer; skips the canonical "
        "BENCH_sim_throughput.json update",
    )
    parser.add_argument(
        "--check-overhead",
        action="store_true",
        help="exit 1 when telemetry overhead exceeds "
        f"{OVERHEAD_BUDGET_PCT}%% of slow-path steady-state time",
    )
    parser.add_argument(
        "--check-cold",
        action="store_true",
        help="exit 1 when cold_speedup falls below the committed "
        "BENCH_sim_throughput.json value x "
        f"{COLD_REGRESSION_TOLERANCE} (generous runner-noise tolerance)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="also write a newton-telemetry/v1 JSON export here",
    )
    parser.add_argument(
        "--backend",
        default="newton",
        help="measure GEMV throughput through this registry backend "
        "instead of the engine's fast/slow paths (default: newton)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="N",
        help="row-shard the layer across N devices (a ShardedCluster); "
        "default 1",
    )
    args = parser.parse_args(argv)
    # The committed floor must be captured before write_result overwrites
    # the record this run is about to produce.
    cold_floor = committed_cold_floor() if args.check_cold else None
    record = measure(quick=args.quick, backend=args.backend, devices=args.devices)
    canonical = not args.quick and args.backend == "newton" and args.devices == 1
    if canonical:
        write_result(record)
    print(json.dumps(record, indent=2))
    if canonical:
        print(f"\nwrote {RESULT_PATH}")
    if args.metrics:
        export_metrics(record, Path(args.metrics))
        print(f"wrote metrics to {args.metrics}")
    failed = False
    if args.check_overhead and not record.get("telemetry", {}).get(
        "within_budget", True
    ):
        print(
            f"FAIL: telemetry overhead {record['telemetry']['overhead_pct']}% "
            f"> {OVERHEAD_BUDGET_PCT}% budget"
        )
        failed = True
    if args.check_cold and not check_cold(record, cold_floor):
        print(
            f"FAIL: cold speedup {record['cold_speedup']}x regressed below "
            f"the committed floor {cold_floor:.2f}x "
            f"(committed cold_speedup x {COLD_REGRESSION_TOLERANCE})"
        )
        failed = True
    elif args.check_cold and "cold_speedup" in record:
        floor_txt = "no committed floor" if cold_floor is None else (
            f"floor {cold_floor:.2f}x"
        )
        print(f"cold check OK: {record['cold_speedup']}x ({floor_txt})")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
