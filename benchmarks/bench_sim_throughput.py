"""Simulator throughput: the steady-state fast path vs per-command issue.

Measures simulated-commands/second and wall time for a representative
Table II layer (AlexNetL7: 2048x2048, one full channel's slice, refresh
enabled, full Newton optimizations) with the tile-schedule fast path on
and off, and writes ``BENCH_sim_throughput.json`` at the repository root
so the perf trajectory is tracked PR over PR.

The record also carries the **telemetry overhead**: the slow-path
steady-state cost of cycle attribution, measured against an engine
built with ``telemetry=False``. CI runs ``--quick --check-overhead``
(a smaller layer, gate at 5%) and uploads the ``--metrics`` JSON as an
artifact.

Two further sections track the vectorized functional datapath:

* ``functional`` — MAC throughput of the three datapath tiers
  (``scalar`` / ``tile`` / ``batched``) on a functional-mode GEMV, with
  a bit-identity assertion across tiers. ``--check-functional`` gates
  the batched tier at >= ``FUNCTIONAL_SPEEDUP_FLOOR`` x scalar.
* ``cluster`` — the multiprocessing shard fleet, 1 worker vs 2, with
  bit-identity between fleets. The >= ``CLUSTER_SPEEDUP_FLOOR`` x gate
  only applies when the machine actually has two CPUs to run on
  (``cpu_count`` is recorded in the record either way).
* ``serving`` — the virtual-time gateway (:mod:`repro.serving`):
  simulated requests per wall second, the offline-M/D/c degeneracy
  error (must be ~0), and the continuous-batching mean batch size on a
  backlogged stream.
* ``hetero`` — the cost-model-driven heterogeneous scheduler
  (:mod:`repro.host.hetero`): calibration error against cycle-accurate
  Table II runs, end-to-end cycles of auto vs all-newton vs all-gpu on
  the mixed decode+batch pipeline, and the functional bit-identity
  probe. ``--check-hetero`` gates auto <= best fixed, calibration
  within budget, and bit-identity.

Run standalone (``python benchmarks/bench_sim_throughput.py``) or under
pytest-benchmark (``pytest benchmarks/bench_sim_throughput.py -s``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.core.engine import NewtonChannelEngine
from repro.core.optimizations import FULL
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULT_PATH = REPO_ROOT / "BENCH_sim_throughput.json"

LAYER_NAME = "AlexNetL7"
M, N = 2048, 2048
QUICK_M, QUICK_N = 512, 1024
STEADY_RUNS = 3
"""Timed back-to-back GEMVs after one untimed warm-up run."""

OVERHEAD_BUDGET_PCT = 5.0
"""Telemetry must cost less than this on slow-path steady state."""

OVERHEAD_TRIALS = 3
"""Interleaved on/off trials; the minimum ratio is reported (noise only
ever inflates a trial, so the minimum is the fairest point estimate)."""

COLD_TRIALS = 3
"""Fresh-engine cold runs per mode; the minimum wall time is reported
(same noise argument as the overhead trials)."""

COLD_SPEEDUP_FLOOR = 3.0
"""The pytest gate on cold speedup — generous against runner noise; the
canonical record targets >= 5x (the burst kernel's design point)."""

COLD_REGRESSION_TOLERANCE = 0.4
"""``--check-cold`` fails below ``committed cold_speedup x tolerance``.
Deliberately generous: the committed record is the canonical AlexNetL7
layer while CI measures ``--quick`` (structurally a few x lower because
fixed per-run costs loom larger on a small layer), and runners are
noisy. A broken burst kernel reverts cold to ~1x, far below any floor
this derives."""

FUNCTIONAL_CHANNELS = 2
"""Channels for the functional section. MAC throughput per channel is
what the tiers differ on; a reduced channel count keeps the scalar
reference measurable at the canonical layer size."""

FUNCTIONAL_RUNS = 3
"""Timed runs per fast tier (after one warm-up); the scalar reference
gets a single timed run — it is ~100x slower and noise-dominated
anyway."""

FUNCTIONAL_SPEEDUP_FLOOR = 5.0
"""``--check-functional`` fails when the batched tier is not at least
this much faster than the scalar reference. The measured margin is
~20-100x; a floor this low only trips when vectorization genuinely
broke."""

CLUSTER_BATCH = 4
"""Inputs per fleet measurement (one ``gemv_batch`` round-trip)."""

CLUSTER_SPEEDUP_FLOOR = 1.7
"""Minimum 2-worker-over-1-worker fleet speedup — gated only when the
benchmarking machine has >= 2 CPUs (a single-core container cannot
express process parallelism, but its record still pins bit-identity)."""

FUSED_SHAPES = ((1024, 1024), (4096, 1024), (1024, 4096))
"""The three distinct GEMV shapes of a BERT-large encoder block."""

FUSED_SAVED_FLOOR = 1000.0
"""``--check-fused`` fails when the summed steady-state saving of the
fused lowering across the BERT-large block shapes (refresh off — with
refresh on the saving can be absorbed by cadence pinning) falls below
this many cycles. The committed measurement is ~1,476 cycles (one
GWRITE command per 512-element input chunk elided from each stream);
the floor only trips when fusion stops eliding GWRITEs at all."""

DECODE_STEPS = 8
DECODE_QUICK_STEPS = 4
"""Tokens decoded by the bench's KV-cache session (quick: CI)."""

HETERO_D = 1024
HETERO_QUICK_D = 256
"""Hidden dimension of the mixed decode+batch pipeline the hetero
section plans over (quick: CI — smaller layers, same structure)."""

HETERO_BULK_BATCH = 128
HETERO_QUICK_BULK_BATCH = 128
"""Batch of the pipeline's bulk stages — past the Figure 12 crossover
even at the quick hidden dimension, so auto placement has a real
GPU-favored regime to find in both modes."""

HETERO_QUICK_CALIBRATION = ("DLRMs1", "BERTs1", "GNMTs1")
"""Quick mode calibrates on these Table II layers only (the full run
measures all eight); a spread of small/medium/large keeps the geometric
mean honest without eight cycle-accurate measurements in CI."""


def _make_engine(
    fast: bool, m: int = M, n: int = N, *, telemetry: bool = True
) -> "tuple[NewtonChannelEngine, object]":
    engine = NewtonChannelEngine(
        hbm2e_like_config(),
        hbm2e_like_timing(),
        FULL,
        functional=False,
        refresh_enabled=True,
        fast=fast,
        telemetry=telemetry,
    )
    return engine, engine.add_matrix(m, n)


def _measure_mode(
    fast: bool,
    m: int = M,
    n: int = N,
    runs: int = STEADY_RUNS,
    cold_trials: int = COLD_TRIALS,
) -> dict:
    """Wall time and command throughput for one engine mode.

    The cold section is the first-encounter regime (stream lowering, the
    burst kernel on every tile, delta recording): each trial builds a
    fresh engine so nothing is warm, and the minimum wall over
    ``cold_trials`` is reported. The steady-state runs are the regime
    batch sweeps and the serving study live in.
    """
    cold_wall = float("inf")
    first = engine = layout = None
    for _ in range(cold_trials):
        engine, layout = _make_engine(fast, m, n)
        t0 = time.perf_counter()
        first = engine.run_gemv(layout)
        cold_wall = min(cold_wall, time.perf_counter() - t0)
    commands_per_run = sum(first.stats["command_counts"].values())

    t0 = time.perf_counter()
    for _ in range(runs):
        result = engine.run_gemv(layout)
    steady_wall = (time.perf_counter() - t0) / runs
    return {
        "fast": fast,
        "commands_per_run": commands_per_run,
        "end_cycle": result.end_cycle,
        "cold_trials": cold_trials,
        "cold_wall_s": round(cold_wall, 6),
        "steady_wall_s": round(steady_wall, 6),
        "cold_commands_per_s": round(commands_per_run / cold_wall),
        "steady_commands_per_s": round(commands_per_run / steady_wall),
        "burst_commands_cold": engine.burst_commands,
    }


def _steady_wall(telemetry: bool, m: int, n: int, runs: int) -> float:
    """Slow-path steady wall time per GEMV with telemetry on or off."""
    engine, layout = _make_engine(False, m, n, telemetry=telemetry)
    engine.run_gemv(layout)  # warm-up: stream lowering
    t0 = time.perf_counter()
    for _ in range(runs):
        engine.run_gemv(layout)
    return (time.perf_counter() - t0) / runs


def measure_telemetry_overhead(
    m: int = M, n: int = N, runs: int = STEADY_RUNS, trials: int = OVERHEAD_TRIALS
) -> dict:
    """Cycle-attribution cost on the per-command (slow) path.

    The fast path replays attribution deltas in O(1) per tile, so the
    slow path is where the accounting could hurt; this interleaves
    telemetry-on/off engines and reports the minimum ratio over
    ``trials`` (scheduler noise only ever inflates a single trial).
    """
    best_pct = float("inf")
    for _ in range(trials):
        off = _steady_wall(False, m, n, runs)
        on = _steady_wall(True, m, n, runs)
        best_pct = min(best_pct, (on / off - 1.0) * 100.0)
    return {
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "overhead_pct": round(best_pct, 2),
        "within_budget": best_pct <= OVERHEAD_BUDGET_PCT,
    }


def _available_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _functional_config():
    return hbm2e_like_config(
        num_channels=FUNCTIONAL_CHANNELS, banks_per_channel=16
    )


def measure_functional(quick: bool = False) -> dict:
    """MAC throughput of the three functional-datapath tiers.

    Each tier runs the same GEMV on the same matrix; outputs must be
    bit-identical (the tiers' defining contract), and the speedups are
    steady-state walls relative to the scalar reference.
    """
    import numpy as np

    from repro.core.device import NewtonDevice
    from repro.workloads.generator import generate_layer_data

    m, n = (QUICK_M, QUICK_N) if quick else (M, N)
    data = generate_layer_data(m, n, seed=3)
    tiers: dict = {}
    outputs: dict = {}
    for tier in ("scalar", "tile", "batched"):
        device = NewtonDevice(
            _functional_config(),
            hbm2e_like_timing(),
            FULL,
            functional=True,
            datapath=tier,
        )
        handle = device.load_matrix(data.matrix)
        device.gemv(handle, data.vector)  # warm-up: stream lowering
        runs = 1 if tier == "scalar" else FUNCTIONAL_RUNS
        wall = float("inf")
        result = None
        for _ in range(runs):
            t0 = time.perf_counter()
            result = device.gemv(handle, data.vector)
            wall = min(wall, time.perf_counter() - t0)
        outputs[tier] = result.output
        tiers[tier] = {
            "wall_s": round(wall, 6),
            "macs_per_s": round(m * n / wall),
        }
    bit_identical = all(
        np.array_equal(
            outputs[tier].view(np.uint32), outputs["scalar"].view(np.uint32)
        )
        for tier in ("tile", "batched")
    )
    assert bit_identical, "datapath tiers diverged bit-wise"
    scalar_wall = tiers["scalar"]["wall_s"]
    return {
        "m": m,
        "n": n,
        "channels": FUNCTIONAL_CHANNELS,
        "tiers": tiers,
        "bit_identical": bit_identical,
        "tile_speedup_vs_scalar": round(
            scalar_wall / tiers["tile"]["wall_s"], 1
        ),
        "batched_speedup_vs_scalar": round(
            scalar_wall / tiers["batched"]["wall_s"], 1
        ),
    }


def measure_process_cluster(quick: bool = False) -> dict:
    """The multiprocessing shard fleet: 1 worker vs 2, bit-identity and
    wall-clock speedup on a functional batch.

    The speedup is only meaningful with >= 2 CPUs; ``cpu_count`` is
    recorded so :func:`check_functional` can gate conditionally.
    """
    import numpy as np

    from repro.cluster import ProcessShardedCluster
    from repro.workloads.generator import generate_layer_data

    m, n = (QUICK_M, QUICK_N) if quick else (M, N)
    data = generate_layer_data(m, n, seed=3)
    rng = np.random.default_rng(17)
    vectors = rng.standard_normal((CLUSTER_BATCH, n)).astype(np.float32)
    walls: dict = {}
    outputs: dict = {}
    for devices in (1, 2):
        with ProcessShardedCluster(
            devices,
            config=_functional_config(),
            timing=hbm2e_like_timing(),
            opt=FULL,
            functional=True,
        ) as fleet:
            handle = fleet.load_matrix(data.matrix)
            fleet.gemv_batch(handle, vectors)  # warm-up
            t0 = time.perf_counter()
            runs = fleet.gemv_batch(handle, vectors)
            walls[devices] = time.perf_counter() - t0
            outputs[devices] = np.stack([run.output for run in runs])
    bit_identical = bool(
        np.array_equal(
            outputs[1].view(np.uint32), outputs[2].view(np.uint32)
        )
    )
    assert bit_identical, "2-worker fleet diverged bit-wise from 1 worker"
    return {
        "m": m,
        "n": n,
        "batch": CLUSTER_BATCH,
        "cpu_count": _available_cpus(),
        "wall_1worker_s": round(walls[1], 6),
        "wall_2workers_s": round(walls[2], 6),
        "speedup_2workers": round(walls[1] / walls[2], 2),
        "bit_identical": bit_identical,
    }


def measure_fused(quick: bool = False) -> dict:
    """Fused (GWRITE-less) lowering vs the host round trip.

    Timing side: per-shape steady-state cycles over the BERT-large block
    shapes with refresh off, each mode on its own fresh engine (see
    :mod:`repro.experiments.fused_layer_study` for the refresh-on
    story). Functional side: one fused-vs-unfused GEMV pair must be
    bit-identical — fusion's defining contract.
    """
    import numpy as np

    from repro.backends import make_backend
    from repro.workloads.generator import generate_layer_data

    shapes = FUSED_SHAPES[:1] if quick else FUSED_SHAPES
    rows = []
    for m, n in shapes:
        per_mode = {}
        for fused in (False, True):
            engine = make_backend(
                "newton",
                config=hbm2e_like_config(),
                timing=hbm2e_like_timing(),
                opt=FULL,
                functional=False,
                refresh_enabled=False,
            )
            handle = engine.load_matrix(m=m, n=n)
            engine.gemv(handle, fused_input=fused)  # cold: caches warm
            per_mode[fused] = float(
                engine.gemv(handle, fused_input=fused).cycles
            )
            engine.close()
        rows.append(
            {
                "m": m,
                "n": n,
                "roundtrip_cycles": per_mode[False],
                "fused_cycles": per_mode[True],
                "saved_cycles": per_mode[False] - per_mode[True],
            }
        )
    data = generate_layer_data(QUICK_M, QUICK_N, seed=3)
    outputs = {}
    for fused in (False, True):
        engine = make_backend(
            "newton",
            config=_functional_config(),
            timing=hbm2e_like_timing(),
            opt=FULL,
            functional=True,
        )
        handle = engine.load_matrix(data.matrix)
        outputs[fused] = engine.gemv(
            handle, data.vector, fused_input=fused
        ).output
        engine.close()
    bit_identical = bool(
        np.array_equal(
            outputs[True].view(np.uint32), outputs[False].view(np.uint32)
        )
    )
    assert bit_identical, "fused GEMV diverged bit-wise from round-trip"
    return {
        "refresh_enabled": False,
        "shapes": rows,
        "saved_cycles_total": sum(r["saved_cycles"] for r in rows),
        "bit_identical": bit_identical,
    }


def measure_decode(quick: bool = False) -> dict:
    """Session-based decode: KV-cache stepping throughput + per-step tail.

    Runs the decode scenario graph through a fused
    :class:`~repro.host.graph_runtime.GraphSession` (wall-clock steps/s,
    fused-GEMV fraction, host bytes the bank-resident cache avoided),
    then replays the measured per-step service time through the serving
    gateway as multi-step decode sessions for per-step p50/p99.
    """
    from repro.backends import make_backend
    from repro.serving import (
        FixedServiceReplica,
        GatewayConfig,
        ServingGateway,
        SLOClass,
        Trace,
        decode_sessions,
    )
    from repro.workloads.scenarios import scenario_model

    import numpy as np

    steps = DECODE_QUICK_STEPS if quick else DECODE_STEPS
    spec = scenario_model("decode", d=128, window=steps, blocks=1)
    runs: dict = {}
    for fused in (True, False):
        engine = make_backend(
            "newton",
            config=_functional_config(),
            timing=hbm2e_like_timing(),
            opt=FULL,
            functional=True,
        )
        session = engine.open_session(spec, fused=fused, seed=0)
        try:
            t0 = time.perf_counter()
            step_results = session.run_steps(steps)
            runs[fused] = {
                "wall": time.perf_counter() - t0,
                "results": step_results,
                "kv_bytes_saved": session.kv_bytes_saved,
            }
        finally:
            session.close()
            engine.close()
    bit_identical = all(
        np.array_equal(
            f.output.view(np.uint32), u.output.view(np.uint32)
        )
        for f, u in zip(runs[True]["results"], runs[False]["results"])
    )
    assert bit_identical, "fused decode session diverged from unfused"
    results = runs[True]["results"]
    wall = runs[True]["wall"]
    kv_bytes_saved = runs[True]["kv_bytes_saved"]
    step_cycles = sum(r.total_cycles for r in results) / steps
    gateway = ServingGateway(
        lambda: FixedServiceReplica(step_cycles),
        GatewayConfig(
            max_batch=4,
            classes=(SLOClass("decode", p99_budget=float("inf")),),
        ),
    )
    try:
        served = gateway.run(
            Trace(kind="sessions", seed=0, mean_interarrival=0.0, requests=()),
            decode_sessions(4, steps=steps, interarrival=2.0 * step_cycles),
        )
    finally:
        gateway.close()
    assert served.sessions is not None
    return {
        "steps": steps,
        "wall_s": round(wall, 6),
        "steps_per_s": round(steps / wall, 2),
        "step_cycles_mean": round(step_cycles, 1),
        "fused_gemvs": sum(r.fused_gemvs for r in results),
        "gemvs": sum(r.gemvs for r in results),
        "kv_bytes_saved": kv_bytes_saved,
        "bit_identical": bit_identical,
        "gateway": {
            "sessions": served.sessions.offered,
            "step_p50_cycles": round(served.sessions.step_p50, 1),
            "step_p99_cycles": round(served.sessions.step_p99, 1),
            "mean_session_makespan": round(
                served.sessions.mean_makespan, 1
            ),
        },
    }


def measure_hetero(quick: bool = False) -> dict:
    """Heterogeneous placement: auto vs the two fixed policies.

    Calibrates the cost model against cycle-accurate Table II runs (all
    eight layers, or :data:`HETERO_QUICK_CALIBRATION` in quick mode),
    plans the mixed decode+batch pipeline under every placement policy,
    and runs the functional bit-identity probe (hetero/auto outputs vs
    all-newton). ``--check-hetero`` gates on auto never losing to the
    best fixed policy, calibration staying within its error budget, and
    bit-identity holding.
    """
    from repro.experiments.common import eval_config, eval_timing
    from repro.experiments.hetero_placement import check_bit_identity
    from repro.host.hetero import (
        CALIBRATION_ERROR_BUDGET_PCT,
        PLACEMENT_POLICIES,
        CostModel,
        TransferModel,
        mixed_decode_batch_stages,
        plan_placement,
    )
    from repro.workloads.catalog import layer_by_name

    cost = CostModel(eval_config(), eval_timing())
    layers = (
        [layer_by_name(name) for name in HETERO_QUICK_CALIBRATION]
        if quick
        else None
    )
    t0 = time.perf_counter()
    calibration = cost.calibrate(layers)
    calibrate_wall = time.perf_counter() - t0
    transfer = TransferModel(cost.config, cost.timing)
    d = HETERO_QUICK_D if quick else HETERO_D
    bulk = HETERO_QUICK_BULK_BATCH if quick else HETERO_BULK_BATCH
    stages = mixed_decode_batch_stages(d=d, bulk_batch=bulk, blocks=2)
    t0 = time.perf_counter()
    plans = {
        policy: plan_placement(stages, cost, transfer, policy=policy)
        for policy in PLACEMENT_POLICIES
    }
    plan_wall = time.perf_counter() - t0
    bit_identical = check_bit_identity(steps=2 if quick else 3)
    assert bit_identical, "hetero/auto diverged bit-wise from all-newton"
    auto = plans["auto"].total_cycles
    best_fixed = min(
        plans["all-newton"].total_cycles, plans["all-gpu"].total_cycles
    )
    return {
        "d": d,
        "bulk_batch": bulk,
        "stages": len(stages),
        "calibration_layers": len(calibration.rows),
        "calibration_scale": round(calibration.scale, 4),
        "calibration_max_error_pct": round(calibration.max_error_pct, 2),
        "calibration_budget_pct": CALIBRATION_ERROR_BUDGET_PCT,
        "calibration_within_budget": calibration.within_budget,
        "calibrate_wall_s": round(calibrate_wall, 6),
        "plan_wall_s": round(plan_wall, 6),
        "total_cycles": {
            policy: plans[policy].total_cycles for policy in PLACEMENT_POLICIES
        },
        "auto_crossings": plans["auto"].crossings,
        "auto_backends_used": list(plans["auto"].backends_used),
        "auto_not_worse": auto <= best_fixed + 1e-9,
        "auto_speedup_vs_best_fixed": round(best_fixed / auto, 3),
        "bit_identical": bit_identical,
    }


SERVING_REQUESTS = 5000
SERVING_QUICK_REQUESTS = 1500
SERVING_SERVICE = 1000.0
"""Synthetic deterministic service time for the gateway section (the
section measures the *gateway kernel's* speed and correctness, not a
backend's)."""


def measure_serving(quick: bool = False) -> dict:
    """The serving gateway: simulation throughput plus two invariants.

    * ``degeneracy_p99_error`` — relative p99 disagreement between the
      window-0/batch-1 gateway and the offline M/D/c model on the same
      seeded stream (identical by construction; recorded to catch
      drift);
    * ``batched`` — mean continuous-batch size on a stream offered at
      3x batch-1 capacity (the batcher must saturate toward
      ``max_batch`` under backlog).
    """
    from repro.host.serving import ServingSimulator
    from repro.serving import (
        FixedServiceReplica,
        GatewayConfig,
        ServingGateway,
        SLOClass,
        interarrival_for_load,
        poisson_trace,
    )

    requests = SERVING_QUICK_REQUESTS if quick else SERVING_REQUESTS
    service, load, servers = SERVING_SERVICE, 0.8, 2
    classes = (SLOClass("interactive"),)
    offline = ServingSimulator(service, seed=0, servers=servers).simulate(
        load, requests
    )
    trace = poisson_trace(
        interarrival_for_load(service, load, servers), requests, seed=0
    )
    gateway = ServingGateway(
        lambda: FixedServiceReplica(service),
        GatewayConfig(window_cycles=0.0, max_batch=1, min_replicas=servers,
                      classes=classes),
    )
    t0 = time.perf_counter()
    result = gateway.run(trace)
    wall = time.perf_counter() - t0
    backlogged = poisson_trace(
        interarrival_for_load(service, 3.0), requests, seed=1
    )
    batched = ServingGateway(
        lambda: FixedServiceReplica(service),
        GatewayConfig(window_cycles=2 * service, max_batch=8,
                      queue_depth=65536, classes=classes),
    ).run(backlogged)
    return {
        "requests": requests,
        "service_cycles": service,
        "load": load,
        "replicas": servers,
        "wall_s": round(wall, 6),
        "requests_per_s": round(requests / wall),
        "degeneracy_p99_error": abs(result.p99 - offline.p99) / offline.p99,
        "batched": {
            "load": 3.0,
            "mean_batch": round(batched.mean_batch, 2),
            "max_batch_served": batched.max_batch_served,
            "p99_cycles": round(batched.p99, 1),
            "shed": batched.shed,
        },
    }


def measure_dse(quick: bool = False) -> dict:
    """The design-space explorer: sweep throughput plus its invariants.

    Runs the 12-point smoke space in-process and records points/s, the
    per-workload front sizes, and the schedule-cache sharing counters
    (``--check-dse`` gates on the schema, non-empty fronts, both rival
    families being present, and cross-point cache hits actually
    occurring). Quick and full modes measure the same space — the sweep
    is already CI-sized; the full canonical sweep lives in the committed
    ``reports/design-space-canonical.json``.
    """
    del quick  # one size: the smoke sweep is CI-cheap by construction
    from repro.explore import DSE_SCHEMA, explore, smoke_space

    space = smoke_space()
    t0 = time.perf_counter()
    outcome = explore(space, jobs=1, seed=0)
    wall = time.perf_counter() - t0
    report = outcome.report
    return {
        "space": space.name,
        "schema": report["schema"],
        "schema_ok": report["schema"] == DSE_SCHEMA,
        "valid_points": report["valid_points"],
        "enumerated_points": report["enumerated_points"],
        "families": report["families_evaluated"],
        "front_sizes": {
            name: len(ids) for name, ids in report["pareto"].items()
        },
        "wall_s": round(wall, 6),
        "points_per_s": round(report["valid_points"] / wall, 1),
        "cache": dict(outcome.cache_stats),
    }


def measure(quick: bool = False, backend: str = "newton", devices: int = 1) -> dict:
    """The full benchmark record (both modes plus derived speedups).

    The canonical record is the single-device cycle-accurate engine
    (``backend="newton"``, ``devices=1``); its ``backend``/``devices``
    keys pin those dimensions in ``BENCH_sim_throughput.json``. Other
    backend/device selections measure end-to-end GEMVs/s through the
    registry (and, for ``devices > 1``, a row-sharded cluster) instead
    of the engine's fast/slow command paths.
    """
    m, n = (QUICK_M, QUICK_N) if quick else (M, N)
    if backend != "newton" or devices != 1:
        return _measure_backend(backend, devices, m, n, quick=quick)
    slow = _measure_mode(fast=False, m=m, n=n)
    fast = _measure_mode(fast=True, m=m, n=n)
    assert slow["end_cycle"] == fast["end_cycle"], (
        "fast path diverged from the slow path: "
        f"{fast['end_cycle']} vs {slow['end_cycle']} cycles"
    )
    return {
        "benchmark": "sim_throughput",
        "layer": LAYER_NAME if not quick else f"quick-{QUICK_M}x{QUICK_N}",
        "m": m,
        "n": n,
        "backend": backend,
        "devices": devices,
        "refresh_enabled": True,
        "opt": "FULL",
        "steady_runs": STEADY_RUNS,
        "quick": quick,
        "slow": slow,
        "fast": fast,
        "steady_speedup": round(slow["steady_wall_s"] / fast["steady_wall_s"], 2),
        "cold_speedup": round(slow["cold_wall_s"] / fast["cold_wall_s"], 2),
        "telemetry": measure_telemetry_overhead(m, n),
        "functional": measure_functional(quick),
        "cluster": measure_process_cluster(quick),
        "serving": measure_serving(quick),
        "fused": measure_fused(quick),
        "decode": measure_decode(quick),
        "hetero": measure_hetero(quick),
        "dse": measure_dse(quick),
    }


def _measure_backend(
    backend: str, devices: int, m: int, n: int, *, quick: bool, runs: int = STEADY_RUNS
) -> dict:
    """GEMV throughput through the backend registry / sharded cluster."""
    from repro.backends import make_backend
    from repro.cluster import ShardedCluster

    kwargs = dict(
        config=hbm2e_like_config(),
        timing=hbm2e_like_timing(),
        opt=FULL,
        functional=False,
        refresh_enabled=True,
    )
    if devices == 1:
        engine = make_backend(backend, **kwargs)
    else:
        engine = ShardedCluster.from_spec(backend, devices, **kwargs)
    handle = engine.load_matrix(m=m, n=n)
    t0 = time.perf_counter()
    first = engine.gemv(handle)
    cold_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(runs):
        engine.gemv(handle)
    steady_wall = (time.perf_counter() - t0) / runs
    return {
        "benchmark": "sim_throughput",
        "layer": LAYER_NAME if not quick else f"quick-{QUICK_M}x{QUICK_N}",
        "m": m,
        "n": n,
        "backend": backend,
        "devices": devices,
        "refresh_enabled": True,
        "opt": "FULL",
        "steady_runs": runs,
        "quick": quick,
        "cycles": float(first.cycles),
        "cold_wall_s": round(cold_wall, 6),
        "steady_wall_s": round(steady_wall, 6),
        "steady_gemvs_per_s": round(1.0 / steady_wall) if steady_wall else None,
    }


def write_result(record: dict, path: Path = RESULT_PATH) -> None:
    path.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")


def committed_cold_floor(path: Path = RESULT_PATH) -> "float | None":
    """The cold-regression floor from the *committed* benchmark record.

    Must be read before :func:`write_result` overwrites the file. Returns
    ``None`` when no committed record (or no cold number) exists — e.g. a
    fresh clone whose benchmark has never run — in which case the check
    passes vacuously.
    """
    try:
        committed = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    cold = committed.get("cold_speedup")
    if not isinstance(cold, (int, float)) or cold <= 0:
        return None
    return cold * COLD_REGRESSION_TOLERANCE


def check_cold(record: dict, floor: "float | None") -> bool:
    """True when the measured cold speedup clears the committed floor."""
    if floor is None or "cold_speedup" not in record:
        return True
    return record["cold_speedup"] >= floor


def check_functional(record: dict) -> "tuple[bool, str]":
    """Gate the vectorized-datapath sections of a benchmark record.

    Always requires bit-identity (tiers and fleets); requires the
    batched tier >= ``FUNCTIONAL_SPEEDUP_FLOOR`` x scalar; requires the
    2-worker fleet >= ``CLUSTER_SPEEDUP_FLOOR`` x only on machines with
    at least two CPUs. Returns (ok, reason).
    """
    functional = record.get("functional")
    if functional is None:
        return True, "no functional section (non-canonical record)"
    if not functional["bit_identical"]:
        return False, "datapath tiers are not bit-identical"
    speedup = functional["batched_speedup_vs_scalar"]
    if speedup < FUNCTIONAL_SPEEDUP_FLOOR:
        return False, (
            f"batched tier {speedup}x vs scalar, below the "
            f"{FUNCTIONAL_SPEEDUP_FLOOR}x floor"
        )
    cluster = record.get("cluster")
    if cluster is not None:
        if not cluster["bit_identical"]:
            return False, "process fleet is not bit-identical"
        if (
            cluster["cpu_count"] >= 2
            and cluster["speedup_2workers"] < CLUSTER_SPEEDUP_FLOOR
        ):
            return False, (
                f"2-worker fleet {cluster['speedup_2workers']}x on "
                f"{cluster['cpu_count']} CPUs, below the "
                f"{CLUSTER_SPEEDUP_FLOOR}x floor"
            )
    return True, f"batched {speedup}x vs scalar"


def check_fused(record: dict) -> "tuple[bool, str]":
    """Gate the fused-lowering sections of a benchmark record.

    Requires bit-identity (fused GEMV and fused decode session) and a
    summed refresh-off steady-state saving across the BERT-large block
    shapes of at least ``FUSED_SAVED_FLOOR`` cycles. Quick records run
    one shape, so only that shape's saving must be positive. Returns
    (ok, reason).
    """
    fused = record.get("fused")
    if fused is None:
        return True, "no fused section (non-canonical record)"
    if not fused["bit_identical"]:
        return False, "fused GEMV is not bit-identical to the round trip"
    saved = fused["saved_cycles_total"]
    floor = FUSED_SAVED_FLOOR if len(fused["shapes"]) == len(FUSED_SHAPES) else 1.0
    if saved < floor:
        return False, (
            f"fused lowering saved {saved:,.0f} cycles across "
            f"{len(fused['shapes'])} shape(s), below the {floor:,.0f} floor"
        )
    decode = record.get("decode")
    if decode is not None:
        if not decode["bit_identical"]:
            return False, "fused decode session is not bit-identical"
        if decode["fused_gemvs"] <= 0:
            return False, "decode session fused zero GEMVs"
    return True, f"fused lowering saved {saved:,.0f} cycles (refresh off)"


def check_hetero(record: dict) -> "tuple[bool, str]":
    """Gate the heterogeneous-placement section of a benchmark record.

    Requires bit-identity (hetero/auto vs all-newton), calibration
    within its error budget, and the auto plan never losing to the best
    fixed policy — the placement DP's optimality guarantee. Returns
    (ok, reason).
    """
    hetero = record.get("hetero")
    if hetero is None:
        return True, "no hetero section (non-canonical record)"
    if not hetero["bit_identical"]:
        return False, "hetero/auto is not bit-identical to all-newton"
    if not hetero["calibration_within_budget"]:
        return False, (
            f"calibration max error {hetero['calibration_max_error_pct']}% "
            f"exceeds the {hetero['calibration_budget_pct']}% budget"
        )
    if not hetero["auto_not_worse"]:
        totals = hetero["total_cycles"]
        return False, (
            f"auto placement {totals['auto']:,.0f} cycles loses to the "
            "best fixed policy "
            f"{min(totals['all-newton'], totals['all-gpu']):,.0f}"
        )
    return True, (
        f"auto {hetero['auto_speedup_vs_best_fixed']}x vs best fixed, "
        f"calibration max error {hetero['calibration_max_error_pct']}%"
    )


def check_dse(record: dict) -> "tuple[bool, str]":
    """Gate the design-space sweep: schema, fronts, rivals, cache reuse."""
    dse = record.get("dse")
    if not dse:
        return True, "no dse section (backend record)"
    if not dse["schema_ok"]:
        return False, f"unexpected DSE report schema {dse['schema']!r}"
    if dse["valid_points"] < 1:
        return False, "the smoke sweep produced no valid points"
    empty = [name for name, size in dse["front_sizes"].items() if size < 1]
    if empty:
        return False, f"empty Pareto front(s): {', '.join(empty)}"
    missing = {"output_stationary", "bankgroup_ext"} - set(dse["families"])
    if missing:
        return False, f"rival families missing from the sweep: {missing}"
    if dse["cache"].get("hits", 0) < 1:
        return False, "no cross-point schedule-cache hits in the sweep"
    return True, (
        f"{dse['valid_points']} points at {dse['points_per_s']}/s, "
        f"{dse['cache']['hits']} cache hits across "
        f"{dse['cache']['arches']} architectures"
    )


def export_metrics(record: dict, path: Path) -> None:
    """Registry-shaped telemetry JSON: bench gauges + a probe breakdown."""
    from repro.telemetry import MetricsRegistry, validate_metrics

    registry = MetricsRegistry()
    if "steady_speedup" in record:
        registry.gauge("bench.steady_speedup").set(record["steady_speedup"])
        registry.gauge("bench.cold_speedup").set(record["cold_speedup"])
        registry.gauge("bench.telemetry_overhead_pct").set(
            record["telemetry"]["overhead_pct"]
        )
        registry.counter("bench.commands_per_run").inc(
            record["slow"]["commands_per_run"]
        )
        if "functional" in record:
            registry.gauge("bench.functional_batched_speedup").set(
                record["functional"]["batched_speedup_vs_scalar"]
            )
            registry.gauge("bench.functional_batched_macs_per_s").set(
                record["functional"]["tiers"]["batched"]["macs_per_s"]
            )
        if "cluster" in record:
            registry.gauge("bench.cluster_2worker_speedup").set(
                record["cluster"]["speedup_2workers"]
            )
        if "serving" in record:
            registry.gauge("bench.serving_requests_per_s").set(
                record["serving"]["requests_per_s"]
            )
            registry.gauge("bench.serving_degeneracy_p99_error").set(
                record["serving"]["degeneracy_p99_error"]
            )
        if "fused" in record:
            registry.gauge("bench.fused_saved_cycles").set(
                record["fused"]["saved_cycles_total"]
            )
        if "decode" in record:
            registry.gauge("bench.decode_steps_per_s").set(
                record["decode"]["steps_per_s"]
            )
            registry.gauge("bench.decode_kv_bytes_saved").set(
                record["decode"]["kv_bytes_saved"]
            )
        if "hetero" in record:
            registry.gauge("bench.hetero_auto_speedup").set(
                record["hetero"]["auto_speedup_vs_best_fixed"]
            )
            registry.gauge("bench.hetero_calibration_max_error_pct").set(
                record["hetero"]["calibration_max_error_pct"]
            )
        if "dse" in record:
            registry.gauge("bench.dse_points_per_s").set(
                record["dse"]["points_per_s"]
            )
            registry.gauge("bench.dse_cache_hits").set(
                record["dse"]["cache"]["hits"]
            )
            registry.gauge("bench.dse_cache_replayed_commands").set(
                record["dse"]["cache"]["replayed_commands"]
            )
    else:
        registry.gauge("bench.steady_wall_s").set(record["steady_wall_s"])
    engine, layout = _make_engine(True, record["m"], record["n"])
    result = engine.run_gemv(layout)
    registry.section(
        "probe", validate_metrics(engine.collect_metrics(end=result.end_cycle))
    )
    registry.write_json(path)


def test_sim_throughput(once):
    record = once(measure)
    write_result(record)
    print()
    print(json.dumps(record, indent=2))
    assert record["steady_speedup"] >= 5.0
    assert record["cold_speedup"] >= COLD_SPEEDUP_FLOOR, (
        f"cold speedup {record['cold_speedup']}x below the "
        f"{COLD_SPEEDUP_FLOOR}x floor: the burst kernel regressed"
    )
    assert record["telemetry"]["within_budget"], (
        "telemetry overhead "
        f"{record['telemetry']['overhead_pct']}% exceeds the "
        f"{OVERHEAD_BUDGET_PCT}% budget"
    )
    functional_ok, reason = check_functional(record)
    assert functional_ok, reason
    fused_ok, reason = check_fused(record)
    assert fused_ok, reason
    hetero_ok, reason = check_hetero(record)
    assert hetero_ok, reason
    dse_ok, reason = check_dse(record)
    assert dse_ok, reason


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fast-path throughput + telemetry overhead benchmark."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI mode: {QUICK_M}x{QUICK_N} layer; skips the canonical "
        "BENCH_sim_throughput.json update",
    )
    parser.add_argument(
        "--check-overhead",
        action="store_true",
        help="exit 1 when telemetry overhead exceeds "
        f"{OVERHEAD_BUDGET_PCT}%% of slow-path steady-state time",
    )
    parser.add_argument(
        "--check-cold",
        action="store_true",
        help="exit 1 when cold_speedup falls below the committed "
        "BENCH_sim_throughput.json value x "
        f"{COLD_REGRESSION_TOLERANCE} (generous runner-noise tolerance)",
    )
    parser.add_argument(
        "--check-functional",
        action="store_true",
        help="exit 1 when the batched functional datapath falls below "
        f"{FUNCTIONAL_SPEEDUP_FLOOR}x scalar, any tier/fleet loses "
        "bit-identity, or (on >= 2 CPUs) the 2-worker fleet falls below "
        f"{CLUSTER_SPEEDUP_FLOOR}x",
    )
    parser.add_argument(
        "--check-fused",
        action="store_true",
        help="exit 1 when the fused (GWRITE-less) lowering loses "
        "bit-identity or its summed refresh-off saving across the "
        f"BERT-large block shapes falls below {FUSED_SAVED_FLOOR:,.0f} "
        "cycles",
    )
    parser.add_argument(
        "--check-hetero",
        action="store_true",
        help="exit 1 when heterogeneous auto placement loses to the best "
        "fixed policy, its cost-model calibration exceeds the error "
        "budget, or hetero outputs lose bit-identity vs all-newton",
    )
    parser.add_argument(
        "--check-dse",
        action="store_true",
        help="exit 1 when the design-space smoke sweep breaks schema, "
        "produces an empty Pareto front, drops a rival command family, "
        "or stops sharing the schedule cache across points",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="also write a newton-telemetry/v1 JSON export here",
    )
    parser.add_argument(
        "--backend",
        default="newton",
        help="measure GEMV throughput through this registry backend "
        "instead of the engine's fast/slow paths (default: newton)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="N",
        help="row-shard the layer across N devices (a ShardedCluster); "
        "default 1",
    )
    args = parser.parse_args(argv)
    # The committed floor must be captured before write_result overwrites
    # the record this run is about to produce.
    cold_floor = committed_cold_floor() if args.check_cold else None
    record = measure(quick=args.quick, backend=args.backend, devices=args.devices)
    canonical = not args.quick and args.backend == "newton" and args.devices == 1
    if canonical:
        write_result(record)
    print(json.dumps(record, indent=2))
    if canonical:
        print(f"\nwrote {RESULT_PATH}")
    if args.metrics:
        export_metrics(record, Path(args.metrics))
        print(f"wrote metrics to {args.metrics}")
    failed = False
    if args.check_overhead and not record.get("telemetry", {}).get(
        "within_budget", True
    ):
        print(
            f"FAIL: telemetry overhead {record['telemetry']['overhead_pct']}% "
            f"> {OVERHEAD_BUDGET_PCT}% budget"
        )
        failed = True
    if args.check_cold and not check_cold(record, cold_floor):
        print(
            f"FAIL: cold speedup {record['cold_speedup']}x regressed below "
            f"the committed floor {cold_floor:.2f}x "
            f"(committed cold_speedup x {COLD_REGRESSION_TOLERANCE})"
        )
        failed = True
    elif args.check_cold and "cold_speedup" in record:
        floor_txt = "no committed floor" if cold_floor is None else (
            f"floor {cold_floor:.2f}x"
        )
        print(f"cold check OK: {record['cold_speedup']}x ({floor_txt})")
    if args.check_functional:
        functional_ok, reason = check_functional(record)
        if not functional_ok:
            print(f"FAIL: functional datapath check: {reason}")
            failed = True
        else:
            print(f"functional check OK: {reason}")
    if args.check_fused:
        fused_ok, reason = check_fused(record)
        if not fused_ok:
            print(f"FAIL: fused lowering check: {reason}")
            failed = True
        else:
            print(f"fused check OK: {reason}")
    if args.check_hetero:
        hetero_ok, reason = check_hetero(record)
        if not hetero_ok:
            print(f"FAIL: hetero placement check: {reason}")
            failed = True
        else:
            print(f"hetero check OK: {reason}")
    if args.check_dse:
        dse_ok, reason = check_dse(record)
        if not dse_ok:
            print(f"FAIL: design-space sweep check: {reason}")
            failed = True
        else:
            print(f"dse check OK: {reason}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
