"""Table II: the benchmark layers, with per-layer Newton cycle counts.

Regenerates the catalog with the simulated single-input latency of each
layer on the full Newton design — the raw numbers behind every figure.
"""

from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


def _run():
    rows = []
    for layer in TABLE_II_LAYERS:
        cycles = common.newton_layer_cycles(layer, FULL)
        rows.append(
            (layer.name, f"{layer.m} x {layer.n}", f"{layer.n} x 1", cycles)
        )
    return rows


def test_table2_catalog(once):
    rows = once(_run)
    print()
    print(
        render_table(
            ["Workload", "Matrix", "Vector", "Newton cycles (24ch)"],
            rows,
            title="Table II benchmarks + simulated Newton latency",
        )
    )
    assert len(rows) == 8
    cycles = {name: c for name, _, _, c in rows}
    # Bigger matrices take longer; DLRM is the smallest and fastest.
    assert cycles["AlexNetL6"] == max(cycles.values())
    assert cycles["DLRMs1"] == min(cycles.values())
