"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at the full
24-channel evaluation scale and prints the same rows/series the paper
reports (run with ``pytest benchmarks/ --benchmark-only -s`` to see the
tables). Each harness runs once per benchmark round — the interesting
output is the experiment's result, the benchmark time is the simulator's
cost to regenerate it.
"""

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn):
        return run_once(benchmark, fn)

    return _run
