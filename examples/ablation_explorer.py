#!/usr/bin/env python3
"""Ablation explorer: toggle any of Newton's optimizations (Figure 9+).

Beyond the paper's fixed ladder, this explores the full 2^5 optimization
space for one layer, showing how the interface optimizations compose —
e.g. that complex commands barely matter until ganging has removed the
16x command-bandwidth pressure, and that the interleaved layout's value
depends on matrix shape.

Run:  python examples/ablation_explorer.py [--layer BERTs1]
"""

import argparse
import itertools

from repro import NewtonDevice, OptimizationConfig, hbm2e_like_config, hbm2e_like_timing, titan_v_like
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS, layer_by_name

FLAGS = (
    "ganged_compute",
    "complex_commands",
    "interleaved_reuse",
    "four_bank_activation",
    "aggressive_tfaw",
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--layer",
        default="BERTs1",
        choices=[l.name for l in TABLE_II_LAYERS],
        help="Table II layer to ablate",
    )
    args = parser.parse_args()
    layer = layer_by_name(args.layer)

    config = hbm2e_like_config(num_channels=24)
    timing = hbm2e_like_timing()
    gpu_cycles = titan_v_like(config, timing).gemv_cycles(layer.m, layer.n)

    rows = []
    for bits in itertools.product((False, True), repeat=len(FLAGS)):
        opt = OptimizationConfig(**dict(zip(FLAGS, bits)))
        device = NewtonDevice(config, timing, opt, functional=False)
        handle = device.load_matrix(m=layer.m, n=layer.n)
        cycles = device.gemv(handle).cycles
        tag = "".join("X" if b else "." for b in bits)
        rows.append((tag, cycles, gpu_cycles / cycles))
    rows.sort(key=lambda r: r[1], reverse=True)

    print(
        render_table(
            ["gang/complex/reuse/4bank/tfaw", "cycles", "speedup vs GPU"],
            rows,
            title=f"All 32 optimization combinations on {layer.name}",
        )
    )
    print()
    best, worst = rows[-1], rows[0]
    print(f"worst ({worst[0]}): {worst[2]:.2f}x;  best ({best[0]}): {best[2]:.2f}x")

    # How much does `complex` matter with and without `gang`?
    def cycles_for(**kwargs):
        opt = OptimizationConfig(
            **{f: kwargs.get(f, False) for f in FLAGS}
        )
        device = NewtonDevice(config, timing, opt, functional=False)
        return device.gemv(device.load_matrix(m=layer.m, n=layer.n)).cycles

    no_gang = cycles_for() / cycles_for(complex_commands=True)
    with_gang = cycles_for(ganged_compute=True) / cycles_for(
        ganged_compute=True, complex_commands=True
    )
    print(f"complex commands alone buy {no_gang:.2f}x without ganging, "
          f"but {with_gang:.2f}x once ganging has freed the command bus")


if __name__ == "__main__":
    main()
