#!/usr/bin/env python3
"""Batch-size study: when does caching beat PIM? (Figures 11 & 12.)

Newton cannot exploit batch reuse — its per-input latency is flat — while
non-PIM architectures turn k-way batching into matrix reuse. This example
sweeps the batch size for one layer and prints per-input performance of
Newton, Ideal Non-PIM, and the Titan-V-like GPU (all normalized to the
GPU at batch 1), locating both crossovers the paper reports: Ideal
Non-PIM at k ~ 8-16, the realistic GPU at k ~ 64.

Run:  python examples/batch_size_study.py [--layer GNMTs1]
"""

import argparse

from repro import FULL, IdealNonPim, NewtonDevice, hbm2e_like_config, hbm2e_like_timing, titan_v_like
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS, layer_by_name

BATCHES = (1, 2, 4, 8, 16, 32, 64, 128)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--layer",
        default="GNMTs1",
        choices=[l.name for l in TABLE_II_LAYERS],
        help="Table II layer to sweep",
    )
    args = parser.parse_args()
    layer = layer_by_name(args.layer)

    config = hbm2e_like_config(num_channels=24)
    timing = hbm2e_like_timing()
    ideal = IdealNonPim(config, timing)
    gpu = titan_v_like(config, timing)

    device = NewtonDevice(config, timing, FULL, functional=False)
    handle = device.load_matrix(m=layer.m, n=layer.n)
    newton_cycles = device.gemv(handle).cycles
    gpu_base = gpu.gemv_cycles_per_input(layer.m, layer.n, batch=1)

    rows = []
    ideal_crossover = gpu_crossover = None
    for k in BATCHES:
        newton_perf = gpu_base / newton_cycles  # flat: no batch reuse
        ideal_perf = gpu_base / ideal.gemv_cycles_per_input(layer.m, layer.n, k)
        gpu_perf = gpu_base / gpu.gemv_cycles_per_input(layer.m, layer.n, k)
        if ideal_crossover is None and ideal_perf > newton_perf:
            ideal_crossover = k
        if gpu_crossover is None and gpu_perf > newton_perf:
            gpu_crossover = k
        rows.append((f"k={k}", newton_perf, ideal_perf, gpu_perf))

    print(
        render_table(
            ["batch", "Newton", "Ideal Non-PIM", "GPU"],
            rows,
            title=(
                f"{layer.name} ({layer.m}x{layer.n}): per-input performance, "
                "normalized to GPU @ k=1"
            ),
        )
    )
    print()
    print(f"Ideal Non-PIM overtakes Newton at batch {ideal_crossover} "
          "(paper: ~8-16, an artifact of infinite compute)")
    print(f"the realistic GPU needs batch {gpu_crossover} (paper: ~64)")
    print("=> for edge inference (batch <= 8), Newton dominates everything.")


if __name__ == "__main__":
    main()
