#!/usr/bin/env python3
"""BERT-large inference on Newton vs a Titan-V-like GPU.

Builds the end-to-end BERT-large graph (24 transformer blocks: QKV,
attention output with LayerNorm, GELU FFN), makes every FC layer's
weights resident in a Newton device, runs one single-token inference
functionally, and reports the per-layer and end-to-end speedup over the
GPU baseline — the workload class (small-batch NLP inference at the
edge) the paper targets.

Run:  python examples/bert_inference.py [--blocks N]
"""

import argparse

from repro import NewtonDevice, hbm2e_like_config, hbm2e_like_timing, titan_v_like
from repro.host.runtime import NewtonRuntime
from repro.utils.tables import render_table
from repro.workloads.models import bert_large_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--blocks", type=int, default=4,
        help="transformer blocks to run (default 4; the paper's BERT-large has 24)",
    )
    args = parser.parse_args()

    config = hbm2e_like_config(num_channels=24)
    timing = hbm2e_like_timing()
    gpu = titan_v_like(config, timing)

    # Timing-only device: 24 channels, channel 0 simulated as the
    # critical path (see NewtonDevice docs). Use functional=True with
    # fewer channels to also check numerics (slower).
    device = NewtonDevice(config, timing, functional=False)
    runtime = NewtonRuntime(device, gpu)

    spec = bert_large_model(blocks=args.blocks)
    loaded = runtime.load_model(spec)
    run = runtime.run(loaded)

    rows = []
    gpu_total = 0.0
    for layer, record in zip(spec.layers, run.layer_runs):
        if layer.on_newton:
            gpu_cycles = gpu.gemv_cycles(layer.m, layer.n)
        else:
            gpu_cycles = gpu.host_op_cycles(layer.host_flops, layer.host_bytes)
        gpu_total += gpu_cycles
        if record.on_newton and "blk0" in layer.name:
            rows.append(
                (
                    layer.name,
                    f"{layer.m}x{layer.n}",
                    int(record.cycles),
                    gpu_cycles / record.cycles,
                )
            )
    print(
        render_table(
            ["layer (block 0)", "shape", "Newton cycles", "speedup vs GPU"],
            rows,
            title=f"BERT-large on Newton ({args.blocks} blocks, single token)",
        )
    )
    print()
    print(f"end-to-end Newton: {run.total_cycles:,.0f} cycles "
          f"({run.total_cycles / 1e3:.1f} us)")
    print(f"end-to-end GPU:    {gpu_total:,.0f} cycles ({gpu_total / 1e3:.1f} us)")
    print(f"end-to-end speedup: {gpu_total / run.total_cycles:.1f}x "
          "(paper's BERT end-to-end band: tens of x)")
    print(f"LayerNorm latency exposed: {run.exposed_pipeline_cycles:.0f} cycles "
          "(first tile only; the rest hides under Newton compute)")


if __name__ == "__main__":
    main()
