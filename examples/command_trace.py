#!/usr/bin/env python3
"""Command-level trace of one DRAM row across all banks (Figure 7).

Issues the exact command sequence of Figure 7 — GWRITE loading, four
G_ACTs staggered by the (aggressive) tFAW window, 32 rate-matched COMP
commands, and the READRES after the adder-tree drain — and prints each
command's issue cycle, reproducing the paper's timing diagram as text.

Run:  python examples/command_trace.py
"""

from repro import FULL, hbm2e_like_config, hbm2e_like_timing
from repro.core.command_gen import CommandStreamGenerator
from repro.core.layout import make_layout
from repro.dram.controller import ChannelController


def main() -> None:
    config = hbm2e_like_config(num_channels=1)
    timing = hbm2e_like_timing()
    controller = ChannelController(
        config, timing, aggressive_tfaw=True, refresh_enabled=False
    )
    layout = make_layout(config, m=16, n=512, interleaved=True)
    generator = CommandStreamGenerator(config, timing, FULL, layout)

    print("Figure 7: Newton computation timing "
          "(one DRAM row across all 16 banks)\n")
    print(f"{'cycle':>6}  command")
    print(f"{'-' * 6}  {'-' * 30}")
    last_phase = None
    for step in generator.gemv_steps():
        if step.command is None:
            continue
        record = controller.issue(step.command)
        phase = step.command.kind.value
        if phase != last_phase:
            print(f"{'':6}  -- {phase} phase --")
            last_phase = phase
        print(f"{record.issue:>6}  {step.command.describe()}")

    t = timing
    stagger = max(t.t_rrd, t.t_faw_aim)
    print()
    print("Section III-F accounting for this trace:")
    print(f"  G_ACT stagger: max(tRRD={t.t_rrd}, tFAW={t.t_faw_aim}) x 3 "
          f"= {stagger * 3} cycles")
    print(f"  last activation exposed: tRCD = {t.t_rcd} cycles")
    print(f"  data phase: col x tCCD = 32 x {t.t_ccd} = {32 * t.t_ccd} cycles")
    print(f"  adder-tree drain before READRES: {t.t_tree_drain} cycles")


if __name__ == "__main__":
    main()
