#!/usr/bin/env python3
"""DLRM recommendation scoring on Newton: the refresh-window effect.

The paper's most interesting DLRM result: a single 512x256 MLP layer
finishes *inside* the DRAM refresh window (70x over the GPU), but an
end-to-end run crosses refresh intervals and drops to 47x. This example
reproduces both measurements and shows the refresh accounting, then
scores a small batch of recommendation requests functionally.

Run:  python examples/dlrm_recommendation.py
"""

import numpy as np

from repro import (
    FULL,
    NewtonDevice,
    hbm2e_like_config,
    hbm2e_like_timing,
    titan_v_like,
)
from repro.host.runtime import NewtonRuntime
from repro.workloads.catalog import layer_by_name
from repro.workloads.generator import generate_layer_data
from repro.workloads.models import dlrm_model


def single_layer_measurement() -> None:
    config = hbm2e_like_config(num_channels=24)
    timing = hbm2e_like_timing()
    gpu = titan_v_like(config, timing)
    layer = layer_by_name("DLRMs1")

    device = NewtonDevice(config, timing, FULL, functional=False)
    handle = device.load_matrix(m=layer.m, n=layer.n)
    result = device.gemv(handle)
    print(f"DLRMs1 single layer: {result.cycles} cycles "
          f"(< tREFI = {timing.t_refi}: finishes inside the refresh window)")
    refreshes = sum(
        r.stats["refreshes"] for r in result.channel_results
    )
    print(f"  refreshes during the layer: {refreshes}")
    print(f"  speedup vs GPU: {gpu.gemv_cycles(layer.m, layer.n) / result.cycles:.1f}x")


def end_to_end_measurement() -> None:
    config = hbm2e_like_config(num_channels=24)
    timing = hbm2e_like_timing()
    gpu = titan_v_like(config, timing)
    device = NewtonDevice(config, timing, functional=False)
    runtime = NewtonRuntime(device, gpu)
    spec = dlrm_model()
    run = runtime.run(runtime.load_model(spec))
    gpu_total = sum(
        gpu.gemv_cycles(l.m, l.n) if l.on_newton
        else gpu.host_op_cycles(l.host_flops, l.host_bytes)
        for l in spec.layers
    )
    stalls = max(
        e.channel.controller.stats.refresh_stall_cycles for e in device.engines
    )
    print(f"\nDLRM end-to-end ({len(spec.newton_layers)} MLP layers): "
          f"{run.total_cycles:,.0f} cycles")
    print(f"  refresh stall cycles on the critical channel: {stalls}")
    print(f"  speedup vs GPU: {gpu_total / run.total_cycles:.1f}x "
          "(lower than the single layer: refresh intervenes — the paper's "
          "70x -> 47x effect)")


def functional_scoring(requests: int = 4) -> None:
    layer = layer_by_name("DLRMs1")
    data = generate_layer_data(layer.m, layer.n, seed=0)
    device = NewtonDevice(
        hbm2e_like_config(num_channels=2), hbm2e_like_timing(), functional=True
    )
    handle = device.load_matrix(data.matrix)
    rng = np.random.default_rng(7)
    print(f"\nScoring {requests} recommendation requests (functional, 2 channels):")
    for i in range(requests):
        user_features = rng.standard_normal(layer.n).astype(np.float32)
        result = device.gemv(handle, user_features)
        top = int(np.argmax(result.output))
        print(f"  request {i}: {result.cycles} cycles, "
              f"top item = {top}, score = {result.output[top]:.3f}")


def main() -> None:
    single_layer_measurement()
    end_to_end_measurement()
    functional_scoring()


if __name__ == "__main__":
    main()
