#!/usr/bin/env python3
"""An edge inference server on one Newton device.

Combines three of the paper's deployment stories in one scenario:

* **multi-model** (Section III-D): a translation model (GNMT) and a
  recommendation model (DLRM) served concurrently from different
  channel partitions of the same AiM device;
* **ECC scrubbing** (Section III-E): the matrices are periodically
  reloaded from a host-side copy, discarding any accumulated transient
  errors — demonstrated with actual fault injection;
* **mixed traffic** (Section III-D): the device also serves ordinary
  memory reads while computing.

Run:  python examples/edge_server.py
"""

import numpy as np

from repro import FULL, NewtonDevice, hbm2e_like_config, hbm2e_like_timing
from repro.core.engine import NewtonChannelEngine
from repro.core.scrub import MatrixScrubber, ScrubPolicy
from repro.host.mixed_traffic import NonAimRequest, NonAimTrafficSource
from repro.host.multi_model import MultiModelScheduler
from repro.workloads.models import dlrm_model, gnmt_model


def concurrent_models() -> None:
    config = hbm2e_like_config(num_channels=8)
    scheduler = MultiModelScheduler(config)
    scheduler.place(gnmt_model(), channels=6)  # the heavy NLP model
    scheduler.place(dlrm_model(), channels=2)  # the light recommender
    result = scheduler.run_all()
    print("Concurrent serving (one device, disjoint channel sets):")
    for name, run in result.runs.items():
        print(f"  {name:6s}: {run.total_cycles:>10,.0f} cycles")
    print(f"  wall clock (concurrent): {result.wall_cycles:,.0f} cycles")
    print(f"  same work run serially:  {result.serial_cycles:,.0f} cycles")
    print(f"  concurrency saves {1 - result.wall_cycles / result.serial_cycles:.0%}\n")


def scrubbing_demo() -> None:
    device = NewtonDevice(
        hbm2e_like_config(num_channels=1).with_overrides(rows_per_bank=512),
        functional=True,
    )
    rng = np.random.default_rng(0)
    matrix = (rng.standard_normal((32, 512)) / 16).astype(np.float32)
    handle = device.load_matrix(matrix)
    vector = rng.standard_normal(512).astype(np.float32)
    scrubber = MatrixScrubber(device, handle, matrix)

    clean = device.gemv(handle, vector).output
    scrubber.inject_faults(32, seed=3)
    corrupted = device.gemv(handle, vector).output
    wrong = int(np.sum(clean != corrupted))
    scrubber.scrub()
    restored = device.gemv(handle, vector).output

    policy = ScrubPolicy(inputs_per_scrub=1000)
    overhead = policy.overhead_fraction(
        matrix_bytes=matrix.nbytes // 2,  # bfloat16 resident
        bytes_per_cycle=8.0,
        inference_cycles=2500.0,
    )
    print("ECC scrub-by-reload (Section III-E):")
    print(f"  injected 32 bit flips -> {wrong}/32 output elements corrupted")
    print(f"  after reload: outputs bit-identical to clean run: "
          f"{bool(np.array_equal(restored, clean))}")
    print(f"  steady-state overhead at 1 reload / 1000 inputs: {overhead:.3%}\n")


def mixed_traffic_demo() -> None:
    config = hbm2e_like_config(num_channels=1)
    engine = NewtonChannelEngine(
        config, hbm2e_like_timing(), FULL, functional=False
    )
    layout = engine.add_matrix(1024, 1024)
    quiet = engine.run_gemv(layout).cycles
    traffic = NonAimTrafficSource(
        [
            NonAimRequest(bank=i % 16, row=config.rows_per_bank - 1 - i, col=i % 32)
            for i in range(64)
        ],
        per_boundary=1,
    )
    busy = engine.run_gemv(layout, background=traffic).cycles
    print("Mixed AiM / ordinary traffic (Section III-D):")
    print(f"  BERTs1-shaped layer alone: {quiet} cycles")
    print(f"  + {traffic.issued} ordinary reads interleaved: {busy} cycles "
          f"({busy / quiet - 1:.0%} slower; the reads ride tile boundaries "
          "where every bank is precharged)")


def main() -> None:
    concurrent_models()
    scrubbing_demo()
    mixed_traffic_demo()


if __name__ == "__main__":
    main()
