#!/usr/bin/env python3
"""GNMT sequence decoding on Newton: real LSTM recurrence.

Decodes a token sequence through the 8-layer GNMT LSTM stack: each
layer's fused 4-gate matrix is one Newton GEMV and the host applies the
actual LSTM cell update, with recurrent state carried across tokens —
so hidden states evolve, saturate within [-1, 1], and depend on the
whole prefix. Timing runs continuously across the sequence, so refresh
interference accumulates exactly as on hardware.

Run:  python examples/gnmt_translation.py [--tokens N]
"""

import argparse

import numpy as np

from repro import NewtonDevice, hbm2e_like_config, hbm2e_like_timing, titan_v_like
from repro.host.runtime import NewtonRuntime
from repro.workloads.models import gnmt_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tokens", type=int, default=4, help="tokens to decode")
    parser.add_argument(
        "--functional",
        action="store_true",
        help="simulate data too (slower; uses a 2-channel device)",
    )
    args = parser.parse_args()

    channels = 2 if args.functional else 24
    config = hbm2e_like_config(num_channels=channels)
    timing = hbm2e_like_timing()
    device = NewtonDevice(config, timing, functional=args.functional)
    runtime = NewtonRuntime(device, titan_v_like(config, timing))
    spec = gnmt_model()
    loaded = runtime.load_model(spec)

    runs = runtime.run_sequence(loaded, steps=args.tokens)
    per_token = [run.total_cycles for run in runs]
    print(f"GNMT: {len(spec.layers)} LSTM layers x {args.tokens} tokens "
          f"on {channels} channels")
    for i, cycles in enumerate(per_token):
        line = f"  token {i}: {cycles:>9,.0f} cycles"
        if args.functional and runs[i].output is not None:
            h = runs[i].output
            line += (f"   |h|_inf = {np.max(np.abs(h)):.2e} "
                     f"(bounded by the cell's tanh; random-init gating "
                     f"contracts across the 8 layers)")
        print(line)
    total = sum(per_token)
    print(f"  total: {total:,.0f} cycles ({total / 1e3:.1f} us at 1 GHz)")
    if args.functional:
        h_first, h_last = runs[0].output, runs[-1].output
        drift = float(np.linalg.norm(h_last - h_first))
        print(f"  hidden-state drift over the sequence: {drift:.2e} "
              "(nonzero: the recurrence is live, not shape glue)")


if __name__ == "__main__":
    main()
