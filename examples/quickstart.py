#!/usr/bin/env python3
"""Quickstart: run one matrix-vector product on a Newton device.

Loads a small filter matrix into a 2-channel Newton AiM, broadcasts an
input vector through the Table I command interface (GWRITE / G_ACT /
COMP / READRES), and compares the bfloat16 in-DRAM result against NumPy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import NewtonDevice, hbm2e_like_config
from repro.dram.commands import CommandKind

SEED = 42


def main() -> None:
    rng = np.random.default_rng(SEED)

    # A 2-channel HBM2E-like AiM device (16 banks per channel, 1 KB rows,
    # 16 bfloat16 multipliers + an adder tree next to every bank).
    device = NewtonDevice(hbm2e_like_config(num_channels=2))

    # A 256 x 1024 filter matrix: resident in the DRAM, laid out in the
    # chunk-interleaved, DRAM-row-wide format of Figure 3.
    m, n = 256, 1024
    matrix = (rng.standard_normal((m, n)) / np.sqrt(n)).astype(np.float32)
    vector = rng.standard_normal(n).astype(np.float32)
    handle = device.load_matrix(matrix)

    # One GEMV: the host issues DRAM-like commands; the result comes back
    # through READRES column accesses and fp32 host accumulation.
    result = device.gemv(handle, vector)

    reference = matrix @ vector
    # Normalize by the accumulation magnitude (|M| @ |v|): the honest
    # yardstick for a 1024-term bfloat16 dot product.
    scale = np.abs(matrix) @ np.abs(vector)
    rel_err = np.max(np.abs(result.output - reference) / scale)

    print(f"matrix: {m} x {n} bfloat16, spread over 2 channels")
    print(f"latency: {result.cycles} cycles ({result.cycles / 1000:.2f} us at 1 GHz)")
    print("command mix (all channels):")
    for kind in (
        CommandKind.GWRITE,
        CommandKind.G_ACT,
        CommandKind.COMP,
        CommandKind.READRES,
    ):
        print(f"  {kind.value:8s} x {result.command_count(kind)}")
    print(f"max relative error vs float32 NumPy: {rel_err:.4f} "
          "(bfloat16 accumulation)")
    print(f"output[:4] = {result.output[:4]}")
    print(f"numpy[:4]  = {reference[:4]}")


if __name__ == "__main__":
    main()
