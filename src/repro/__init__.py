"""Newton: a DRAM-maker's Accelerator-in-Memory (AiM) for ML — reproduction.

A full-system reproduction of the MICRO 2020 paper: a command-level
cycle-accurate DRAM substrate, the Newton AiM datapath and command
interface with every published optimization individually ablatable,
bit-faithful bfloat16 numerics, the paper's baselines (Ideal Non-PIM, a
Titan-V-like GPU, the Section III-F analytical model), the Table II
workloads and end-to-end model graphs, and one experiment harness per
evaluation figure.

Quickstart::

    import numpy as np
    from repro import NewtonDevice, hbm2e_like_config

    device = NewtonDevice(hbm2e_like_config(num_channels=2))
    matrix = np.random.randn(256, 1024).astype(np.float32)
    handle = device.load_matrix(matrix)
    result = device.gemv(handle, np.random.randn(1024).astype(np.float32))
    print(result.cycles, result.output[:4])
"""

from repro.backends import Backend, available_backends, make_backend
from repro.cluster import ShardedCluster
from repro.core.device import MatrixHandle, NewtonDevice
from repro.core.optimizations import FULL, NON_OPT, OptimizationConfig, figure9_ladder
from repro.core.result import ChannelRunResult, GemvRunResult
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.baselines import AnalyticalModel, GpuModel, IdealNonPim, titan_v_like
from repro.errors import (
    CapacityError,
    ConfigurationError,
    LayoutError,
    ProtocolError,
    ReproError,
    TelemetryError,
    TimingViolationError,
    VerificationError,
)
from repro.telemetry import MetricsRegistry

__version__ = "1.0.0"

__all__ = [
    "NewtonDevice",
    "MatrixHandle",
    "Backend",
    "make_backend",
    "available_backends",
    "ShardedCluster",
    "OptimizationConfig",
    "FULL",
    "NON_OPT",
    "figure9_ladder",
    "GemvRunResult",
    "ChannelRunResult",
    "DRAMConfig",
    "hbm2e_like_config",
    "TimingParams",
    "hbm2e_like_timing",
    "AnalyticalModel",
    "GpuModel",
    "IdealNonPim",
    "titan_v_like",
    "ReproError",
    "ConfigurationError",
    "TimingViolationError",
    "LayoutError",
    "CapacityError",
    "ProtocolError",
    "TelemetryError",
    "VerificationError",
    "MetricsRegistry",
    "__version__",
]
