"""``repro.backends`` — one execution protocol, four engines behind it.

The :class:`Backend` protocol (``load_matrix``, ``gemv``,
``gemv_batch``, ``service_cycles``, ``collect_metrics``) unifies the
cycle-accurate Newton simulator with the three closed-form baselines,
and :func:`make_backend` constructs any of them by registry name::

    from repro.backends import make_backend

    backend = make_backend("newton", functional=True)
    handle = backend.load_matrix(matrix)
    run = backend.gemv(handle, vector)      # run.cycles, run.output

Multi-device execution composes backends through
:class:`repro.cluster.ShardedCluster`.
"""

from repro.backends.base import Backend, BackendRun
from repro.backends.models import (
    AnalyticalBackend,
    GpuBackend,
    IdealBackend,
    ModelHandle,
)
from repro.backends.newton import NewtonBackend
from repro.backends.registry import (
    available_backends,
    make_backend,
    register_backend,
)

__all__ = [
    "Backend",
    "BackendRun",
    "ModelHandle",
    "NewtonBackend",
    "AnalyticalBackend",
    "IdealBackend",
    "GpuBackend",
    "available_backends",
    "make_backend",
    "register_backend",
]
