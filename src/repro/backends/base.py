"""The execution-backend protocol every engine implements.

The repository grew four ways to execute (or predict) a matrix-vector
product — the cycle-accurate :class:`~repro.core.device.NewtonDevice`,
the Section III-F :class:`~repro.baselines.analytical.AnalyticalModel`,
the bandwidth-bound :class:`~repro.baselines.ideal_nonpim.IdealNonPim`,
and the Titan-V-like :class:`~repro.baselines.gpu.GpuModel` roofline —
each with its own bespoke call surface. :class:`Backend` is the one
interface they all sit behind, so the runtime, the serving simulator,
the multi-model scheduler, and the cluster layer can treat "a thing
that executes GEMVs" uniformly:

* ``load_matrix`` makes a matrix resident and returns a handle;
* ``gemv`` / ``gemv_batch`` execute against a handle and return run
  records carrying ``cycles`` (and, functionally, ``output``);
* ``service_cycles`` gives the deterministic per-request service time
  the serving simulator needs (Section III-D: Newton's latencies are
  deterministic by design, and the models are closed-form);
* ``collect_metrics`` exports a ``newton-telemetry/v1``-stamped record.

Backends are constructed directly or through the string-keyed factory
(:func:`repro.backends.make_backend`); N of them compose into a
:class:`~repro.cluster.ShardedCluster`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.device import validate_batch_vectors
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ProtocolError


@dataclass
class BackendRun:
    """One backend GEMV execution (the protocol's run record).

    ``NewtonBackend`` returns the richer
    :class:`~repro.core.result.GemvRunResult` directly (it already
    carries ``cycles`` and ``output``, plus per-channel detail); the
    model backends return this minimal record. Consumers rely only on
    the two shared fields.
    """

    cycles: float
    """Wall-clock cycles of the run."""
    output: Optional[np.ndarray] = None
    """fp32 output vector (``None`` for timing-only execution)."""


class Backend(ABC):
    """A uniform execution engine for matrix-vector workloads.

    Concrete backends expose three context attributes consumers rely on
    in addition to the methods below: ``config`` (the
    :class:`~repro.dram.config.DRAMConfig` the backend models),
    ``timing`` (its :class:`~repro.dram.timing.TimingParams`), and
    ``functional`` (whether runs produce output data).
    """

    name: str = "backend"
    config: DRAMConfig
    timing: TimingParams
    functional: bool

    # ------------------------------------------------------------------
    # residency

    @abstractmethod
    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ):
        """Make an ``m x n`` matrix resident; returns an opaque handle.

        Pass the array in functional mode, or just the dimensions for
        timing-only execution (mirroring
        :meth:`repro.core.device.NewtonDevice.load_matrix`).
        """

    def load_model(self, spec, seed: int = 0) -> dict:
        """Make every Newton (FC) layer of a model spec resident.

        Returns ``{layer name: handle}`` — the residency half of
        :meth:`repro.host.runtime.NewtonRuntime.load_model` (which adds
        recurrent cell state and weight bookkeeping on top). Functional
        backends get seeded synthetic weights, matching the runtime's
        generation.
        """
        from repro.workloads.generator import generate_layer_data

        if getattr(spec, "requires_session", False):
            raise ProtocolError(
                f"{spec.name} carries stateful (non-fc) layers; open a "
                "session (open_session) to load and run it"
            )
        handles = {}
        for i, layer in enumerate(spec.layers):
            if not layer.on_newton:
                continue
            if self.functional:
                data = generate_layer_data(layer.m, layer.n, seed=seed + i)
                handles[layer.name] = self.load_matrix(data.matrix)
            else:
                handles[layer.name] = self.load_matrix(m=layer.m, n=layer.n)
        return handles

    def store_matrix(self, handle, matrix: np.ndarray) -> None:
        """Rewrite a resident matrix's data in place (functional only).

        The handle keeps its placement; only the data changes — the
        primitive behind the bank-resident KV-cache arenas, which are
        allocated once at session open and grown in place across decode
        steps. Untimed, like ``load_matrix``.
        """
        raise ProtocolError(
            f"backend {self.name!r} does not support in-place matrix updates"
        )

    # ------------------------------------------------------------------
    # execution

    @abstractmethod
    def gemv(self, handle, vector: Optional[np.ndarray] = None, *, fused_input: bool = False):
        """One matrix-vector product; returns a run with ``cycles`` and
        (functionally) ``output``.

        ``fused_input=True`` declares the input already device-resident
        (fused-layer dataflow): the host GWRITE round trip is elided
        from the modeled timing while outputs stay bit-identical.
        Backends without a fused model simply ignore the flag.
        """

    def open_session(self, spec, *, fused: bool = True, seed: int = 0):
        """Open a model-graph execution session over this backend.

        Returns a :class:`~repro.host.graph_runtime.GraphSession` whose
        ``step(inputs)`` walks the model's layer graph keeping
        activations device-resident between fusable layers (and KV-cache
        arenas bank-resident across decode steps); ``close()`` releases
        session state. ``fused=False`` pins the session to today's
        per-layer host round-trip path — bit-identical outputs, more
        cycles.
        """
        from repro.host.graph_runtime import GraphSession

        return GraphSession(self, spec, fused=fused, seed=seed)

    def gemv_batch(
        self,
        handle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
    ) -> List:
        """A batch of products run back to back (no batch reuse).

        Validates the batch shape exactly like
        :meth:`repro.core.device.NewtonDevice.gemv_batch`: 1-D vectors
        are promoted to a batch of one, anything other than a (k, n)
        array raises :class:`~repro.errors.LayoutError`.
        """
        if vectors is not None:
            vectors = validate_batch_vectors(vectors, self.handle_shape(handle)[1])
            return [self.gemv(handle, vectors[i]) for i in range(vectors.shape[0])]
        if batch is not None:
            if batch <= 0:
                raise ProtocolError("batch must be positive")
            return [self.gemv(handle) for _ in range(batch)]
        raise ProtocolError("provide vectors or a batch size")

    @abstractmethod
    def service_cycles(self, handle) -> float:
        """Deterministic per-request service time for the handle's shape.

        This is what the serving simulator's queueing model consumes
        (one request = one GEMV against the resident matrix).
        """

    # ------------------------------------------------------------------
    # introspection

    @staticmethod
    def handle_shape(handle) -> "tuple[int, int]":
        """The (m, n) shape a handle was loaded with."""
        return handle.m, handle.n

    @abstractmethod
    def collect_metrics(self) -> dict:
        """A ``newton-telemetry/v1``-stamped metrics record."""

    def close(self) -> None:
        """Release backend resources (idempotent; default: nothing)."""
