"""The PIM + GPU hybrid behind the :class:`Backend` protocol.

``make_backend("hetero", ...)`` composes the cycle-accurate Newton
device with the Titan-V-like GPU roofline behind one backend surface
and lets the :mod:`repro.host.hetero` cost model decide, per dispatch,
which side the work lands on: batch-1 interactive GEMVs are
bandwidth-bound and stay in the memory; large batched dispatches cross
the Figure 12 crossover and go to the GPU roofline. Placement is forced
with ``placement="all-newton"`` / ``"all-gpu"``.

Two properties are load-bearing:

* **Bit-identity.** Every *functional* payload executes on the embedded
  Newton datapath regardless of placement — the GPU side contributes
  cycles, never data. A hetero run's outputs are therefore bit-identical
  to an all-Newton run by construction (same device, same seeds, same
  bf16 adder-tree reduction, exact fp32 host accumulation at merge
  points), which is what lets ``--placement auto`` be compared against
  ``all-newton`` differentially.
* **Honest boundaries.** Consecutive dispatches on the same side keep
  activations resident (fused runs stay on one backend); a placement
  crossing forces the host round trip — ``fused_input`` is dropped and
  the double-buffered handoff's *exposed* transfer cycles
  (:func:`repro.host.hetero.overlapped_handoff_cycles` against the
  previous dispatch's compute) are charged to the crossing run.

Every placement decision is recorded — chosen side, both candidates'
costs, predicted vs charged cycles — and exported through
``collect_metrics`` as a ``newton-telemetry/v1`` record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.backends.base import Backend, BackendRun
from repro.backends.newton import NewtonBackend
from repro.core.device import validate_batch_vectors
from repro.core.optimizations import FULL, OptimizationConfig
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError
from repro.host.hetero import (
    BACKEND_CHOICES,
    PLACEMENT_POLICIES,
    CalibrationReport,
    CostModel,
    TransferModel,
    overlapped_handoff_cycles,
)
from repro.telemetry import SCHEMA

MAX_DECISION_RECORDS = 256
"""Per-decision telemetry detail is bounded; counters keep the totals."""


@dataclass
class HeteroHandle:
    """A matrix resident in the hybrid (always on the Newton device)."""

    m: int
    n: int
    inner: object
    """The embedded Newton device's handle (the functional residency)."""


class HeteroBackend(Backend):
    """Cost-model-driven hybrid of the Newton device and the GPU roofline.

    ``placement`` is one of :data:`~repro.host.hetero.PLACEMENT_POLICIES`
    (``auto`` routes each dispatch to the side the cost model finds
    cheaper — measured Newton cycles vs the roofline closed form);
    ``gpu_overrides`` tunes the roofline
    (:data:`~repro.baselines.gpu.GPU_TUNABLE_FIELDS`). The remaining
    knobs configure the embedded Newton device and are shared with
    :class:`~repro.backends.newton.NewtonBackend`; unknown registry
    knobs are ignored like the model backends do.
    """

    name = "hetero"

    def __init__(
        self,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        *,
        opt: OptimizationConfig = FULL,
        functional: bool = True,
        refresh_enabled: bool = True,
        placement: str = "auto",
        gpu_overrides: Optional[dict] = None,
        transfer_latency_cycles: float = 500.0,
        **newton_knobs,
    ):
        if placement not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown placement policy {placement!r}; choose from "
                f"{PLACEMENT_POLICIES}"
            )
        self.placement = placement
        self.newton = NewtonBackend(
            config,
            timing,
            opt=opt,
            functional=functional,
            refresh_enabled=refresh_enabled,
            **{
                k: v
                for k, v in newton_knobs.items()
                if k in ("fast", "channel_workers", "telemetry", "datapath")
            },
        )
        from repro.baselines.gpu import titan_v_like

        gpu_model = titan_v_like(
            self.newton.config, self.newton.timing, **(gpu_overrides or {})
        )
        self.cost = CostModel(
            self.newton.config,
            self.newton.timing,
            opt=opt,
            refresh_enabled=refresh_enabled,
            gpu_model=gpu_model,
        )
        self.transfer = TransferModel(
            self.newton.config,
            self.newton.timing,
            latency_cycles=transfer_latency_cycles,
        )
        # Boundary state: which side the last dispatch ran on and how
        # long it computed (the overlap window the next crossing's
        # transfer can hide under).
        self._last_backend: Optional[str] = None
        self._last_compute = 0.0
        self._counts = {b: 0 for b in BACKEND_CHOICES}
        self._crossings = 0
        self._exposed_transfer = 0.0
        self._decisions: List[dict] = []
        self._error_sum = 0.0
        self._error_max = 0.0
        self._error_n = 0

    # ------------------------------------------------------------------
    # the Backend context attributes, proxied from the Newton side

    @property
    def config(self) -> DRAMConfig:  # type: ignore[override]
        return self.newton.config

    @property
    def timing(self) -> TimingParams:  # type: ignore[override]
        return self.newton.timing

    @property
    def functional(self) -> bool:  # type: ignore[override]
        return self.newton.functional

    # ------------------------------------------------------------------
    # placement

    def calibrate(self, layers=None) -> CalibrationReport:
        """Fit the cost model's Newton scale (see
        :meth:`repro.host.hetero.CostModel.calibrate`); returns the
        report that lands in ``collect_metrics``."""
        return self.cost.calibrate(layers)

    def _choose(self, m: int, n: int, batch: int) -> str:
        if self.placement == "all-newton":
            return "newton"
        if self.placement == "all-gpu":
            return "gpu"
        return min(
            BACKEND_CHOICES,
            key=lambda b: self.cost.estimate(
                b, m, n, batch=batch, prefer_measured=True
            ),
        )

    def _boundary(self, chosen: str, elements: int) -> float:
        """Exposed transfer cycles of this dispatch's placement edge.

        Zero when the pipeline stays on one side; a crossing pays the
        double-buffered handoff drain against the previous dispatch's
        compute window.
        """
        if self._last_backend is None or self._last_backend == chosen:
            return 0.0
        cycles = self.transfer.vector_cycles(elements)
        slices = self.transfer.handoff_slices(elements)
        exposed = (
            overlapped_handoff_cycles(self._last_compute, cycles, slices)
            - self._last_compute
        )
        self._crossings += 1
        self._exposed_transfer += exposed
        return exposed

    def _record(
        self, chosen: str, m: int, n: int, batch: int, actual: float
    ) -> None:
        predicted = self.cost.predict(chosen, m, n, batch=batch)
        error = abs(predicted - actual) / (actual or 1.0) * 100.0
        self._counts[chosen] += 1
        self._error_sum += error
        self._error_max = max(self._error_max, error)
        self._error_n += 1
        if len(self._decisions) < MAX_DECISION_RECORDS:
            self._decisions.append(
                {
                    "m": m,
                    "n": n,
                    "batch": batch,
                    "backend": chosen,
                    "predicted_cycles": round(predicted, 1),
                    "actual_cycles": round(actual, 1),
                    "error_pct": round(error, 3),
                }
            )

    # ------------------------------------------------------------------
    # residency

    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ) -> HeteroHandle:
        inner = self.newton.load_matrix(matrix, m=m, n=n)
        return HeteroHandle(m=inner.m, n=inner.n, inner=inner)

    def store_matrix(self, handle: HeteroHandle, matrix: np.ndarray) -> None:
        self.newton.store_matrix(handle.inner, matrix)

    # ------------------------------------------------------------------
    # execution

    def gemv(
        self,
        handle: HeteroHandle,
        vector: Optional[np.ndarray] = None,
        *,
        fused_input: bool = False,
    ) -> BackendRun:
        chosen = self._choose(handle.m, handle.n, batch=1)
        boundary = self._boundary(chosen, handle.n)
        # Crossing the PIM/GPU boundary forces the host round trip:
        # activations cannot stay latch-resident across it.
        fused = fused_input and boundary == 0.0 and chosen == "newton"
        if chosen == "newton":
            run = self.newton.gemv(handle.inner, vector, fused_input=fused)
            compute = float(run.cycles)
            output = run.output
        else:
            compute = self.cost.predict("gpu", handle.m, handle.n)
            output = None
            if self.functional:
                # The GPU side contributes cycles, never data: run the
                # payload on the Newton datapath so outputs stay
                # bit-identical to an all-Newton execution.
                output = self.newton.gemv(
                    handle.inner, vector, fused_input=False
                ).output
        self._record(chosen, handle.m, handle.n, 1, compute)
        self._last_backend = chosen
        self._last_compute = compute
        return BackendRun(cycles=compute + boundary, output=output)

    def gemv_batch(
        self,
        handle: HeteroHandle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
    ) -> List[BackendRun]:
        """One placement decision for the whole dispatch window.

        This is the per-request-class routing under mixed traffic: the
        continuous batcher hands interactive requests over in small
        windows (Newton wins below the crossover) and bulk work in large
        ones (the batched roofline wins above it), so class routing
        falls out of batch-aware placement with no gateway changes.
        """
        if vectors is not None:
            vectors = validate_batch_vectors(vectors, handle.n)
            k = vectors.shape[0]
        else:
            if batch is None:
                from repro.errors import ProtocolError

                raise ProtocolError("provide vectors or a batch size")
            if batch <= 0:
                from repro.errors import ProtocolError

                raise ProtocolError("batch must be positive")
            k = batch
        chosen = self._choose(handle.m, handle.n, batch=k)
        boundary = self._boundary(chosen, handle.n * k)
        if chosen == "newton":
            inner_runs = self.newton.gemv_batch(
                handle.inner, vectors, batch=None if vectors is not None else k
            )
            runs = [
                BackendRun(cycles=float(r.cycles), output=r.output)
                for r in inner_runs
            ]
            compute = sum(r.cycles for r in runs)
        else:
            compute = self.cost.predict("gpu", handle.m, handle.n, batch=k)
            per_run = compute / k
            runs = []
            for i in range(k):
                output = None
                if self.functional:
                    assert vectors is not None
                    output = self.newton.gemv(
                        handle.inner, vectors[i], fused_input=False
                    ).output
                runs.append(BackendRun(cycles=per_run, output=output))
        # The exposed handoff is part of the dispatch's occupancy: charge
        # it to the first run so cycle sums stay honest.
        if boundary:
            runs[0].cycles += boundary
        self._record(chosen, handle.m, handle.n, k, compute)
        self._last_backend = chosen
        self._last_compute = compute
        return runs

    def service_cycles(self, handle: HeteroHandle) -> float:
        """Deterministic per-request service time of the *placed* side.

        Uses the cost model's cached per-layout measurement for the
        Newton side (a fresh-device run, not the live clock), so the
        queueing studies see the same deterministic service the placed
        backend would give them.
        """
        chosen = self._choose(handle.m, handle.n, batch=1)
        return self.cost.estimate(
            chosen, handle.m, handle.n, prefer_measured=True
        )

    # ------------------------------------------------------------------
    # introspection

    def collect_metrics(self) -> dict:
        record = {
            "schema": SCHEMA,
            "kind": "hetero",
            "backend": self.name,
            "placement": self.placement,
            "dispatches": dict(self._counts),
            "crossings": self._crossings,
            "exposed_transfer_cycles": round(self._exposed_transfer, 1),
            "measured_layouts": self.cost.measured_layouts,
            "prediction_error_mean_pct": round(
                self._error_sum / self._error_n, 3
            )
            if self._error_n
            else 0.0,
            "prediction_error_max_pct": round(self._error_max, 3),
            "decisions": list(self._decisions),
            "newton": self.newton.collect_metrics(),
        }
        if self.cost.calibration is not None:
            record["calibration"] = self.cost.calibration.to_dict()
        return record

    def close(self) -> None:
        self.newton.close()
