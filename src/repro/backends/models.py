"""The three closed-form baselines behind the :class:`Backend` protocol.

Each adapter wraps one analytical model — Section III-F's
:class:`~repro.baselines.analytical.AnalyticalModel`, the bandwidth-
bound :class:`~repro.baselines.ideal_nonpim.IdealNonPim`, and the
Titan-V-like :class:`~repro.baselines.gpu.GpuModel` — and gives it the
same residency/execution surface as the simulated device. Timing comes
from the model's closed form; *data*, when the backend is built
``functional=True``, comes from an exact fp32 ``matrix @ vector``
reference product (the models have no datapath of their own, and fp32
reference semantics are what the cluster layer's sharding identity
tests need: row-sharding an fp32 product is exact).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.backends.base import Backend, BackendRun
from repro.baselines.analytical import AnalyticalModel
from repro.baselines.gpu import GpuModel, titan_v_like
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.core.device import validate_batch_vectors
from repro.core.optimizations import OptimizationConfig
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.errors import LayoutError, ProtocolError
from repro.telemetry import SCHEMA


@dataclass
class ModelHandle:
    """A matrix 'resident' in a model backend (shape, optionally data)."""

    m: int
    n: int
    matrix: Optional[np.ndarray] = None
    """fp32 matrix data (functional backends only)."""


class _ModelBackend(Backend):
    """Shared residency/execution plumbing for the closed-form models."""

    def __init__(
        self,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        *,
        functional: bool = False,
        opt: Optional[OptimizationConfig] = None,
        **_unused,
    ):
        # `opt` and the Newton-only knobs (refresh_enabled, fast, ...)
        # are accepted so `make_backend(name, **knobs)` can pass one knob
        # set to any backend; models consume what applies (see
        # AnalyticalBackend) and ignore the rest.
        self.config = config if config is not None else hbm2e_like_config()
        self.timing = timing if timing is not None else hbm2e_like_timing()
        self.functional = functional
        self.opt = opt
        self._gemvs = 0
        self._total_cycles = 0.0

    # ------------------------------------------------------------------

    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ) -> ModelHandle:
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=np.float32)
            if matrix.ndim != 2:
                raise LayoutError(f"matrix must be 2-D, got shape {matrix.shape}")
            m, n = matrix.shape
        if m is None or n is None:
            raise LayoutError("provide a matrix, or both m and n")
        if matrix is None and self.functional:
            raise ProtocolError(
                "functional mode needs the matrix data; pass functional=False "
                "for timing-only shape runs"
            )
        return ModelHandle(m=m, n=n, matrix=matrix if self.functional else None)

    def store_matrix(self, handle: ModelHandle, matrix: np.ndarray) -> None:
        """Swap the resident data in place (shape-checked, untimed)."""
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.shape != (handle.m, handle.n):
            raise LayoutError(
                f"matrix of shape {matrix.shape}; the handle holds "
                f"({handle.m}, {handle.n})"
            )
        if not self.functional:
            raise ProtocolError("store_matrix needs a functional backend")
        handle.matrix = matrix

    def gemv(
        self,
        handle: ModelHandle,
        vector: Optional[np.ndarray] = None,
        *,
        fused_input: bool = False,
    ) -> BackendRun:
        cycles = float(self._predict_cycles(handle.m, handle.n))
        if fused_input:
            cycles = max(0.0, cycles - self._fused_discount(handle.m, handle.n))
        output = None
        if self.functional:
            if vector is None:
                raise ProtocolError("functional mode requires an input vector")
            vector = np.asarray(vector, dtype=np.float32).reshape(-1)
            if vector.shape != (handle.n,):
                raise LayoutError(
                    f"vector of length {vector.shape[0]}, matrix expects "
                    f"{handle.n}"
                )
            assert handle.matrix is not None
            output = (handle.matrix @ vector).astype(np.float32)
        self._gemvs += 1
        self._total_cycles += cycles
        return BackendRun(cycles=cycles, output=output)

    def service_cycles(self, handle: ModelHandle) -> float:
        """The closed-form per-request time (no state is advanced)."""
        return float(self._predict_cycles(handle.m, handle.n))

    def _predict_cycles(self, m: int, n: int) -> float:
        raise NotImplementedError

    def _fused_discount(self, m: int, n: int) -> float:
        """Cycles a device-resident input saves (closed-form models have
        no host-transfer term by default, so nothing is discounted)."""
        return 0.0

    def collect_metrics(self) -> dict:
        return {
            "schema": SCHEMA,
            "kind": "model",
            "backend": self.name,
            "gemvs": self._gemvs,
            "total_cycles": self._total_cycles,
        }


class AnalyticalBackend(_ModelBackend):
    """Section III-F's closed-form Newton timing as a backend.

    Honors ``opt.aggressive_tfaw`` when an optimization config is given
    (the only optimization knob the closed form models).
    """

    name = "analytical"

    def __init__(self, config=None, timing=None, **kwargs):
        super().__init__(config, timing, **kwargs)
        aggressive = self.opt.aggressive_tfaw if self.opt is not None else True
        self.model = AnalyticalModel(
            self.config, self.timing, aggressive_tfaw=aggressive
        )

    def _predict_cycles(self, m: int, n: int) -> float:
        return self.model.predicted_layer_cycles(
            m, n, channels=self.config.num_channels
        )

    def _fused_discount(self, m: int, n: int) -> float:
        """The closed form's GWRITE term — exactly what a fused,
        device-resident input elides (see
        :meth:`~repro.baselines.analytical.AnalyticalModel.predicted_gwrite_cycles`).
        """
        return self.model.predicted_gwrite_cycles(n)


class IdealBackend(_ModelBackend):
    """The Ideal Non-PIM bandwidth bound as a backend."""

    name = "ideal"

    def __init__(self, config=None, timing=None, *, refresh_enabled=True, **kwargs):
        super().__init__(config, timing, **kwargs)
        self.model = IdealNonPim(
            self.config, self.timing, refresh_enabled=refresh_enabled
        )

    def _predict_cycles(self, m: int, n: int) -> float:
        return self.model.gemv_cycles(m, n)


class GpuBackend(_ModelBackend):
    """The calibrated Titan-V-like roofline as a backend.

    ``gpu_overrides`` maps roofline parameter names (any of
    :data:`~repro.baselines.gpu.GPU_TUNABLE_FIELDS`) to replacement
    values — the constructor-level face of the CLI's ``--gpu-*`` knobs.
    A fully-built ``model`` takes precedence over overrides.
    """

    name = "gpu"

    def __init__(
        self,
        config=None,
        timing=None,
        *,
        model: Optional[GpuModel] = None,
        gpu_overrides: Optional[dict] = None,
        **kwargs,
    ):
        super().__init__(config, timing, **kwargs)
        self.model = (
            model
            if model is not None
            else titan_v_like(self.config, self.timing, **(gpu_overrides or {}))
        )

    def _predict_cycles(self, m: int, n: int) -> float:
        return self.model.gemv_cycles(m, n)

    def gemv_batch(
        self,
        handle: ModelHandle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
    ) -> list:
        """One batched kernel: the matrix is read once per batch.

        The roofline's batch cycles (``gemv_cycles(m, n, k)``) are
        amortised evenly across the k run records so queueing consumers
        that sum per-run cycles see the kernel's true total, while the
        crossover behaviour (per-input time *falling* with batch — the
        thing Newton lacks) is preserved.
        """
        if vectors is not None:
            vectors = validate_batch_vectors(vectors, handle.n)
            k = vectors.shape[0]
        else:
            if batch is None:
                raise ProtocolError("provide vectors or a batch size")
            if batch <= 0:
                raise ProtocolError("batch must be positive")
            k = batch
        total = float(self.model.gemv_cycles(handle.m, handle.n, batch=k))
        per_run = total / k
        runs = []
        for i in range(k):
            output = None
            if self.functional:
                assert vectors is not None and handle.matrix is not None
                output = (handle.matrix @ vectors[i]).astype(np.float32)
            runs.append(BackendRun(cycles=per_run, output=output))
        self._gemvs += k
        self._total_cycles += total
        return runs
