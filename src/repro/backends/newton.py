"""The cycle-accurate Newton device behind the :class:`Backend` protocol.

A thin, behavior-preserving adapter: every method delegates to the
wrapped :class:`~repro.core.device.NewtonDevice`, so a ``NewtonBackend``
(and a 1-device :class:`~repro.cluster.ShardedCluster` built from one)
is bit-identical — outputs *and* cycle counts — to driving the device
directly. The differential suite pins exactly that.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.backends.base import Backend
from repro.core.device import MatrixHandle, NewtonDevice
from repro.core.optimizations import FULL, OptimizationConfig
from repro.core.result import GemvRunResult
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams


class NewtonBackend(Backend):
    """The simulated Newton accelerator as a :class:`Backend`."""

    name = "newton"

    def __init__(
        self,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        *,
        opt: OptimizationConfig = FULL,
        functional: bool = True,
        refresh_enabled: bool = True,
        fast: bool = True,
        channel_workers: int = 0,
        telemetry: bool = True,
        datapath: Optional[str] = None,
        device: Optional[NewtonDevice] = None,
    ):
        """Wrap an existing ``device``, or build one from the knobs."""
        self.device = (
            device
            if device is not None
            else NewtonDevice(
                config,
                timing,
                opt,
                functional=functional,
                refresh_enabled=refresh_enabled,
                fast=fast,
                channel_workers=channel_workers,
                telemetry=telemetry,
                datapath=datapath,
            )
        )

    # ------------------------------------------------------------------
    # the Backend context attributes, proxied from the device

    @property
    def config(self) -> DRAMConfig:  # type: ignore[override]
        return self.device.config

    @property
    def timing(self) -> TimingParams:  # type: ignore[override]
        return self.device.timing

    @property
    def functional(self) -> bool:  # type: ignore[override]
        return self.device.functional

    # ------------------------------------------------------------------

    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ) -> MatrixHandle:
        return self.device.load_matrix(matrix, m=m, n=n)

    def store_matrix(self, handle: MatrixHandle, matrix: np.ndarray) -> None:
        self.device.store_matrix(handle, matrix)

    def gemv(
        self,
        handle: MatrixHandle,
        vector: Optional[np.ndarray] = None,
        *,
        fused_input: bool = False,
    ) -> GemvRunResult:
        return self.device.gemv(handle, vector, fused_input=fused_input)

    def gemv_batch(
        self,
        handle: MatrixHandle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
    ) -> List[GemvRunResult]:
        return self.device.gemv_batch(handle, vectors, batch=batch)

    def service_cycles(self, handle: MatrixHandle) -> float:
        """One simulated GEMV's wall clock (the deterministic service).

        Advances the device clock by one run — the same steady-state
        regime the serving studies measure in.
        """
        return float(self.device.gemv(handle).cycles)

    def collect_metrics(self) -> dict:
        return self.device.collect_metrics()

    def close(self) -> None:
        self.device.close()
