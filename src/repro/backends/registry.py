"""The string-keyed backend registry and factory.

``make_backend("newton" | "analytical" | "ideal" | "gpu", ...)`` is the
one place the CLI, the experiments, the cluster layer, and the
multi-model scheduler construct execution backends, so a new backend
becomes reachable everywhere by registering a single factory.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.backends.base import Backend
from repro.backends.models import AnalyticalBackend, GpuBackend, IdealBackend
from repro.backends.newton import NewtonBackend
from repro.errors import ConfigurationError

_REGISTRY: Dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under ``name`` (must be unused)."""
    if not name:
        raise ConfigurationError("backend names must be non-empty")
    if name in _REGISTRY:
        raise ConfigurationError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_backend(name: str, *args, **kwargs) -> Backend:
    """Construct a backend by registry name.

    Positional/keyword arguments pass straight to the backend's
    constructor: ``config``/``timing`` everywhere, plus per-backend
    knobs (``opt``, ``functional``, ``refresh_enabled``, ``fast``, ...
    — backends ignore knobs that do not apply to them).

    Raises:
        ConfigurationError: for an unregistered name.
    """
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose from "
            f"{', '.join(available_backends())}"
        )
    return factory(*args, **kwargs)


def _hetero_factory(*args, **kwargs) -> Backend:
    # Imported lazily: the hybrid pulls in the host-side cost model,
    # whose package init imports this registry.
    from repro.backends.hetero import HeteroBackend

    return HeteroBackend(*args, **kwargs)


register_backend("newton", NewtonBackend)
register_backend("analytical", AnalyticalBackend)
register_backend("ideal", IdealBackend)
register_backend("gpu", GpuBackend)
register_backend("hetero", _hetero_factory)
