"""Comparison baselines: Ideal Non-PIM (analytic and simulated), a
Titan-V-like GPU model, and the paper's Section III-F analytical model."""

from repro.baselines.analytical import AnalyticalModel
from repro.baselines.gpu import GpuModel, titan_v_like
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.baselines.streaming_sim import StreamingRunResult, StreamingSimulator

__all__ = [
    "AnalyticalModel",
    "GpuModel",
    "titan_v_like",
    "IdealNonPim",
    "StreamingSimulator",
    "StreamingRunResult",
]
