"""The paper's simple performance model (Section III-F).

For one DRAM row processed across all ``n`` banks:

* Ideal Non-PIM:  ``t = col * tCCD``  (retrieving the row hides all
  activation and tFAW delays in other banks), and
* Newton:  ``t = max(tRRD, tFAW) * (n/4 - 1) + tACT + col * tCCD``
  (four-bank ganged activations staggered by the tFAW window, the last
  activation exposed, then rate-matched column accesses).

Newton's speedup over Ideal Non-PIM is then ``n / (o + 1)`` with
``o = (max(tRRD, tFAW) * (n/4 - 1) + tACT) / (col * tCCD)`` — the ratio
of activation overhead to data-retrieval time.

``tACT`` is the per-tile row-turnaround cost. The paper's simulator has
no row double-buffering, so between consecutive tiles a bank must both
precharge and re-activate; we therefore take ``tACT = tRCD + tRP``,
which is what the measured steady state exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AnalyticalModel:
    """Closed-form Newton / Ideal Non-PIM timing (Section III-F)."""

    config: DRAMConfig
    timing: TimingParams
    aggressive_tfaw: bool = True

    @property
    def t_act(self) -> int:
        """Exposed per-tile activation turnaround (tRCD + tRP)."""
        return self.timing.t_rcd + self.timing.t_rp

    def activation_overhead(self, banks: int = 0) -> int:
        """``max(tRRD, tFAW) * (n/4 - 1) + tACT`` for ``n`` banks."""
        n = banks or self.config.banks_per_channel
        if n <= 0 or n % self.config.bank_group_size != 0:
            raise ConfigurationError(
                f"bank count {n} must be a positive multiple of the group size"
            )
        t = self.timing
        faw = t.faw_window(self.aggressive_tfaw)
        groups = n // self.config.bank_group_size
        return max(t.t_rrd, faw) * (groups - 1) + self.t_act

    def t_ideal_non_pim_row(self) -> int:
        """Ideal Non-PIM's effective time for one DRAM row: col * tCCD."""
        return self.config.cols_per_row * self.timing.t_ccd

    def t_newton_row(self, banks: int = 0) -> int:
        """Newton's time to process one DRAM row in all banks."""
        return self.activation_overhead(banks) + self.t_ideal_non_pim_row()

    def overhead_ratio(self, banks: int = 0) -> float:
        """``o``: activation overhead over data-retrieval time."""
        return self.activation_overhead(banks) / self.t_ideal_non_pim_row()

    def predicted_speedup(self, banks: int = 0) -> float:
        """Newton over Ideal Non-PIM: ``n / (o + 1)``."""
        n = banks or self.config.banks_per_channel
        return n / (self.overhead_ratio(banks) + 1.0)

    # ------------------------------------------------------------------
    # whole-layer extension

    def predicted_gwrite_cycles(self, n: int) -> float:
        """The global-buffer loading term of the whole-layer model.

        One GWRITE command slot per sub-chunk, once per chunk — the host
        round-trip cost a fused (device-resident) input elides.
        """
        if n <= 0:
            raise ConfigurationError("dimensions must be positive")
        cfg = self.config
        t = self.timing
        total = 0.0
        remaining = n
        while remaining > 0:
            chunk_elems = min(remaining, cfg.elems_per_row)
            cols = -(-chunk_elems // cfg.elems_per_col)
            total += cols * t.t_cmd
            remaining -= chunk_elems
        return total

    def predicted_layer_cycles(self, m: int, n: int, channels: int = 1) -> float:
        """Whole-layer extension of the per-row model.

        The Section III-F formula describes one steady-state DRAM row;
        a full layer additionally pays the global-buffer loading (one
        GWRITE command slot per sub-chunk, once per chunk — amortized
        over the chunk's tiles) and per-channel row partitioning with
        zero-padded tiles. The simulator also models READRES (hidden
        under the next tile's activations in steady state) and refresh
        (excluded here, as in the paper's model).
        """
        if m <= 0 or n <= 0:
            raise ConfigurationError("dimensions must be positive")
        if channels <= 0:
            raise ConfigurationError("channels must be positive")
        cfg = self.config
        t = self.timing
        m_channel = -(-m // channels)  # the critical (largest) slice
        tiles = -(-m_channel // cfg.banks_per_channel)
        total = 0.0
        remaining = n
        while remaining > 0:
            chunk_elems = min(remaining, cfg.elems_per_row)
            cols = -(-chunk_elems // cfg.elems_per_col)
            gwrite = cols * t.t_cmd
            tile_time = self.activation_overhead() + cols * t.t_ccd
            total += gwrite + tiles * tile_time
            remaining -= chunk_elems
        return total
