"""A Titan-V-like GPU roofline model.

The paper models its GPU with GPGPU-sim 4.0 configured as a Titan V (80
SMs, 24 memory channels with Newton's DRAM timings) running CUTLASS
GEMV kernels with constant launch overheads factored out. GPGPU-sim is
unavailable here, so we substitute a calibrated roofline with the two
properties the evaluation actually uses:

* at batch 1 the GPU achieves a fraction ``gemv_efficiency`` of the
  external DRAM bandwidth on GEMV (calibrated once so Ideal Non-PIM's
  published 5.4x mean advantage over the GPU holds), and
* with batch k the matrix is read once per batch, with a mild efficiency
  decay ``k ** batch_decay`` (skinnier effective GEMM tiles, growing
  activation traffic), until the compute roofline binds — placing the
  published Newton/GPU crossover near batch 64 (Figure 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GpuModel:
    """Roofline execution-time model for a discrete GPU."""

    config: DRAMConfig
    timing: TimingParams
    gemv_efficiency: float = 0.185
    """Achieved fraction of external bandwidth on batch-1 GEMV
    (1 / 5.4: the paper's Ideal-Non-PIM-over-GPU mean)."""
    batch_decay: float = -0.04
    """Exponent of the mild per-batch efficiency decay."""
    peak_flops_per_cycle: float = 28000.0
    """fp16 FLOPs per DRAM-command-clock cycle (~28 TFLOP/s at 1 GHz)."""
    compute_efficiency: float = 0.5
    """Achieved fraction of peak on dense GEMM."""
    kernel_overhead_cycles: float = 0.0
    """Fixed per-kernel cost. The paper isolates and removes CUTLASS's
    constant overhead (conservatively favouring the GPU), so zero."""

    saturation_bytes: float = 2_000_000.0
    """Working set needed to saturate the GPU's 80 SMs and 24 channels.
    Smaller kernels achieve proportionally (square-root law) less of the
    peak bandwidth — which is why the tiny DLRM layer is one of the
    paper's *highest*-speedup cases."""

    refresh_derate: float = 1.0
    """Time inflation from DRAM refresh (set to match Ideal Non-PIM's,
    since the GPU's DRAM refreshes identically)."""

    def __post_init__(self) -> None:
        if not 0 < self.gemv_efficiency <= 1:
            raise ConfigurationError("gemv_efficiency must be in (0, 1]")
        if not 0 < self.compute_efficiency <= 1:
            raise ConfigurationError("compute_efficiency must be in (0, 1]")
        if self.peak_flops_per_cycle <= 0:
            raise ConfigurationError("peak_flops_per_cycle must be positive")
        if self.batch_decay > 0:
            raise ConfigurationError("batch_decay must be non-positive")
        if self.refresh_derate < 1.0:
            raise ConfigurationError("refresh_derate cannot be below 1")
        if self.saturation_bytes <= 0:
            raise ConfigurationError("saturation_bytes must be positive")

    def bytes_per_cycle(self) -> float:
        """External DRAM bandwidth (same memory system as Newton's host)."""
        return (
            self.config.num_channels
            * self.config.col_io_bytes
            / self.timing.t_ccd
        )

    def efficiency_at_batch(self, batch: int) -> float:
        """Achieved bandwidth fraction at a batch size."""
        if batch <= 0:
            raise ConfigurationError("batch must be positive")
        return self.gemv_efficiency * math.pow(batch, self.batch_decay)

    def saturation_factor(self, matrix_bytes: float) -> float:
        """Bandwidth derate for kernels too small to fill the machine."""
        if matrix_bytes >= self.saturation_bytes:
            return 1.0
        return math.sqrt(matrix_bytes / self.saturation_bytes)

    def gemv_cycles(self, m: int, n: int, batch: int = 1) -> float:
        """Cycles for a k-way batched GEMV (one kernel)."""
        if m <= 0 or n <= 0:
            raise ConfigurationError("dimensions must be positive")
        matrix_bytes = 2 * m * n
        vector_bytes = 2 * batch * (m + n)
        achieved = (
            self.bytes_per_cycle()
            * self.efficiency_at_batch(batch)
            * self.saturation_factor(matrix_bytes)
        )
        memory = (matrix_bytes + vector_bytes) * self.refresh_derate / achieved
        compute = (2.0 * m * n * batch) / (
            self.peak_flops_per_cycle * self.compute_efficiency
        )
        return max(memory, compute) + self.kernel_overhead_cycles

    def gemv_cycles_per_input(self, m: int, n: int, batch: int = 1) -> float:
        """Per-input cycles at a batch size."""
        return self.gemv_cycles(m, n, batch) / batch

    def host_op_cycles(self, flops: int, traffic_bytes: int) -> float:
        """Roofline time for non-FC host work (convs, embeddings, glue)."""
        if flops < 0 or traffic_bytes < 0:
            raise ConfigurationError("host op flops/bytes must be non-negative")
        compute = flops / (self.peak_flops_per_cycle * self.compute_efficiency)
        memory = traffic_bytes / self.bytes_per_cycle()
        return max(compute, memory)


GPU_TUNABLE_FIELDS = (
    "gemv_efficiency",
    "batch_decay",
    "peak_flops_per_cycle",
    "compute_efficiency",
    "kernel_overhead_cycles",
    "saturation_bytes",
    "refresh_derate",
)
"""The roofline parameters :func:`titan_v_like` accepts as overrides
(and the CLI exposes as ``--gpu-<name>`` flags)."""


def titan_v_like(
    config: DRAMConfig, timing: TimingParams, **overrides: float
) -> GpuModel:
    """The calibrated Titan-V-like baseline used across the experiments.

    Keyword ``overrides`` replace individual roofline parameters
    (any of :data:`GPU_TUNABLE_FIELDS`) so calibration and the CLI can
    tune the model without a bespoke constructor call; unknown names
    raise :class:`~repro.errors.ConfigurationError`.
    """
    unknown = set(overrides) - set(GPU_TUNABLE_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"unknown GpuModel override(s) {sorted(unknown)}; choose from "
            f"{GPU_TUNABLE_FIELDS}"
        )
    derate = timing.t_refi / (timing.t_refi - timing.t_rfc)
    params = {"refresh_derate": derate, **overrides}
    return GpuModel(config=config, timing=timing, **params)
