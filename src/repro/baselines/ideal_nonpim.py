"""Ideal Non-PIM: the upper bound on any non-PIM architecture.

Section IV: "Ideal Non-PIM assumes infinite compute bandwidth and is
limited only by the DRAM's external bandwidth. Thus its execution time is
modeled as the time to transfer DRAM data to the host." Input and output
vectors are assumed held on the compute chip. With k-way batching the
matrix is transferred once per batch (perfect caching), so per-input time
falls as 1/k — the Figure 11 crossover.

Refresh still steals external bandwidth; because Ideal Non-PIM runs
longer than Newton per unit of data, it sees proportionally more
refresh interruptions (the effect the paper notes makes its model's
prediction slightly conservative).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class IdealNonPim:
    """Bandwidth-bound execution-time model."""

    config: DRAMConfig
    timing: TimingParams
    refresh_enabled: bool = True

    def bytes_per_cycle(self) -> float:
        """Aggregate external bandwidth: every channel streams one column
        I/O per tCCD."""
        return (
            self.config.num_channels
            * self.config.col_io_bytes
            / self.timing.t_ccd
        )

    def refresh_derate(self) -> float:
        """Time inflation from refresh stealing the channel."""
        if not self.refresh_enabled:
            return 1.0
        t = self.timing
        return t.t_refi / (t.t_refi - t.t_rfc)

    def gemv_cycles(self, m: int, n: int, batch: int = 1) -> float:
        """Cycles for a k-way batched matrix-vector product.

        The matrix crosses the external interface once per batch; the
        (small) input/output vectors are free, per the paper's
        conservative assumptions.
        """
        if m <= 0 or n <= 0:
            raise ConfigurationError("dimensions must be positive")
        if batch <= 0:
            raise ConfigurationError("batch must be positive")
        matrix_bytes = 2 * m * n
        return matrix_bytes / self.bytes_per_cycle() * self.refresh_derate()

    def gemv_cycles_per_input(self, m: int, n: int, batch: int = 1) -> float:
        """Per-input cycles at a given batch size."""
        return self.gemv_cycles(m, n, batch) / batch

    def model_cycles(self, fc_bytes: int) -> float:
        """Cycles to stream a model's total FC footprint once."""
        if fc_bytes <= 0:
            raise ConfigurationError("fc_bytes must be positive")
        return fc_bytes / self.bytes_per_cycle() * self.refresh_derate()
