"""A *simulated* conventional-DRAM streaming baseline.

The paper models Ideal Non-PIM analytically (matrix bytes over external
bandwidth). This module drives the same cycle-accurate controller Newton
uses with a conventional read stream — bank-interleaved ACT + 32 RD (the
last with auto-precharge) per row, exactly how a host would stream the
matrix out — and serves two purposes:

* **cross-validation**: the simulated stream must approach the analytic
  model's bandwidth (activation/tFAW latencies hide under data transfer,
  as Section III-F assumes), pinning the two baselines together;
* **an honest lower baseline**: a real controller loses a little
  bandwidth at row turnarounds; the analytic model is the optimistic
  bound the paper wants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram import commands as cmds
from repro.dram.config import DRAMConfig
from repro.dram.controller import ChannelController
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StreamingRunResult:
    """Outcome of streaming a matrix out of conventional DRAM."""

    cycles: int
    bytes_transferred: int
    rows_streamed: int
    refreshes: int

    @property
    def bytes_per_cycle(self) -> float:
        """Achieved external bandwidth."""
        if self.cycles == 0:
            return 0.0
        return self.bytes_transferred / self.cycles


class StreamingSimulator:
    """Simulates a host streaming matrix data from conventional DRAM."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        *,
        refresh_enabled: bool = True,
    ):
        self.config = config
        self.timing = timing
        self.refresh_enabled = refresh_enabled

    def stream_rows(self, dram_rows: int, *, write: bool = False) -> StreamingRunResult:
        """Stream ``dram_rows`` whole DRAM rows, bank-interleaved.

        The host opens rows round-robin across banks and drains each with
        back-to-back column accesses; with enough banks the data bus
        stays saturated and activations hide — the Section III-F
        assumption. With ``write=True`` the stream writes instead of
        reads — the Section III-E ECC reload of the matrix.
        """
        if dram_rows <= 0:
            raise ConfigurationError("stream at least one DRAM row")
        controller = ChannelController(
            self.config,
            self.timing,
            aggressive_tfaw=False,  # conventional DRAM: standard tFAW
            refresh_enabled=self.refresh_enabled,
        )
        banks = self.config.banks_per_channel
        cols = self.config.cols_per_row
        end = 0

        def coords(i: int) -> "tuple[int, int]":
            return i % banks, i // banks

        # Pipelined streaming: the next bank's activation is issued while
        # the current bank drains, so tRCD hides under the 32 reads —
        # what a real host controller does, and what lets the stream
        # approach the analytic bandwidth bound.
        controller.issue(cmds.act(*coords(0)))
        for i in range(dram_rows):
            bank, _ = coords(i)
            refreshes_before = controller.stats.refreshes
            controller.refresh_barrier(cols * self.timing.t_ccd)
            if controller.stats.refreshes != refreshes_before:
                # The refresh closed every bank, including the row we
                # pre-activated; reopen it before draining.
                controller.issue(cmds.act(*coords(i)))
            if i + 1 < dram_rows:
                controller.issue(cmds.act(*coords(i + 1)))
            for col in range(cols):
                ap = col == cols - 1
                command = (
                    cmds.wr(bank, col, auto_precharge=ap)
                    if write
                    else cmds.rd(bank, col, auto_precharge=ap)
                )
                record = controller.issue(command)
                end = max(end, record.complete)
        return StreamingRunResult(
            cycles=end,
            bytes_transferred=dram_rows * self.config.row_bytes,
            rows_streamed=dram_rows,
            refreshes=controller.stats.refreshes,
        )

    def gemv_cycles(self, m: int, n: int) -> float:
        """Simulated time for an ideal host to stream an m x n matrix.

        Rows are spread across channels like Newton's partitioning; the
        per-channel stream covers the channel's share of matrix bytes.
        """
        if m <= 0 or n <= 0:
            raise ConfigurationError("dimensions must be positive")
        matrix_bytes = 2 * m * n
        per_channel = -(-matrix_bytes // self.config.num_channels)
        rows = -(-per_channel // self.config.row_bytes)
        return float(self.stream_rows(rows).cycles)
