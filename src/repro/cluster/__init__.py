"""``repro.cluster`` — sharded / replicated multi-device execution.

Compose N :class:`~repro.backends.base.Backend` instances into one
logical device::

    from repro.cluster import make_cluster

    cluster = make_cluster("newton", devices=4, functional=True)
    handle = cluster.load_matrix(matrix)          # row-sharded 4 ways
    run = cluster.gemv(handle, vector)            # fp32 host reduction

Two executions of the same semantics:

* :class:`ShardedCluster` — in-process (the bit-exact reference, and
  the right choice for timing-only sweeps where device simulation is
  cheap);
* :class:`ProcessShardedCluster` — one spawned worker process per
  device with shared-memory weight transfer, for real N× wall-clock on
  functional workloads (``workers="process"``).

See :mod:`repro.cluster.sharded` for the placement-mode semantics and
:mod:`repro.cluster.process_pool` for the fleet protocol.
"""

from typing import Optional

from repro.cluster.process_pool import ProcessShardedCluster
from repro.cluster.sharded import (
    REPLICATE,
    SHARD,
    ClusterHandle,
    ClusterRun,
    ShardedCluster,
)
from repro.cluster.shm import SharedNDArray, ShmSpec
from repro.errors import ConfigurationError

WORKER_MODES = ("inline", "process")
"""Recognized cluster execution styles for :func:`make_cluster`."""


def make_cluster(
    backend: str = "newton",
    devices: int = 1,
    *,
    mode: str = SHARD,
    workers: Optional[str] = None,
    seed: int = 0,
    **kwargs,
):
    """Build a homogeneous N-device cluster.

    ``workers="inline"`` (the default) composes backends in-process
    (:meth:`ShardedCluster.from_spec`); ``workers="process"`` spawns the
    multiprocessing fleet (:class:`ProcessShardedCluster`). Both accept
    the same backend keyword arguments and are bit-identical in output.
    """
    resolved = (workers or "inline").strip().lower()
    if resolved not in WORKER_MODES:
        raise ConfigurationError(
            f"unknown cluster workers style {workers!r}; choose from "
            f"{WORKER_MODES}"
        )
    if resolved == "process":
        return ProcessShardedCluster(
            devices, mode=mode, backend=backend, seed=seed, **kwargs
        )
    return ShardedCluster.from_spec(backend, devices, mode=mode, **kwargs)


__all__ = [
    "SHARD",
    "REPLICATE",
    "WORKER_MODES",
    "ClusterHandle",
    "ClusterRun",
    "ProcessShardedCluster",
    "ShardedCluster",
    "SharedNDArray",
    "ShmSpec",
    "make_cluster",
]
