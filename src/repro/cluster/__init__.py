"""``repro.cluster`` — sharded / replicated multi-device execution.

Compose N :class:`~repro.backends.base.Backend` instances into one
logical device::

    from repro.cluster import ShardedCluster

    cluster = ShardedCluster.from_spec("newton", devices=4, functional=True)
    handle = cluster.load_matrix(matrix)          # row-sharded 4 ways
    run = cluster.gemv(handle, vector)            # fp32 host reduction

See :mod:`repro.cluster.sharded` for the placement-mode semantics.
"""

from repro.cluster.sharded import (
    REPLICATE,
    SHARD,
    ClusterHandle,
    ClusterRun,
    ShardedCluster,
)

__all__ = [
    "SHARD",
    "REPLICATE",
    "ClusterHandle",
    "ClusterRun",
    "ShardedCluster",
]
