"""The multiprocessing shard fleet: N devices, N interpreters, no GIL.

:class:`~repro.cluster.sharded.ShardedCluster` composes backends inside
one process — the right reference semantics, but the functional
datapath is CPU-bound Python/NumPy, so N in-process devices time-slice
one core. :class:`ProcessShardedCluster` keeps the exact same placement
modes, reduction order, and telemetry shape while running every device
in its own **spawned** worker process, so ``--devices N`` buys ~N× real
wall-clock.

Design points, each load-bearing:

* **spawn, not fork.** Workers are started with the ``spawn`` context:
  no inherited locks, no copy-on-write aliasing of the parent's NumPy
  state, identical behaviour on platforms where fork is unavailable or
  unsafe. Everything a worker needs travels explicitly through its
  :class:`multiprocessing.Pipe` (the worker entry point is a
  module-level function precisely so it pickles under spawn).
* **shared-memory weight transfer.** ``load_matrix`` places the full
  matrix in one POSIX shared-memory segment
  (:class:`~repro.cluster.shm.SharedNDArray`); each worker attaches,
  copies *its row slice* out, and acknowledges; the parent unlinks
  immediately. The segment lives for one load, cannot leak (finalizers
  + atexit sweep), and the matrix crosses the kernel once instead of
  being pickled N times.
* **bit-identical reduction.** A shard-mode GEMV broadcasts the input
  vector, collects per-shard partials, and folds them through the same
  fp32 :class:`~repro.host.accumulator.HostAccumulator` in the same
  shard order as the in-process cluster — so outputs are bit-identical
  to the 1-process cluster and to driving a device directly (pinned by
  ``tests/cluster/test_process_pool.py``).
* **deterministic workers.** Worker *i* seeds ``random`` and NumPy's
  legacy generator from ``SeedSequence([seed, i])`` before building its
  backend. The simulator itself is deterministic; the seeding pins down
  any backend that isn't.
* **telemetry merge.** ``collect_metrics`` gathers each worker's own
  ``newton-telemetry/v1`` export and namespaces it exactly like the
  in-process cluster (``devices["device<i>"]``), adding an
  ``execution`` block recording the fleet shape.

Requests are issued send-all-then-receive-all, so shards genuinely
overlap; replies are consumed in shard order for determinism.
"""

from __future__ import annotations

import multiprocessing
import random
import traceback
import weakref
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.cluster.sharded import REPLICATE, SHARD, ClusterHandle, ClusterRun
from repro.cluster.shm import SharedNDArray, ShmSpec
from repro.core.device import validate_batch_vectors
from repro.core.layout import partition_rows
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError, ProtocolError, WorkerError
from repro.host.accumulator import HostAccumulator
from repro.telemetry import SCHEMA

_MODES = (SHARD, REPLICATE)

JOIN_TIMEOUT_S = 10.0
"""Grace period for worker shutdown before the parent terminates it."""


def derive_worker_seed(seed: int, worker_index: int) -> int:
    """The deterministic per-worker seed: ``SeedSequence([seed, i])``."""
    return int(
        np.random.SeedSequence([seed, worker_index]).generate_state(1)[0]
    )


def _worker_main(
    conn,
    worker_index: int,
    seed: int,
    backend_name: str,
    backend_kwargs: dict,
) -> None:
    """One fleet worker: build a backend, serve pipe requests until told
    to stop. Runs in a spawned child process."""
    worker_seed = derive_worker_seed(seed, worker_index)
    random.seed(worker_seed)
    np.random.seed(worker_seed % (2**32))

    from repro.backends.registry import make_backend

    backend = None
    handles: Dict[int, object] = {}
    try:
        try:
            backend = make_backend(backend_name, **backend_kwargs)
        except Exception:
            conn.send(("error", traceback.format_exc()))
            return
        conn.send(
            (
                "ok",
                {
                    "name": backend.name,
                    "config": backend.config,
                    "timing": backend.timing,
                    "functional": backend.functional,
                },
            )
        )
        while True:
            message = conn.recv()
            op = message[0]
            if op == "shutdown":
                conn.send(("ok", None))
                break
            try:
                if op == "load":
                    _, handle_id, spec, lo, hi, n = message
                    if spec is not None:
                        shared = SharedNDArray.attach(spec)
                        try:
                            shard = np.array(
                                shared.array[lo:hi], dtype=np.float32
                            )
                        finally:
                            shared.release()
                        handles[handle_id] = backend.load_matrix(shard)
                    else:
                        handles[handle_id] = backend.load_matrix(
                            m=hi - lo, n=n
                        )
                    conn.send(("ok", None))
                elif op == "store":
                    _, handle_id, spec, lo, hi = message
                    shared = SharedNDArray.attach(spec)
                    try:
                        shard = np.array(
                            shared.array[lo:hi], dtype=np.float32
                        )
                    finally:
                        shared.release()
                    backend.store_matrix(handles[handle_id], shard)
                    conn.send(("ok", None))
                elif op == "gemv_batch":
                    _, handle_id, vectors, count, fused = message
                    if fused:
                        # gemv_batch has no fused surface (batches share
                        # no residency); fused requests run per-vector.
                        if vectors is not None:
                            batch = validate_batch_vectors(
                                vectors, backend.handle_shape(handles[handle_id])[1]
                            )
                            runs = [
                                backend.gemv(
                                    handles[handle_id],
                                    batch[i],
                                    fused_input=True,
                                )
                                for i in range(batch.shape[0])
                            ]
                        else:
                            runs = [
                                backend.gemv(
                                    handles[handle_id], fused_input=True
                                )
                                for _ in range(count)
                            ]
                    else:
                        runs = backend.gemv_batch(
                            handles[handle_id], vectors, batch=count
                        )
                    conn.send(
                        (
                            "ok",
                            [(float(r.cycles), r.output) for r in runs],
                        )
                    )
                elif op == "service":
                    _, handle_id = message
                    conn.send(
                        ("ok", float(backend.service_cycles(handles[handle_id])))
                    )
                elif op == "metrics":
                    conn.send(("ok", backend.collect_metrics()))
                else:
                    conn.send(
                        ("error", f"unknown fleet request {op!r}")
                    )
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt, BrokenPipeError):
        pass
    finally:
        if backend is not None:
            backend.close()
        conn.close()


def _terminate_fleet(processes: list, connections: list) -> None:
    """Finalizer body: make sure no worker outlives the cluster object."""
    for conn in connections:
        try:
            conn.close()
        except OSError:
            pass
    for process in processes:
        if process.is_alive():
            process.terminate()
        process.join(timeout=1.0)


class ProcessShardedCluster(Backend):
    """N backend instances, one spawned worker process each."""

    name = "cluster"

    def __init__(
        self,
        devices: int,
        *,
        mode: str = SHARD,
        backend: str = "newton",
        seed: int = 0,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        **backend_kwargs,
    ):
        if devices <= 0:
            raise ConfigurationError("a cluster needs at least one device")
        if mode not in _MODES:
            raise ConfigurationError(
                f"unknown cluster mode {mode!r}; choose from {_MODES}"
            )
        self.mode = mode
        self.seed = seed
        self._backend_name = backend
        self._next_replica = 0
        self._next_handle = 0
        self._closed = False

        kwargs = dict(backend_kwargs)
        if config is not None:
            kwargs["config"] = config
        if timing is not None:
            kwargs["timing"] = timing

        context = multiprocessing.get_context("spawn")
        self._connections: List = []
        self._processes: List = []
        for index in range(devices):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, index, seed, backend, kwargs),
                name=f"newton-shard-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._connections.append(parent_conn)
            self._processes.append(process)
        # Even an abandoned (never-closed) cluster must not strand its
        # workers: the finalizer tears the fleet down on GC or at exit.
        self._fleet_finalizer = weakref.finalize(
            self, _terminate_fleet, self._processes, self._connections
        )
        # The construction handshake doubles as the context query.
        descriptions = self._receive_all(range(devices))
        self._worker_name = descriptions[0]["name"]
        self._config = descriptions[0]["config"]
        self._timing = descriptions[0]["timing"]
        self._functional = all(d["functional"] for d in descriptions)

    # ------------------------------------------------------------------
    # pipe plumbing

    def _receive(self, index: int):
        try:
            status, payload = self._connections[index].recv()
        except EOFError:
            raise WorkerError(
                f"fleet worker {index} died mid-request (pipe closed)"
            ) from None
        if status != "ok":
            raise WorkerError(f"fleet worker {index} failed:\n{payload}")
        return payload

    def _send(self, index: int, message: tuple) -> None:
        if self._closed:
            raise ProtocolError("the cluster has been closed")
        try:
            self._connections[index].send(message)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerError(
                f"fleet worker {index} is gone ({exc})"
            ) from None

    def _receive_all(self, indices) -> list:
        return [self._receive(index) for index in indices]

    def _broadcast(self, indices, message: tuple) -> list:
        """Send to every index, then gather replies in index order."""
        for index in indices:
            self._send(index, message)
        return self._receive_all(indices)

    # ------------------------------------------------------------------
    # Backend context attributes

    @property
    def devices(self) -> int:
        """Number of worker processes in the fleet."""
        return len(self._processes)

    @property
    def config(self) -> DRAMConfig:  # type: ignore[override]
        return self._config

    @property
    def timing(self) -> TimingParams:  # type: ignore[override]
        return self._timing

    @property
    def functional(self) -> bool:  # type: ignore[override]
        return self._functional

    # ------------------------------------------------------------------
    # residency

    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ) -> ClusterHandle:
        """Place a matrix across the fleet (same modes as the in-process
        cluster); functional data travels via one shared-memory segment.
        """
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=np.float32)
            if matrix.ndim != 2:
                raise ConfigurationError(
                    f"matrix must be 2-D, got shape {matrix.shape}"
                )
            m, n = matrix.shape
        elif m is None or n is None:
            raise ConfigurationError("provide a matrix, or both m and n")
        assert m is not None and n is not None
        handle = ClusterHandle(m=m, n=n, mode=self.mode)
        handle_id = self._next_handle
        self._next_handle += 1

        if self.mode == REPLICATE:
            slices = [(0, m)] * self.devices
        else:
            slices = list(partition_rows(m, self.devices))

        shared: Optional[SharedNDArray] = None
        spec: Optional[ShmSpec] = None
        if matrix is not None:
            shared = SharedNDArray.create(matrix.shape, np.float32)
            shared.array[:] = matrix
            spec = shared.spec
        try:
            participants = []
            for index, (lo, hi) in enumerate(slices):
                if hi == lo:
                    continue
                self._send(index, ("load", handle_id, spec, lo, hi, n))
                participants.append(index)
                handle.shards.append((index, (lo, hi), handle_id))
            # Every worker has copied its slice out once it acknowledges;
            # the segment is then dead weight and is unlinked right away.
            self._receive_all(participants)
        finally:
            if shared is not None:
                shared.release()
        return handle

    def store_matrix(self, handle: ClusterHandle, matrix: np.ndarray) -> None:
        """Rewrite a resident matrix in place across the fleet.

        Same slice semantics as :meth:`ShardedCluster.store_matrix`; the
        data travels through one shared-memory segment like
        :meth:`load_matrix`, and every worker re-stores its slice
        against its existing handle (placement untouched).
        """
        if not handle.shards:
            raise ProtocolError("the cluster handle has no placements")
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.shape != (handle.m, handle.n):
            raise ConfigurationError(
                f"store shape {matrix.shape} does not match the resident "
                f"matrix ({handle.m}, {handle.n})"
            )
        shared = SharedNDArray.create(matrix.shape, np.float32)
        shared.array[:] = matrix
        try:
            participants = []
            for index, (lo, hi), handle_id in handle.shards:
                self._send(index, ("store", handle_id, shared.spec, lo, hi))
                participants.append(index)
            self._receive_all(participants)
        finally:
            shared.release()

    # ------------------------------------------------------------------
    # execution

    def gemv(
        self,
        handle: ClusterHandle,
        vector: Optional[np.ndarray] = None,
        *,
        fused_input: bool = False,
    ) -> ClusterRun:
        """One product across the fleet (see :class:`ShardedCluster`
        for the mode semantics — identical here, just parallel)."""
        if vector is not None:
            runs = self.gemv_batch(
                handle, np.asarray(vector)[None, :], fused_input=fused_input
            )
        else:
            runs = self.gemv_batch(handle, batch=1, fused_input=fused_input)
        return runs[0]

    def gemv_batch(
        self,
        handle: ClusterHandle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
        fused_input: bool = False,
    ) -> List[ClusterRun]:
        """A batch of products with one fleet round-trip.

        The whole batch is shipped to every participating worker in one
        request — shards overlap both across devices *and* across the
        batch — and reduced per input in shard order, so outputs are
        bit-identical to running the batch on the in-process cluster.
        """
        if not handle.shards:
            raise ProtocolError("the cluster handle has no placements")
        if vectors is not None:
            vectors = validate_batch_vectors(vectors, handle.n)
            count = vectors.shape[0]
        elif batch is not None:
            if batch <= 0:
                raise ProtocolError("batch must be positive")
            count = batch
        else:
            raise ProtocolError("provide vectors or a batch size")

        if self.mode == REPLICATE:
            return self._replicated_batch(handle, vectors, count, fused_input)

        indices = [index for index, _, _ in handle.shards]
        handle_id = handle.shards[0][2]
        replies = self._broadcast(
            indices, ("gemv_batch", handle_id, vectors, count, fused_input)
        )
        runs: List[ClusterRun] = []
        for item in range(count):
            accumulator = (
                HostAccumulator(handle.m) if self.functional else None
            )
            device_runs: List[Tuple[int, object]] = []
            for (index, (lo, hi), _), reply in zip(handle.shards, replies):
                cycles, output = reply[item]
                device_runs.append((index, (cycles, output)))
                if accumulator is not None and output is not None:
                    accumulator.add_partials(np.arange(lo, hi), output)
            runs.append(
                ClusterRun(
                    cycles=float(
                        max(cycles for _, (cycles, _) in device_runs)
                    ),
                    output=(
                        accumulator.output
                        if accumulator is not None
                        else None
                    ),
                    device_runs=device_runs,
                )
            )
        return runs

    def _replicated_batch(
        self,
        handle: ClusterHandle,
        vectors: Optional[np.ndarray],
        count: int,
        fused_input: bool = False,
    ) -> List[ClusterRun]:
        """Round-robin the batch across replicas, all in flight at once."""
        assignments: List[Tuple[int, int, List[int]]] = []
        per_worker: Dict[int, List[int]] = {}
        for item in range(count):
            shard = handle.shards[self._next_replica % len(handle.shards)]
            self._next_replica += 1
            per_worker.setdefault(shard[0], []).append(item)
        for index, items in per_worker.items():
            handle_id = next(
                hid for widx, _, hid in handle.shards if widx == index
            )
            request_vectors = (
                vectors[items] if vectors is not None else None
            )
            self._send(
                index,
                (
                    "gemv_batch",
                    handle_id,
                    request_vectors,
                    len(items),
                    fused_input,
                ),
            )
            assignments.append((index, handle_id, items))
        runs: List[Optional[ClusterRun]] = [None] * count
        for index, _, items in assignments:
            reply = self._receive(index)
            for item, (cycles, output) in zip(items, reply):
                runs[item] = ClusterRun(
                    cycles=float(cycles),
                    output=output,
                    device_runs=[(index, (cycles, output))],
                )
        return [run for run in runs if run is not None]

    def service_cycles(self, handle: ClusterHandle) -> float:
        """Deterministic per-request service time (same semantics as the
        in-process cluster: slowest shard, or one replica)."""
        if not handle.shards:
            raise ProtocolError("the cluster handle has no placements")
        if self.mode == REPLICATE:
            index, _, handle_id = handle.shards[0]
            self._send(index, ("service", handle_id))
            return float(self._receive(index))
        indices = [index for index, _, _ in handle.shards]
        handle_id = handle.shards[0][2]
        replies = self._broadcast(indices, ("service", handle_id))
        return float(max(replies))

    # ------------------------------------------------------------------
    # telemetry

    def collect_metrics(self) -> dict:
        """The in-process cluster's record shape, gathered from workers.

        ``devices["device<i>"]`` is worker *i*'s own
        ``newton-telemetry/v1`` export; ``execution`` records the fleet
        shape (process workers, spawn start method, per-worker seeds).
        """
        replies = self._broadcast(range(self.devices), ("metrics",))
        return {
            "schema": SCHEMA,
            "kind": "cluster",
            "mode": self.mode,
            "backend": self._worker_name,
            "devices": {
                f"device{index}": reply
                for index, reply in enumerate(replies)
            },
            "execution": {
                "workers": "process",
                "start_method": "spawn",
                "seeds": [
                    derive_worker_seed(self.seed, index)
                    for index in range(self.devices)
                ],
            },
        }

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the fleet down (idempotent): polite shutdown requests,
        then the finalizer's terminate for anything unresponsive."""
        if self._closed:
            return
        self._closed = True
        for index, conn in enumerate(self._connections):
            try:
                conn.send(("shutdown",))
            except (BrokenPipeError, OSError):
                continue
        for conn in self._connections:
            try:
                if conn.poll(JOIN_TIMEOUT_S):
                    conn.recv()
            except (EOFError, OSError):
                pass
        for process in self._processes:
            process.join(timeout=JOIN_TIMEOUT_S)
        self._fleet_finalizer()

    def __enter__(self) -> "ProcessShardedCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
