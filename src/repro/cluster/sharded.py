"""Multi-device execution: one model, N backends (tensor/data parallel).

Newton's channels are fully independent (Section III-D) — and so are
whole devices, which is exactly the property Oliveira et al.'s
edge-to-cloud PIM study exploits: a model can be *row-sharded* across N
devices (tensor parallelism; each device holds a contiguous row slice,
every device receives the full input vector, the host reduces the
per-device partial outputs in fp32 — the Section III-C host-accumulator
semantics lifted from chunks to devices), or *replicated* across N
devices (data parallelism; each replica holds the whole matrix and
requests fan out round-robin for N-fold serving throughput).

The cluster is itself a :class:`~repro.backends.base.Backend`, so
everything that runs on one backend — the runtime, the serving
simulator, the experiments — runs unchanged on N devices. A 1-device
shard cluster over a ``NewtonBackend`` is bit-identical (outputs and
cycles) to driving the device directly; the differential suite pins it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.backends.base import Backend
from repro.backends.registry import make_backend
from repro.core.device import validate_batch_vectors
from repro.core.layout import partition_rows
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError, LayoutError, ProtocolError
from repro.host.accumulator import HostAccumulator
from repro.telemetry import SCHEMA

SHARD = "shard"
"""Tensor-parallel placement: row-slice the matrix across devices."""

REPLICATE = "replicate"
"""Data-parallel placement: full copy per device, round-robin requests."""

_MODES = (SHARD, REPLICATE)


@dataclass
class ClusterHandle:
    """A matrix resident across the cluster's devices."""

    m: int
    n: int
    mode: str
    shards: List[Tuple[int, Tuple[int, int], object]] = field(default_factory=list)
    """(device index, (row_lo, row_hi), device handle) per placement.

    Shard mode: disjoint row slices covering [0, m). Replicate mode: one
    (0, m) placement per device."""


@dataclass
class ClusterRun:
    """One cluster GEMV (satisfies the run-record protocol)."""

    cycles: float
    """Wall clock: devices execute concurrently, so the slowest shard
    (shard mode) or the serving replica (replicate mode)."""
    output: Optional[np.ndarray] = None
    device_runs: List[Tuple[int, object]] = field(default_factory=list)
    """(device index, device run record) per participating device."""


class ShardedCluster(Backend):
    """N backend instances serving one logical matrix."""

    name = "cluster"

    def __init__(self, backends: Sequence[Backend], *, mode: str = SHARD):
        if not backends:
            raise ConfigurationError("a cluster needs at least one backend")
        if mode not in _MODES:
            raise ConfigurationError(
                f"unknown cluster mode {mode!r}; choose from {_MODES}"
            )
        self.backends: List[Backend] = list(backends)
        self.mode = mode
        self._next_replica = 0

    @classmethod
    def from_spec(
        cls,
        backend: str,
        devices: int,
        *,
        mode: str = SHARD,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        **kwargs,
    ) -> "ShardedCluster":
        """Build a homogeneous N-device cluster through the registry."""
        if devices <= 0:
            raise ConfigurationError("a cluster needs at least one device")
        return cls(
            [
                make_backend(backend, config=config, timing=timing, **kwargs)
                for _ in range(devices)
            ],
            mode=mode,
        )

    # ------------------------------------------------------------------
    # Backend context attributes (devices are homogeneous by use)

    @property
    def devices(self) -> int:
        """Number of backend instances in the cluster."""
        return len(self.backends)

    @property
    def config(self) -> DRAMConfig:  # type: ignore[override]
        return self.backends[0].config

    @property
    def timing(self) -> TimingParams:  # type: ignore[override]
        return self.backends[0].timing

    @property
    def functional(self) -> bool:  # type: ignore[override]
        return all(backend.functional for backend in self.backends)

    # ------------------------------------------------------------------
    # residency

    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ) -> ClusterHandle:
        """Place a matrix across the cluster.

        Shard mode reuses :func:`~repro.core.layout.partition_rows` one
        level up from the device's own channel partitioning: device i
        gets a contiguous row slice (devices past the row count get
        none). Replicate mode loads the full matrix into every device.
        """
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=np.float32)
            if matrix.ndim != 2:
                raise LayoutError(
                    f"matrix must be 2-D, got shape {matrix.shape}"
                )
            m, n = matrix.shape
        elif m is None or n is None:
            raise ConfigurationError("provide a matrix, or both m and n")
        assert m is not None and n is not None
        handle = ClusterHandle(m=m, n=n, mode=self.mode)
        if self.mode == REPLICATE:
            for index, backend in enumerate(self.backends):
                sub = (
                    backend.load_matrix(matrix)
                    if matrix is not None
                    else backend.load_matrix(m=m, n=n)
                )
                handle.shards.append((index, (0, m), sub))
            return handle
        for index, (lo, hi) in enumerate(partition_rows(m, len(self.backends))):
            if hi == lo:
                continue
            backend = self.backends[index]
            sub = (
                backend.load_matrix(matrix[lo:hi])
                if matrix is not None
                else backend.load_matrix(m=hi - lo, n=n)
            )
            handle.shards.append((index, (lo, hi), sub))
        return handle

    def store_matrix(self, handle: ClusterHandle, matrix: np.ndarray) -> None:
        """Rewrite a resident matrix in place across the cluster.

        Each shard-mode device stores its row slice; replicate mode
        stores the full matrix on every replica. Placement is untouched
        — the in-place-growth primitive behind session KV-cache arenas,
        lifted to N devices.
        """
        if not handle.shards:
            raise ProtocolError("the cluster handle has no placements")
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.shape != (handle.m, handle.n):
            raise LayoutError(
                f"store shape {matrix.shape} does not match the resident "
                f"matrix ({handle.m}, {handle.n})"
            )
        for index, (lo, hi), sub in handle.shards:
            self.backends[index].store_matrix(sub, matrix[lo:hi])

    # ------------------------------------------------------------------
    # execution

    def gemv(
        self,
        handle: ClusterHandle,
        vector: Optional[np.ndarray] = None,
        *,
        fused_input: bool = False,
    ) -> ClusterRun:
        """One matrix-vector product across the cluster.

        Shard mode: every device runs its row slice against the full
        input vector concurrently (wall clock = slowest shard) and the
        host folds the disjoint partial outputs through the fp32
        :class:`~repro.host.accumulator.HostAccumulator` reduction.
        Replicate mode: the next replica (round-robin) serves the whole
        request. ``fused_input`` passes straight through to every
        participating device — shard mode broadcasts the same vector, so
        an input resident on one device is resident on all.
        """
        if not handle.shards:
            raise ProtocolError("the cluster handle has no placements")
        if self.mode == REPLICATE:
            index, (_, _), sub = handle.shards[
                self._next_replica % len(handle.shards)
            ]
            self._next_replica += 1
            run = self.backends[index].gemv(sub, vector, fused_input=fused_input)
            return ClusterRun(
                cycles=float(run.cycles),
                output=run.output,
                device_runs=[(index, run)],
            )
        device_runs: List[Tuple[int, object]] = []
        accumulator = HostAccumulator(handle.m) if self.functional else None
        for index, (lo, hi), sub in handle.shards:
            run = self.backends[index].gemv(sub, vector, fused_input=fused_input)
            device_runs.append((index, run))
            if accumulator is not None and run.output is not None:
                accumulator.add_partials(np.arange(lo, hi), run.output)
        return ClusterRun(
            cycles=float(max(run.cycles for _, run in device_runs)),
            output=accumulator.output if accumulator is not None else None,
            device_runs=device_runs,
        )

    def gemv_batch(
        self,
        handle: ClusterHandle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
    ) -> List[ClusterRun]:
        """A batch of products; replicate mode fans them out round-robin."""
        if vectors is not None:
            vectors = validate_batch_vectors(vectors, handle.n)
            return [self.gemv(handle, vectors[i]) for i in range(vectors.shape[0])]
        if batch is not None:
            if batch <= 0:
                raise ProtocolError("batch must be positive")
            return [self.gemv(handle) for _ in range(batch)]
        raise ProtocolError("provide vectors or a batch size")

    def service_cycles(self, handle: ClusterHandle) -> float:
        """Deterministic per-request service time.

        Shard mode: the slowest shard (devices run concurrently).
        Replicate mode: one replica's whole-matrix service — replication
        multiplies *servers*, not single-request speed; pass the replica
        count to :class:`~repro.host.serving.ServingSimulator` as
        ``servers`` to model the throughput side.
        """
        if not handle.shards:
            raise ProtocolError("the cluster handle has no placements")
        if self.mode == REPLICATE:
            index, _, sub = handle.shards[0]
            return float(self.backends[index].service_cycles(sub))
        return float(
            max(
                self.backends[index].service_cycles(sub)
                for index, _, sub in handle.shards
            )
        )

    # ------------------------------------------------------------------
    # telemetry

    def collect_metrics(self) -> dict:
        """One ``newton-telemetry/v1`` record, namespaced per device.

        ``devices["device<i>"]`` holds backend *i*'s own export (for
        Newton backends: the per-channel breakdowns whose attribution
        buckets sum exactly to each channel's end cycle).
        """
        return {
            "schema": SCHEMA,
            "kind": "cluster",
            "mode": self.mode,
            "backend": self.backends[0].name,
            "devices": {
                f"device{index}": backend.collect_metrics()
                for index, backend in enumerate(self.backends)
            },
        }

    def close(self) -> None:
        for backend in self.backends:
            backend.close()
