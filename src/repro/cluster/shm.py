"""Shared-memory NumPy arrays with a crash-robust lifecycle.

The process fleet (:mod:`repro.cluster.process_pool`) moves weight
matrices to workers through POSIX shared memory instead of pickling
them over pipes — a 64 MB fp32 matrix is mapped, not copied N times
through the kernel. The hazard with ``multiprocessing.shared_memory``
is leakage: a segment outlives the process that forgot to ``unlink`` it
and squats in ``/dev/shm`` until reboot. :class:`SharedNDArray` makes
that impossible short of SIGKILL:

* every instance registers a :class:`weakref.finalize` that closes the
  mapping (and unlinks it, for the creating side) when the object is
  garbage collected — including via interpreter shutdown;
* an ``atexit`` sweep runs the finalizers of anything still alive at
  exit, so an exception anywhere in a run cannot leak the segment;
* attachments in workers never unlink (the creator owns the name), so
  double-unlink races cannot occur by construction.

The intended protocol is transient: the parent creates the array, the
workers attach and *copy out* their shard, acknowledge, and the parent
unlinks immediately — shared memory is a transfer mechanism here, not a
long-lived mapping, which keeps lifetime reasoning trivial.
"""

from __future__ import annotations

import atexit
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

_LIVE: "weakref.WeakSet[SharedNDArray]" = weakref.WeakSet()


def _cleanup_segment(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Finalizer body: close (and, for the creator, unlink) a segment."""
    try:
        shm.close()
    except OSError:
        pass
    if owner:
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


@atexit.register
def _sweep_at_exit() -> None:
    """Release every still-live segment at interpreter shutdown."""
    for array in list(_LIVE):
        array.release()


@dataclass(frozen=True)
class ShmSpec:
    """A picklable description of a shared array (sent over the pipe)."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedNDArray:
    """A NumPy array view over a shared-memory segment.

    Build with :meth:`create` (allocating side) or :meth:`attach`
    (worker side); read/write through :attr:`array`; call
    :meth:`release` when done — or don't: the finalizer and the atexit
    sweep guarantee cleanup either way.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, spec: ShmSpec, owner: bool
    ):
        self._shm = shm
        self.spec = spec
        self.owner = owner
        self.array = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )
        self._finalizer = weakref.finalize(self, _cleanup_segment, shm, owner)
        _LIVE.add(self)

    @classmethod
    def create(cls, shape: Tuple[int, ...], dtype=np.float32) -> "SharedNDArray":
        """Allocate a new zero-initialized shared array (owning side)."""
        dt = np.dtype(dtype)
        size = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        if size <= 0:
            raise ConfigurationError(
                f"shared array of shape {shape} has no storage"
            )
        shm = shared_memory.SharedMemory(create=True, size=size)
        spec = ShmSpec(name=shm.name, shape=tuple(shape), dtype=dt.str)
        return cls(shm, spec, owner=True)

    @classmethod
    def attach(cls, spec: ShmSpec) -> "SharedNDArray":
        """Map an existing segment by spec (non-owning side)."""
        shm = shared_memory.SharedMemory(name=spec.name)
        return cls(shm, spec, owner=False)

    def release(self) -> None:
        """Close the mapping now (and unlink it, if this side created
        it). Idempotent; the finalizer becomes a no-op afterwards."""
        # Drop the view first: closing a segment with exported buffer
        # views raises BufferError on CPython.
        self.array = None
        self._finalizer()

    @property
    def released(self) -> bool:
        """Whether :meth:`release` (or the finalizer) already ran."""
        return not self._finalizer.alive

    @staticmethod
    def live_segments() -> "list[SharedNDArray]":
        """Every still-unreleased instance in this process.

        Diagnostic hook: the leak tests assert this is empty after any
        transfer completes."""
        return [array for array in _LIVE if not array.released]

    def __enter__(self) -> "SharedNDArray":
        return self

    def __exit__(self, *exc) -> None:
        self.release()
