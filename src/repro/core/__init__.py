"""Newton's core: the paper's primary contribution.

Layers the AiM datapath (global input-vector buffer, per-bank MAC arrays
with adder trees and result latches), the interleaved matrix layout, the
Table I command generator, and the execution engine on top of the
:mod:`repro.dram` substrate.
"""

from repro.core.optimizations import (
    OptimizationConfig,
    FULL,
    NON_OPT,
    figure9_ladder,
)
from repro.core.layout import (
    InterleavedLayout,
    NoReuseLayout,
    make_layout,
    partition_rows,
)
from repro.core.global_buffer import GlobalBuffer
from repro.core.mac_unit import BankMacUnit, tile_compute
from repro.core.command_gen import CommandStreamGenerator, Step
from repro.core.engine import NewtonChannelEngine
from repro.core.device import NewtonDevice
from repro.core.result import ChannelRunResult, GemvRunResult
from repro.core.organization import MacOrganization, OrganizationModel
from repro.core.scrub import MatrixScrubber, ScrubPolicy

__all__ = [
    "OptimizationConfig",
    "FULL",
    "NON_OPT",
    "figure9_ladder",
    "InterleavedLayout",
    "NoReuseLayout",
    "make_layout",
    "partition_rows",
    "GlobalBuffer",
    "BankMacUnit",
    "tile_compute",
    "CommandStreamGenerator",
    "Step",
    "NewtonChannelEngine",
    "NewtonDevice",
    "ChannelRunResult",
    "GemvRunResult",
    "MacOrganization",
    "OrganizationModel",
    "MatrixScrubber",
    "ScrubPolicy",
]
