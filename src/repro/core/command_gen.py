"""Lowering Algorithm 1's tiled matrix-vector product to command streams.

For the full Newton design the stream per chunk is (Figure 7):

* 32 ``GWRITE`` commands load the input chunk into the global buffer;
* per tile: a refresh barrier, four ``G_ACT`` commands (one per four-bank
  cluster), 32 ganged ``COMP`` commands (sub-chunk = column index, the
  last with auto-precharge), and one ``READRES``.

Each disabled optimization swaps in its de-optimized encoding:

* no ``four_bank_activation`` → one ``ACT`` per bank (staggered, under
  the standard four-activation window);
* no ``ganged_compute`` → per-bank compute and per-bank result reads;
* no ``complex_commands`` → every compute becomes the three-step
  ``BUF_READ`` + ``COL_READ`` + ``MAC`` micro-command sequence;
* no ``interleaved_reuse`` → the row-major (Newton-no-reuse) traversal:
  the result latch accumulates an entire matrix row across chunks (low
  output traffic) but the input chunk is re-fetched for every pass of
  matrix rows (the traffic explosion Section III-C describes), and the
  activation function is applied by the in-DRAM lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.dram import commands as cmds
from repro.dram.commands import Command, CommandRun
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.core.layout import InterleavedLayout, Layout, NoReuseLayout
from repro.core.optimizations import OptimizationConfig
from repro.errors import ConfigurationError

ACTIVATION_WINDOW_SIZE = 4
"""The JEDEC four-activation window width (used by duration estimates)."""


@dataclass(frozen=True)
class TileComputeOp:
    """Fire the vectorized tile evaluation after this command issues."""

    chunk: int
    dram_row: int
    latch: int = 0


@dataclass(frozen=True)
class EmitOp:
    """Read result latches out to the host after this command issues.

    ``chunk`` is the chunk the partials belong to for the interleaved
    traversal, or ``None`` when the latch already accumulated the whole
    matrix row (the no-reuse traversal, where the in-DRAM LUT applies
    the activation before readout).
    """

    latch: int
    chunk: Optional[int]
    matrix_rows: np.ndarray = field(hash=False)


@dataclass(frozen=True)
class Step:
    """One element of a lowered command stream."""

    command: Optional[Command] = None
    barrier_cycles: int = 0
    """If positive: a refresh barrier covering a row operation this long."""
    new_chunk: Optional[int] = None
    """If set: the global buffer is being repurposed for this chunk."""
    load: Optional[Tuple[int, int]] = None
    """(chunk, subchunk) loaded by an accompanying GWRITE."""
    load_run: Optional[Tuple[int, int]] = None
    """(chunk, count): sub-chunks ``0..count-1`` of ``chunk`` loaded by a
    whole compiled GWRITE run — the batched form of ``load``, emitted by
    :meth:`RunStep.payload_steps` so the datapath can quantize the block
    in one vector op."""
    compute: Optional[TileComputeOp] = None
    emit: Optional[EmitOp] = None
    latch: int = 0
    """Result latch the tile's compute commands accumulate into (only
    meaningful on compute steps; the row-major multi-latch variant uses
    indices above zero)."""


@dataclass(frozen=True)
class RunStep:
    """A run-length-encoded stretch of a lowered stream.

    Stands for ``len(run)`` consecutive :class:`Step` elements whose
    commands form one homogeneous :class:`~repro.dram.commands.CommandRun`
    — a tile's COMP burst, one bank's COMP_BANK burst, a chunk's GWRITE
    prologue. The compiled form is what the engine's cold path feeds to
    :meth:`~repro.dram.controller.ChannelController.issue_burst`;
    :meth:`expand` recovers the exact per-command steps for every
    consumer that needs them (tracing, tick-level validation, examples).
    """

    run: CommandRun
    loads: Tuple[Tuple[int, int], ...] = ()
    """``(chunk, subchunk)`` payload per command (GWRITE runs), or ``()``."""
    compute: Optional[TileComputeOp] = None
    """Tile evaluation fired by the run's *last* command, if any."""
    latch: int = 0

    def expand(self) -> Iterator[Step]:
        """The exact per-command steps this run stands for."""
        last = self.run.count - 1
        for i, command in enumerate(self.run.commands()):
            yield Step(
                command=command,
                load=self.loads[i] if self.loads else None,
                compute=self.compute if i == last else None,
                latch=self.latch,
            )

    def payload_steps(self) -> Iterator[Step]:
        """Just the functional payloads, in issue order.

        The datapath only cares about payload order, not which command
        carried it (see :class:`~repro.core.schedule_cache.StreamSegment`),
        so the compiled path hands the engine these skeleton steps and
        never materializes the per-command form. A GWRITE run's loads —
        always sub-chunks ``0..n-1`` of one chunk, by construction in
        ``_gwrite_items`` — collapse to a single ``load_run`` step so
        the buffer fill is one vector op, not ``n`` scalar stores.
        """
        if self.loads:
            yield Step(load_run=(self.loads[0][0], len(self.loads)))
        if self.compute is not None:
            yield Step(compute=self.compute, latch=self.latch)


StreamItem = object
"""A lowered-stream element: a :class:`Step` or a :class:`RunStep`."""


class CommandStreamGenerator:
    """Generates the command stream for one channel's GEMV slice."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        opt: OptimizationConfig,
        layout: Layout,
    ):
        if opt.interleaved_reuse and not isinstance(layout, InterleavedLayout):
            raise ConfigurationError("interleaved_reuse requires an InterleavedLayout")
        if not opt.interleaved_reuse and not isinstance(layout, NoReuseLayout):
            raise ConfigurationError("the no-reuse traversal requires a NoReuseLayout")
        if (
            config.command_family == "output_stationary"
            and not opt.interleaved_reuse
        ):
            raise ConfigurationError(
                "the output_stationary family is a tile-major traversal of "
                "the interleaved layout; it requires interleaved_reuse"
            )
        self.config = config
        self.timing = timing
        self.opt = opt
        self.layout = layout
        self._runs: "dict[tuple, CommandRun]" = {}

    def _intern(self, run: CommandRun) -> CommandRun:
        """Share one :class:`CommandRun` per distinct ``timing_key``.

        A layer's stream repeats a handful of distinct runs thousands of
        times (every tile's COMP burst is identical); interning makes the
        lazy per-command materialization a one-time cost per distinct run
        rather than per tile."""
        return self._runs.setdefault(run.timing_key, run)

    # ------------------------------------------------------------------
    # duration estimates (for the refresh barrier)

    def activation_phase_estimate(self) -> int:
        """Worst-case cycles from first activation command to row-open."""
        t = self.timing
        banks = self.config.banks_per_channel
        group = self.config.bank_group_size
        faw = t.faw_window(self.opt.aggressive_tfaw)
        if self.opt.four_bank_activation:
            groups = banks // group
            stagger = (groups - 1) * max(faw, t.t_rrd, t.t_cmd)
        else:
            windows = (
                banks // ACTIVATION_WINDOW_SIZE - 1
                if banks >= ACTIVATION_WINDOW_SIZE
                else 0
            )
            stagger = max((banks - 1) * max(t.t_rrd, t.t_cmd), windows * faw)
        return stagger + t.t_rcd

    def compute_commands_per_tile(self) -> int:
        """Command-bus slots one tile's compute phase occupies."""
        cols = self.config.cols_per_row
        per_compute = 1 if self.opt.complex_commands else 3
        per_col = 1 if self.opt.ganged_compute else self.config.banks_per_channel
        return cols * per_compute * per_col

    def tile_duration_estimate(self) -> int:
        """Conservative bound on one tile's row-open duration.

        Used as the refresh barrier's window: an *under*estimate would
        let a refresh mature inside the row operation (the hazard
        Section III-E's rule exists to prevent), so the bound covers
        both the data-bound and command-bound regimes — in the
        de-optimized designs the activation and result-read commands
        also occupy command-bus slots serially — plus a small margin.
        """
        t = self.timing
        banks = self.config.banks_per_channel
        act_cmds = (
            self.config.bank_groups if self.opt.four_bank_activation else banks
        )
        readres_cmds = 1 if self.opt.ganged_compute else banks
        total_cmds = act_cmds + self.compute_commands_per_tile() + readres_cmds
        busy = max(self.config.cols_per_row * t.t_ccd, total_cmds * t.t_cmd)
        readout = t.t_aa + t.t_tree_drain + t.t_ccd
        margin = 4 * banks
        return (
            self.activation_phase_estimate() + busy + t.t_rp + readout + margin
        )

    # ------------------------------------------------------------------
    # stream pieces

    def _activation_steps(self, dram_row: int) -> Iterator[Step]:
        if self.opt.four_bank_activation:
            for group in range(self.config.bank_groups):
                yield Step(command=cmds.g_act(group, dram_row))
        else:
            for bank in range(self.config.banks_per_channel):
                yield Step(command=cmds.act(bank, dram_row))

    def _compute_items(
        self, chunk: int, dram_row: int, latch: int, cols: int
    ) -> "Iterator[StreamItem]":
        """The compute phase of one tile; the tile evaluation fires on the
        final command so the buffer/rows are guaranteed loaded.

        The two *complex-command* modes compile to homogeneous
        :class:`RunStep` runs (a tile's COMP burst is run-length
        encodable by construction); the three-step micro-command modes
        interleave distinct kinds and stay per-command."""
        banks = self.config.banks_per_channel
        tile_op = TileComputeOp(chunk=chunk, dram_row=dram_row, latch=latch)
        gang = self.opt.ganged_compute
        fused = self.opt.complex_commands
        if gang and fused:
            yield RunStep(
                run=self._intern(cmds.comp_run(cols)),
                compute=tile_op,
                latch=latch,
            )
        elif gang and not fused:
            for col in range(cols):
                last = col == cols - 1
                yield Step(command=cmds.buf_read(col), latch=latch)
                yield Step(
                    command=cmds.col_read_all(col, auto_precharge=last), latch=latch
                )
                yield Step(
                    command=cmds.mac_all(),
                    compute=tile_op if last else None,
                    latch=latch,
                )
        elif not gang and fused:
            for bank in range(banks):
                yield RunStep(
                    run=self._intern(cmds.comp_bank_run(bank, cols)),
                    compute=tile_op if bank == banks - 1 else None,
                    latch=latch,
                )
        else:
            for bank in range(banks):
                last_bank = bank == banks - 1
                for col in range(cols):
                    last = last_bank and col == cols - 1
                    yield Step(command=cmds.buf_read(col), latch=latch)
                    yield Step(
                        command=Command(
                            cmds.CommandKind.COL_READ,
                            bank=bank,
                            col=col,
                            auto_precharge=col == cols - 1,
                        ),
                        latch=latch,
                    )
                    yield Step(
                        command=cmds.mac(bank),
                        compute=tile_op if last else None,
                        latch=latch,
                    )

    def _readres_steps(self, emit: EmitOp) -> Iterator[Step]:
        if self.opt.ganged_compute:
            yield Step(command=cmds.readres(), emit=emit)
        else:
            banks = self.config.banks_per_channel
            for bank in range(banks):
                yield Step(
                    command=cmds.readres_bank(bank),
                    emit=emit if bank == banks - 1 else None,
                )

    def _gwrite_items(self, chunk: int) -> "Iterator[StreamItem]":
        yield Step(new_chunk=chunk)
        subchunks = self.layout.cols_in_chunk(chunk)
        if subchunks:
            yield RunStep(
                run=self._intern(cmds.gwrite_run(subchunks)),
                loads=tuple((chunk, sub) for sub in range(subchunks)),
            )

    # ------------------------------------------------------------------
    # full streams

    def gemv_steps(self) -> Iterator[Step]:
        """The full command stream, one :class:`Step` per command.

        The materialized view of :meth:`gemv_items` — what the trace
        example, the tick-level cross-check, and the per-command tests
        consume. The engine itself executes the compiled item form."""
        for item in self.gemv_items():
            if isinstance(item, RunStep):
                yield from item.expand()
            else:
                yield item

    def gemv_items(self) -> "Iterator[StreamItem]":
        """The compiled command stream for one matrix-vector product.

        Homogeneous stretches arrive as :class:`RunStep` (run-length
        encoded, numpy-backed); everything else as plain :class:`Step`.
        ``gemv_steps()`` is always exactly this stream with every run
        expanded in place."""
        if self.config.command_family == "output_stationary":
            yield from self._output_stationary_items()
        elif self.opt.interleaved_reuse:
            yield from self._interleaved_items()
        else:
            yield from self._no_reuse_items()

    def _interleaved_items(self) -> "Iterator[StreamItem]":
        layout = self.layout
        assert isinstance(layout, InterleavedLayout)
        tile_est = self.tile_duration_estimate()
        for chunk in range(layout.num_chunks):
            yield from self._gwrite_items(chunk)
            for tile in range(layout.tiles):
                dram_row = layout.dram_row(chunk, tile)
                yield Step(barrier_cycles=tile_est)
                yield from self._activation_steps(dram_row)
                yield from self._compute_items(
                    chunk, dram_row, latch=0, cols=layout.cols_in_chunk(chunk)
                )
                emit = EmitOp(
                    latch=0, chunk=chunk, matrix_rows=layout.tile_matrix_rows(tile)
                )
                yield from self._readres_steps(emit)

    def _output_stationary_items(self) -> "Iterator[StreamItem]":
        """MAC-DO-style output-stationary traversal (tile-major).

        Partials for one tile accumulate in result latch 0 across every
        input chunk — exactly the in-latch accumulation the no-reuse
        traversal performs per matrix row — and drain with a *single*
        READRES per tile (``chunk=None``: the latch holds the whole row
        sum, so the in-DRAM LUT applies at readout). The price is the
        dual of Newton's: the input chunk is re-streamed through the
        global buffer once per tile instead of once per layer.
        """
        layout = self.layout
        assert isinstance(layout, InterleavedLayout)
        tile_est = self.tile_duration_estimate()
        for tile in range(layout.tiles):
            for chunk in range(layout.num_chunks):
                yield from self._gwrite_items(chunk)
                dram_row = layout.dram_row(chunk, tile)
                yield Step(barrier_cycles=tile_est)
                yield from self._activation_steps(dram_row)
                yield from self._compute_items(
                    chunk, dram_row, latch=0, cols=layout.cols_in_chunk(chunk)
                )
            emit = EmitOp(
                latch=0, chunk=None, matrix_rows=layout.tile_matrix_rows(tile)
            )
            yield from self._readres_steps(emit)

    def _no_reuse_items(self) -> "Iterator[StreamItem]":
        layout = self.layout
        assert isinstance(layout, NoReuseLayout)
        tile_est = self.tile_duration_estimate()
        for pass_index in range(layout.passes):
            slots = list(layout.pass_slots(pass_index))
            for chunk in range(layout.num_chunks):
                # The input chunk must be re-fetched every pass: this is
                # the traffic the interleaved layout eliminates.
                yield from self._gwrite_items(chunk)
                for latch, slot in enumerate(slots):
                    dram_row = layout.dram_row(slot, chunk)
                    yield Step(barrier_cycles=tile_est)
                    yield from self._activation_steps(dram_row)
                    yield from self._compute_items(
                        chunk, dram_row, latch=latch, cols=layout.cols_in_chunk(chunk)
                    )
            for latch, slot in enumerate(slots):
                emit = EmitOp(
                    latch=latch, chunk=None, matrix_rows=layout.slot_matrix_rows(slot)
                )
                yield from self._readres_steps(emit)
