"""Functional-datapath executors: scalar, per-tile, and batched tiers.

The engine's timing machinery and its functional datapath are
independent state machines: a segment's functional effects depend only
on the order of its payload-carrying steps (loads, tile computes,
result emits), never on how the controller scheduled the commands that
carried them (see :class:`~repro.core.schedule_cache.StreamSegment`).
That independence is what this module exploits — the same payload
stream can be *interpreted* at three speeds, all bit-identical:

* ``scalar`` — the hardware-faithful reference: one
  :class:`~repro.core.mac_unit.BankMacUnit` per bank, one ``compute``
  per COMP command's sub-chunk. This is the per-command path the paper
  describes and the bit-level contract everything else is pinned to.
* ``tile`` — one :func:`~repro.core.mac_unit.tile_compute` call per
  tile (every bank × sub-chunk of one DRAM row vectorized); the
  engine's previous default.
* ``batched`` — the default: whole *buffer groups* of tiles — every
  tile that reads the same global-buffer chunk — evaluated as one
  :func:`~repro.numerics.vectorized.batched_tile_compute` call over a
  ``(tiles, banks, chunk_elems)`` block, with GWRITE runs loading the
  buffer as one vectorized quantize instead of 32 sub-chunk stores.

The batched tier defers work symbolically: a tile compute *opens a
slot* (recording the DRAM row and the latch's concrete carry value)
and parks a slot reference in the latch; a result emit *pops* the
reference (deferring the host-side accumulation) and resets the latch
to zero — so the interleaved traversal's compute/emit/compute/emit
chain on latch 0 batches a whole chunk's tiles into one kernel call.
Any buffer mutation (a new chunk, a GWRITE) flushes: pending slots are
evaluated in one vector op, surviving references become concrete latch
values, and deferred emits apply to the output in their original issue
order. Because the kernel is bit-identical per tile (see
:mod:`repro.numerics.vectorized`) and host accumulation replays in
issue order, the flush is invisible — pinned by the differential suite
in ``tests/core/test_datapath.py`` across every optimization combo.

Select a tier with the engine's ``datapath=`` argument or the
``NEWTON_DATAPATH`` environment variable (``batched`` | ``tile`` |
``scalar``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.command_gen import EmitOp, Step, TileComputeOp
from repro.core.mac_unit import BankMacUnit, tile_compute
from repro.errors import ConfigurationError
from repro.numerics.vectorized import batched_tile_compute

DATAPATHS = ("batched", "tile", "scalar")
"""Recognized functional-datapath tier names, fastest first."""

DATAPATH_ENV = "NEWTON_DATAPATH"
"""Environment variable selecting the default tier."""


def default_datapath() -> str:
    """The tier ``NEWTON_DATAPATH`` requests (``batched`` if unset).

    Raises:
        ConfigurationError: for an unrecognized tier name.
    """
    name = os.environ.get(DATAPATH_ENV, "").strip().lower() or "batched"
    if name not in DATAPATHS:
        raise ConfigurationError(
            f"{DATAPATH_ENV}={name!r} is not one of {', '.join(DATAPATHS)}"
        )
    return name


class FunctionalDatapath:
    """Base class: buffer bookkeeping shared by every tier.

    Subclasses interpret the compute/emit payloads; loads and chunk
    invalidations are common. ``step`` is called once per payload step
    in issue order, ``finish`` once at the end of each run.
    """

    name = "base"

    def __init__(self, engine):
        self.engine = engine

    # -- hooks ---------------------------------------------------------

    def on_buffer_change(self) -> None:
        """Called before any global-buffer mutation."""

    def on_compute(self, op: TileComputeOp, layout) -> None:
        raise NotImplementedError

    def on_emit(self, emit: EmitOp, output: np.ndarray) -> None:
        raise NotImplementedError

    def finish(self, output: np.ndarray) -> None:
        """End of run: apply any deferred work."""

    # -- the shared interpreter ----------------------------------------

    def step(
        self, step: Step, padded_vector: np.ndarray, layout, output: np.ndarray
    ) -> None:
        engine = self.engine
        if step.new_chunk is not None:
            self.on_buffer_change()
            engine.buffer.invalidate()
        if step.load_run is not None:
            chunk, count = step.load_run
            self.on_buffer_change()
            per_row = engine.config.elems_per_row
            k = engine.config.elems_per_col
            lo = chunk * per_row
            engine.buffer.load_chunk(
                padded_vector[lo : lo + count * k], count
            )
        if step.load is not None:
            # Per-command form (uncompiled streams): one GWRITE each.
            chunk, sub = step.load
            self.on_buffer_change()
            k = engine.config.elems_per_col
            lo = chunk * engine.config.elems_per_row + sub * k
            engine.buffer.load_subchunk(sub, padded_vector[lo : lo + k])
        if step.compute is not None:
            self.on_compute(step.compute, layout)
        if step.emit is not None:
            self.on_emit(step.emit, output)

    # -- emit plumbing -------------------------------------------------

    def _apply_emit(
        self, emit: EmitOp, values: np.ndarray, output: np.ndarray
    ) -> None:
        """LUT + fp32 host-side accumulation for one result read."""
        engine = self.engine
        if emit.chunk is None and engine.lut is not None:
            values = engine.lut.apply(values)
        rows = emit.matrix_rows
        mask = rows >= 0
        np.add.at(output, rows[mask], values[mask])


class TileDatapath(FunctionalDatapath):
    """One vectorized :func:`tile_compute` per tile (the previous
    engine default); computes and emits apply immediately."""

    name = "tile"

    def on_compute(self, op: TileComputeOp, layout) -> None:
        engine = self.engine
        matrix_rows = engine._tile_matrix(op.dram_row)
        engine._latches[:, op.latch] = tile_compute(
            matrix_rows,
            engine.buffer.chunk(layout.cols_in_chunk(op.chunk)),
            engine._latches[:, op.latch],
            engine.config.mults_per_bank,
        )

    def on_emit(self, emit: EmitOp, output: np.ndarray) -> None:
        engine = self.engine
        values = engine._latches[:, emit.latch].copy()
        engine._latches[:, emit.latch] = 0.0
        self._apply_emit(emit, values, output)


class ScalarDatapath(FunctionalDatapath):
    """The hardware-faithful reference: one MAC-unit ``compute`` per
    COMP command's sub-chunk, per bank.

    Orders of magnitude slower than the vector tiers — it exists as the
    bit-level contract they are differentially pinned against, and as
    the measured baseline of the throughput benchmark's functional
    section.
    """

    name = "scalar"

    def __init__(self, engine):
        super().__init__(engine)
        self.units = [
            BankMacUnit(engine.config, num_latches=engine.opt.result_latches)
            for _ in range(engine.config.banks_per_channel)
        ]

    def on_compute(self, op: TileComputeOp, layout) -> None:
        engine = self.engine
        matrix_rows = engine._tile_matrix(op.dram_row)
        chunk_vec = engine.buffer.chunk(layout.cols_in_chunk(op.chunk))
        k = engine.config.elems_per_col
        for sub in range(layout.cols_in_chunk(op.chunk)):
            lo = sub * k
            input_sub = chunk_vec[lo : lo + k]
            for bank, unit in enumerate(self.units):
                unit.compute(
                    matrix_rows[bank, lo : lo + k], input_sub, latch=op.latch
                )

    def on_emit(self, emit: EmitOp, output: np.ndarray) -> None:
        values = np.array(
            [unit.read_and_clear(emit.latch) for unit in self.units],
            dtype=np.float32,
        )
        self._apply_emit(emit, values, output)


class BatchedDatapath(FunctionalDatapath):
    """Whole buffer groups of tiles evaluated as one vector op.

    See the module docstring for the slot algebra. The invariants that
    make the deferral exact:

    * the global buffer's contents are constant between flushes (every
      mutation flushes first), so one captured chunk serves every slot;
    * DRAM storage is immutable during a run, so each slot's matrix
      rows can be gathered at flush time;
    * a latch holds either a concrete value (in ``engine._latches``) or
      one slot reference — a second compute into a referenced latch, or
      a compute against a different chunk, flushes first (neither
      occurs in generated streams; both stay correct);
    * deferred emits replay in issue order, so the fp32 host
      accumulation performs the identical operation sequence.
    """

    name = "batched"

    def __init__(self, engine):
        super().__init__(engine)
        self._rows: List[int] = []
        self._carries: List[np.ndarray] = []
        self._latch_ref: Dict[int, int] = {}
        self._chunk_data: Optional[np.ndarray] = None
        self._chunk_index: Optional[int] = None
        self._output: Optional[np.ndarray] = None
        # (emit, slot or None, concrete values or None) in issue order.
        self._emits: List[
            Tuple[EmitOp, Optional[int], Optional[np.ndarray]]
        ] = []

    def _flush(self, output: np.ndarray) -> None:
        engine = self.engine
        if self._rows:
            matrix_tiles = np.stack(
                [engine._tile_matrix(row) for row in self._rows]
            )
            carry = np.stack(self._carries)
            results = batched_tile_compute(
                matrix_tiles,
                self._chunk_data,
                carry,
                engine.config.mults_per_bank,
            )
            # Latches still holding a slot reference become concrete.
            for latch, slot in self._latch_ref.items():
                engine._latches[:, latch] = results[slot]
        else:
            results = None
        for emit, slot, values in self._emits:
            if slot is not None:
                values = results[slot]
            self._apply_emit(emit, values, output)
        self._rows.clear()
        self._carries.clear()
        self._latch_ref.clear()
        self._emits.clear()
        self._chunk_data = None
        self._chunk_index = None

    def on_buffer_change(self) -> None:
        if self._rows or self._emits:
            self._flush(self._output)

    def on_compute(self, op: TileComputeOp, layout) -> None:
        engine = self.engine
        if op.latch in self._latch_ref or (
            self._chunk_index is not None and self._chunk_index != op.chunk
        ):
            self._flush(self._output)
        if self._chunk_data is None:
            self._chunk_data = engine.buffer.chunk(
                layout.cols_in_chunk(op.chunk)
            )
            self._chunk_index = op.chunk
        slot = len(self._rows)
        self._rows.append(op.dram_row)
        self._carries.append(engine._latches[:, op.latch].copy())
        self._latch_ref[op.latch] = slot

    def on_emit(self, emit: EmitOp, output: np.ndarray) -> None:
        engine = self.engine
        slot = self._latch_ref.pop(emit.latch, None)
        if slot is not None:
            engine._latches[:, emit.latch] = 0.0
            self._emits.append((emit, slot, None))
        else:
            values = engine._latches[:, emit.latch].copy()
            engine._latches[:, emit.latch] = 0.0
            self._emits.append((emit, None, values))

    def step(self, step, padded_vector, layout, output) -> None:
        # The flush points triggered from on_buffer_change/on_compute
        # need the output array; stash it for the duration of the step.
        self._output = output
        super().step(step, padded_vector, layout, output)

    def finish(self, output: np.ndarray) -> None:
        self._output = output
        self._flush(output)
        self._output = None


_TIERS = {
    "batched": BatchedDatapath,
    "tile": TileDatapath,
    "scalar": ScalarDatapath,
}


def make_datapath(name: Optional[str], engine) -> FunctionalDatapath:
    """Build the requested functional tier for one engine.

    ``None`` defers to ``NEWTON_DATAPATH`` (default ``batched``).

    Raises:
        ConfigurationError: for an unrecognized tier name.
    """
    resolved = (name or default_datapath()).strip().lower()
    tier = _TIERS.get(resolved)
    if tier is None:
        raise ConfigurationError(
            f"unknown functional datapath {name!r}; expected one of "
            f"{', '.join(DATAPATHS)}"
        )
    return tier(engine)
