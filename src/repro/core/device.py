"""The multi-channel Newton accelerator: the library's main entry point.

With multiple (pseudo) channels, "Newton's per-channel operation and
timing are simply repeated in parallel across the channels" (Section
III-D): the matrix's rows are spread across channels, every channel
receives the full input vector into its own global buffer, and the
device's wall clock is the slowest channel.

Two modes:

* **functional** (default): every channel is simulated, data and timing;
  ``gemv`` returns the bit-faithful bfloat16/fp32 output.
* **timing-only** (``functional=False``): only channel 0 is simulated.
  ``partition_rows`` always hands the largest (cumulative) slice to
  channel 0 and refresh is identical across channels, so channel 0 is
  the critical path and its cycle count is the device's wall clock.
  This keeps 24-channel benchmark sweeps fast.

Channels are fully independent, so functional multi-channel ``gemv``
can execute them concurrently: pass ``channel_workers >= 2`` to fan the
per-channel runs out over a thread pool. This pays off in functional
mode, where the vectorized tile math releases the GIL; timing-only
devices simulate a single channel and gain nothing. Results are
gathered in channel order, so outputs and statistics are deterministic
regardless of scheduling.
"""

from __future__ import annotations

import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.engine import NewtonChannelEngine
from repro.core.layout import Layout, partition_rows
from repro.core.optimizations import FULL, OptimizationConfig
from repro.core.result import ChannelRunResult, GemvRunResult
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.power import PowerParams, PowerReport
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.errors import LayoutError, ProtocolError
from repro.numerics.lut import ActivationLUT

logger = logging.getLogger(__name__)


def validate_batch_vectors(vectors: np.ndarray, n: int) -> np.ndarray:
    """Normalize a batch of input vectors to a (k, n) float32 array.

    Accepts a single 1-D vector (promoted to a batch of one) or a 2-D
    (k, n) array whose trailing dimension matches the matrix width.
    Shared by :meth:`NewtonDevice.gemv_batch` and every
    ``Backend.gemv_batch`` adapter so all batch entry points reject
    malformed input identically.

    Raises:
        LayoutError: for >2-D input or a trailing-dimension mismatch.
    """
    vectors = np.asarray(vectors, dtype=np.float32)
    if vectors.ndim == 1:
        vectors = vectors[None, :]
    if vectors.ndim != 2:
        raise LayoutError(
            f"batch vectors must be 1-D or 2-D (k, n), got shape "
            f"{vectors.shape}"
        )
    if vectors.shape[1] != n:
        raise LayoutError(
            f"batch vectors have width {vectors.shape[1]}, the matrix "
            f"expects n={n}"
        )
    return vectors


@dataclass
class MatrixHandle:
    """A matrix resident in the device (one layout per channel)."""

    m: int
    n: int
    placements: List[Tuple[int, Tuple[int, int], Layout]] = field(default_factory=list)
    """(channel index, (row_lo, row_hi), layout) per participating channel."""

    truncated_channels: int = 0
    """Channel placements dropped by a timing-only load (the device
    simulates channel 0 only; see :meth:`NewtonDevice.load_matrix`)."""

    truncated_rows: int = 0
    """Matrix rows covered by those dropped placements."""

    @property
    def truncated(self) -> bool:
        """Whether any placement was dropped at load time."""
        return self.truncated_channels > 0


class NewtonDevice:
    """A Newton accelerator-in-memory device."""

    def __init__(
        self,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        opt: OptimizationConfig = FULL,
        *,
        functional: bool = True,
        refresh_enabled: bool = True,
        power_params: PowerParams = PowerParams(),
        lut_activation: Optional[str] = None,
        fast: bool = True,
        channel_workers: int = 0,
        telemetry: bool = True,
        datapath: Optional[str] = None,
    ):
        self.config = config if config is not None else hbm2e_like_config()
        self.timing = timing if timing is not None else hbm2e_like_timing()
        self.opt = opt
        self.functional = functional
        self.channel_workers = channel_workers
        self.load_truncations = 0
        """Loads whose per-channel placements were truncated (timing-only
        mode simulates channel 0 only); see :meth:`load_matrix`."""
        self._executor: Optional[ThreadPoolExecutor] = None
        lut = (
            ActivationLUT(lut_activation)
            if (lut_activation is not None and not opt.interleaved_reuse)
            else None
        )
        active_channels = self.config.num_channels if functional else 1
        self.engines: List[NewtonChannelEngine] = [
            NewtonChannelEngine(
                self.config,
                self.timing,
                opt,
                channel_index=ch,
                functional=functional,
                refresh_enabled=refresh_enabled,
                power_params=power_params,
                lut=lut,
                fast=fast,
                telemetry=telemetry,
                datapath=datapath,
            )
            for ch in range(active_channels)
        ]

    # ------------------------------------------------------------------

    def load_matrix(
        self,
        matrix: Optional[np.ndarray] = None,
        *,
        m: Optional[int] = None,
        n: Optional[int] = None,
    ) -> MatrixHandle:
        """Make a matrix resident, spread row-wise across the channels.

        Pass the array itself in functional mode, or just ``m``/``n`` in
        timing-only mode. Loading is not timed (the matrix lives in the
        AiM for the model's lifetime).

        In timing-only mode only channel 0 is simulated: it always holds
        the largest (cumulative) row slice and refresh is identical
        across channels, so it is the critical path and the other
        channels' placements are intentionally dropped. The handle
        records that truncation (``truncated_channels`` /
        ``truncated_rows``), the device counts it
        (:attr:`load_truncations`, exported by
        :meth:`collect_metrics`), and a debug log line is emitted. A
        functional device is never allowed to drop data: if a placement
        ever targets a missing engine there, :class:`ProtocolError` is
        raised instead.
        """
        if matrix is not None:
            matrix = np.asarray(matrix, dtype=np.float32)
            if matrix.ndim != 2:
                raise LayoutError(f"matrix must be 2-D, got shape {matrix.shape}")
            m, n = matrix.shape
        if m is None or n is None:
            raise LayoutError("provide a matrix, or both m and n")
        if matrix is None and self.functional:
            raise ProtocolError(
                "functional mode needs the matrix data; pass functional=False "
                "for timing-only shape runs"
            )
        slices = partition_rows(m, self.config.num_channels)
        handle = MatrixHandle(m=m, n=n)
        for channel, (lo, hi) in enumerate(slices):
            if hi == lo:
                continue
            if channel >= len(self.engines):
                if self.functional:
                    raise ProtocolError(
                        f"channel {channel} placement of rows [{lo}, {hi}) "
                        f"has no engine ({len(self.engines)} present); a "
                        "functional device must simulate every placement"
                    )
                # Timing-only: channel 0 is the critical path; record the
                # dropped placement instead of silently discarding it.
                handle.truncated_channels += 1
                handle.truncated_rows += hi - lo
                continue
            layout = self.engines[channel].add_matrix(
                hi - lo, n, matrix[lo:hi] if matrix is not None else None
            )
            handle.placements.append((channel, (lo, hi), layout))
        if handle.truncated:
            self.load_truncations += 1
            logger.debug(
                "timing-only load of %dx%d: %d channel placement(s) "
                "covering %d rows dropped; channel 0 remains the critical "
                "path",
                m,
                n,
                handle.truncated_channels,
                handle.truncated_rows,
            )
        return handle

    def _channel_executor(self) -> Optional[ThreadPoolExecutor]:
        """The shared channel pool, created lazily when it pays off."""
        if self.channel_workers < 2 or not self.functional:
            return None
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=min(self.channel_workers, len(self.engines)),
                thread_name_prefix="newton-channel",
            )
        return self._executor

    def store_matrix(
        self, handle: MatrixHandle, matrix: np.ndarray
    ) -> None:
        """Rewrite a resident matrix's data in place (functional only).

        The handle keeps its DRAM placements; only the stored bits
        change — the residency-update primitive behind the bank-resident
        KV-cache, whose arena is allocated once and grown in place
        across decode steps. Untimed, like :meth:`load_matrix`.
        """
        if not self.functional:
            raise ProtocolError("store_matrix needs a functional device")
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.shape != (handle.m, handle.n):
            raise LayoutError(
                f"matrix of shape {matrix.shape}; the handle holds "
                f"({handle.m}, {handle.n})"
            )
        for channel, (lo, hi), layout in handle.placements:
            self.engines[channel].update_matrix(layout, matrix[lo:hi])

    def gemv(
        self,
        handle: MatrixHandle,
        vector: Optional[np.ndarray] = None,
        *,
        fused_input: bool = False,
    ) -> GemvRunResult:
        """One matrix-vector product; channels execute in parallel.

        ``fused_input=True`` marks the input as already channel-resident
        (fused-layer dataflow): every channel elides the host GWRITEs
        from its command stream while loading its buffer identically, so
        outputs are bit-identical and only cycles change.
        """
        if not handle.placements:
            raise ProtocolError("the matrix handle has no placements")
        executor = (
            self._channel_executor() if len(handle.placements) > 1 else None
        )
        if executor is not None:
            # Each engine is touched by exactly one task; results are
            # gathered in placement order, so the run is deterministic.
            channel_results = list(
                executor.map(
                    lambda p: self.engines[p[0]].run_gemv(
                        p[2], vector, fused_input=fused_input
                    ),
                    handle.placements,
                )
            )
        else:
            channel_results = [
                self.engines[channel].run_gemv(
                    layout, vector, fused_input=fused_input
                )
                for channel, _, layout in handle.placements
            ]
        output = np.zeros(handle.m, dtype=np.float32) if self.functional else None
        for result, (_, (lo, hi), _) in zip(channel_results, handle.placements):
            result.row_slice = (lo, hi)
            if output is not None and result.output is not None:
                output[lo:hi] = result.output
        start = min(r.start_cycle for r in channel_results)
        end = max(r.end_cycle for r in channel_results)
        return GemvRunResult(
            cycles=end - start, channel_results=channel_results, output=output
        )

    def gemm(
        self, handle: MatrixHandle, matrix_b: np.ndarray
    ) -> "tuple[np.ndarray, int]":
        """Matrix-matrix product ``A @ B`` via sequential GEMVs.

        Newton has no batch reuse: each of B's columns is an independent
        matrix-vector product, so ``cycles`` is the sum (the Section V-D
        flat-batch behaviour). Returns the (m, k) fp32 product and the
        total cycles.
        """
        if not self.functional:
            raise ProtocolError("gemm needs a functional device")
        matrix_b = np.asarray(matrix_b, dtype=np.float32)
        if matrix_b.ndim != 2 or matrix_b.shape[0] != handle.n:
            raise LayoutError(
                f"B of shape {matrix_b.shape}; expected ({handle.n}, k)"
            )
        columns = []
        cycles = 0
        for j in range(matrix_b.shape[1]):
            run = self.gemv(handle, matrix_b[:, j])
            columns.append(run.output)
            cycles += run.cycles
        return np.stack(columns, axis=1), cycles

    def gemv_batch(
        self,
        handle: MatrixHandle,
        vectors: Optional[np.ndarray] = None,
        *,
        batch: Optional[int] = None,
    ) -> List[GemvRunResult]:
        """A batch of matrix-vector products, run back to back.

        Newton cannot exploit batch reuse (Section V-D): the command
        stream for k inputs is the concatenation of k single-input
        streams, so per-input latency is constant by construction.

        Raises:
            LayoutError: if ``vectors`` is not 1-D or 2-D, or its
                trailing dimension does not match the matrix width.
        """
        if vectors is not None:
            vectors = validate_batch_vectors(vectors, handle.n)
            runs = [self.gemv(handle, vectors[i]) for i in range(vectors.shape[0])]
        elif batch is not None:
            if batch <= 0:
                raise ProtocolError("batch must be positive")
            runs = [self.gemv(handle) for _ in range(batch)]
        else:
            raise ProtocolError("provide vectors or a batch size")
        return runs

    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        """The device clock (slowest channel's controller time)."""
        return max(e.channel.controller.now for e in self.engines)

    def power_report(self) -> PowerReport:
        """Per-channel normalized power over everything run so far.

        Channels are statistically identical (slices differ by at most
        one row group), so channel 0's report is the device's
        per-channel average power — the quantity Figure 13 plots.
        """
        return self.engines[0].power_report()

    def conventional_dram_power(self) -> float:
        """The Figure 13 normalization denominator."""
        return self.engines[0].channel.power_model.conventional_streaming_power()

    def collect_metrics(self) -> dict:
        """Per-channel telemetry breakdowns (see :mod:`repro.telemetry`)."""
        from repro.telemetry import device_metrics

        return device_metrics(self)

    def close(self) -> None:
        """Release the channel thread pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
