"""The per-channel execution engine: timing + functional, together.

The engine walks a :class:`~repro.core.command_gen.Step` stream, issuing
every command to the cycle-accurate controller and — in functional mode —
mirroring the datapath's state: GWRITE loads the global buffer, the final
compute command of a tile fires the tile evaluation (bit-exact with the
per-command MAC path), and READRES drains result latches into fp32
host-side partial accumulation. The functional interpretation itself is
tiered too (:mod:`repro.core.datapath`): the default ``batched`` tier
evaluates whole buffer groups of tiles as single vector kernels, with
``tile`` and per-COMP ``scalar`` tiers selectable via the ``datapath``
argument or ``NEWTON_DATAPATH`` — all three bit-identical.

A single engine persists across runs: successive layers (or batch inputs)
execute back-to-back on the same controller clock, so refresh interference
accumulates across an end-to-end model exactly as it would on hardware —
the effect behind DLRM's end-to-end vs single-layer gap in Figure 8.

Execution is tiered, fastest applicable tier first, without giving up a
cycle of exactness (see :mod:`repro.core.schedule_cache`,
:mod:`repro.dram.burst`, and ``docs/cold-path.md``):

* the **schedule cache** replays recorded per-tile timing deltas when a
  tile starts from a controller state already seen (same relative
  bus/bank/FAW phase), fast-forwarding the controller in O(1) per tile —
  the steady-state tier;
* on a replay miss (the *cold* path: first encounter of a layer shape
  or controller phase), homogeneous command runs go through the **burst
  kernel** — first command solved by the constraint solver, the rest in
  closed form — instead of N per-command solver iterations;
* the **per-command reference** solver handles everything else, and the
  whole stream when the fast path is off.

The **stream cache** additionally materializes each layout's lowered,
run-length-compiled stream once, so ``gemm``/``gemv_batch``/serving
re-runs skip Algorithm 1's lowering entirely. Refresh barriers are
always executed exactly in every tier, and tracing or mixed background
traffic forces the per-command reference for the run.

Set ``fast=False`` (or the ``NEWTON_NO_FASTPATH=1`` environment
variable) to force per-command issue everywhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.command_gen import CommandStreamGenerator
from repro.core.datapath import make_datapath
from repro.core.global_buffer import GlobalBuffer
from repro.core.layout import Layout, make_layout
from repro.core.optimizations import OptimizationConfig
from repro.core.result import ChannelRunResult, stats_delta, stats_snapshot
from repro.core.schedule_cache import (
    ScheduleCache,
    SegmentedStream,
    StreamCache,
    segment_stream,
)
from repro.dram import fastpath
from repro.dram.channel import Channel
from repro.dram.commands import CommandRun
from repro.dram.config import DRAMConfig
from repro.dram.power import PowerParams, PowerReport
from repro.dram.timing import TimingParams
from repro.errors import ProtocolError
from repro.numerics.bfloat16 import bf16_bits_to_float
from repro.numerics.lut import ActivationLUT
from repro.utils.envflags import env_flag


def fastpath_env_disabled() -> bool:
    """True when ``NEWTON_NO_FASTPATH`` requests the slow path.

    Accepts the repository's standard boolean spellings (see
    :mod:`repro.utils.envflags`): ``1/true/yes/on`` disable the fast
    path, ``0/false/no/off`` and the empty string keep it, anything
    else warns and keeps the default (fast path on).
    """
    return env_flag("NEWTON_NO_FASTPATH", default=False)


def telemetry_env_enabled() -> bool:
    """True unless ``NEWTON_TELEMETRY`` requests attribution off.

    Telemetry defaults on; set ``NEWTON_TELEMETRY=0`` (or any falsy
    spelling) to skip cycle-attribution accounting entirely — the
    reference point the throughput benchmark's overhead gate measures
    against.
    """
    return env_flag("NEWTON_TELEMETRY", default=True)


class NewtonChannelEngine:
    """Executes GEMV command streams on one Newton channel."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        opt: OptimizationConfig,
        *,
        channel_index: int = 0,
        functional: bool = True,
        refresh_enabled: bool = True,
        power_params: PowerParams = PowerParams(),
        lut: Optional[ActivationLUT] = None,
        fast: bool = True,
        telemetry: bool = True,
        datapath: Optional[str] = None,
        schedule_cache: Optional[ScheduleCache] = None,
    ):
        self.config = config
        self.timing = timing
        self.opt = opt
        self.channel_index = channel_index
        self.functional = functional
        self.lut = lut
        self.fast = fast and not fastpath_env_disabled()
        self.telemetry = telemetry and telemetry_env_enabled()
        self.channel = Channel(
            config,
            timing,
            aggressive_tfaw=opt.aggressive_tfaw,
            refresh_enabled=refresh_enabled,
            power_params=power_params,
            telemetry=self.telemetry,
        )
        self.buffer = GlobalBuffer(config)
        self._latches = np.zeros(
            (config.banks_per_channel, opt.result_latches), dtype=np.float32
        )
        self._next_free_row = 0
        # Per-run memo of expanded (banks, elems_per_row) float rows:
        # the interleaved traversal revisits every tile once per chunk,
        # so expanding storage bits once per run instead of once per
        # (chunk, tile) removes a whole-matrix decode per chunk. Cleared
        # at run start — storage may be mutated between runs (scrub).
        self._row_cache: dict = {}
        self.datapath = make_datapath(datapath, self)
        """The functional-datapath tier interpreting this engine's
        payload steps (see :mod:`repro.core.datapath`); selected by the
        ``datapath`` argument or ``NEWTON_DATAPATH``."""
        self.schedule_cache = (
            schedule_cache if schedule_cache is not None else ScheduleCache()
        )
        """Replayable per-segment timing deltas. Injectable so sweeps can
        share one cache across engines with identical architecture
        (config + timing + opt): segment keys are command-content
        interned and signatures are relative, so tiles recorded by one
        engine replay in another — the design-space explorer's
        cross-point reuse."""
        self._stream_cache = StreamCache()
        self.burst_runs = 0
        """Homogeneous runs issued through the cold-path burst kernel."""
        self.burst_commands = 0
        """Commands those runs covered (each one skipped the per-command
        constraint solver; see :mod:`repro.dram.burst`)."""
        self.fused_runs = 0
        """GEMVs executed with a channel-resident input (fused-layer
        dataflow: the host GWRITE round trip was elided)."""
        self.fused_skipped_gwrites = 0
        """GWRITE commands those fused runs kept off the command bus."""
        self.fused_saved_cycles = 0
        """Estimated command-slot cycles the elided GWRITEs would have
        occupied (``skipped * max(t_cmd, t_ccd)``, the homogeneous-run
        stride). An estimate for telemetry only — the measured saving is
        the fused-vs-round-trip end-cycle difference."""
        # Opt-in protocol verification (NEWTON_CHECK_INVARIANTS=1): the
        # verifier installs itself as the controller's trace recorder,
        # which also forces the per-command tier so it sees every
        # command. Imported lazily — repro.verify imports this module.
        from repro.verify.hook import maybe_attach_verifier

        self.verifier = maybe_attach_verifier(self)
        """The attached :class:`~repro.verify.hook.EngineVerifier`, or
        ``None`` (the default: the flag is off)."""

    # ------------------------------------------------------------------
    # matrix residency

    def add_matrix(self, m: int, n: int, matrix: Optional[np.ndarray] = None) -> Layout:
        """Allocate DRAM rows for an ``m x n`` matrix and (optionally) load it.

        The load itself is not timed: the filter matrix is resident in
        the AiM for the model's lifetime (the paper re-loads it only for
        ECC scrubbing, about once per thousand inputs).
        """
        layout = make_layout(
            self.config,
            m,
            n,
            interleaved=self.opt.interleaved_reuse,
            base_row=self._next_free_row,
            latches_per_bank=self.opt.result_latches,
        )
        self._next_free_row += layout.rows_per_bank_used
        if self.functional and matrix is not None:
            for bank, row, bits in layout.place(matrix):
                self.channel.storage[bank].write_row(row, bits)
        return layout

    def update_matrix(self, layout: Layout, matrix: np.ndarray) -> None:
        """Rewrite a resident matrix's data in place (functional only).

        The in-place residency update behind the bank-resident KV-cache:
        decode appends a row/column to an arena whose DRAM rows were
        allocated once at session open. Like :meth:`add_matrix`, the
        write itself is not timed (the host streams it alongside compute,
        exactly as the paper's occasional ECC scrub re-loads are).
        """
        if not self.functional:
            raise ProtocolError("update_matrix needs a functional engine")
        for bank, row, bits in layout.place(matrix):
            self.channel.storage[bank].write_row(row, bits)

    # ------------------------------------------------------------------
    # execution

    def _tile_matrix(self, dram_row: int) -> np.ndarray:
        """All banks' open-row data as float32 on the bfloat16 grid."""
        rows = self._row_cache.get(dram_row)
        if rows is None:
            rows = np.stack(
                [
                    bf16_bits_to_float(storage.row_array(dram_row))
                    for storage in self.channel.storage
                ]
            )
            self._row_cache[dram_row] = rows
        return rows

    def _segments_for(self, layout: Layout, *, fused: bool = False) -> SegmentedStream:
        """The layout's lowered, segmented command stream (memoized).

        The fused (GWRITE-less) lowering is cached separately from the
        round-trip one — same layout, different command identity — so a
        session that alternates fused and unfused runs replays each
        schedule from its own cache entries.
        """
        key = (layout, True) if fused else layout
        stream = self._stream_cache.get(key)
        if stream is None:
            generator = CommandStreamGenerator(
                self.config, self.timing, self.opt, layout
            )
            stream = segment_stream(generator, self.schedule_cache, fused=fused)
            self._stream_cache.put(key, stream)
        return stream

    def run_gemv(
        self,
        layout: Layout,
        vector: Optional[np.ndarray] = None,
        background=None,
        *,
        fused_input: bool = False,
    ) -> ChannelRunResult:
        """Execute one matrix-vector product on this channel's slice.

        Args:
            layout: the resident matrix's layout (from :meth:`add_matrix`).
            vector: the input vector (functional mode).
            background: optional non-AiM traffic source with a
                ``commands_for_boundary(index, now) -> list[Command]``
                method (and optionally ``record_completion``);
                its commands are interleaved at tile boundaries, where
                every bank is precharged — honouring Section III-D's rule
                that non-AiM commands access a different row and never
                interfere with in-flight AiM row operations. Background
                traffic (like tracing) disables the steady-state fast
                path for the run.
            fused_input: the input vector is already channel-resident
                (fused-layer dataflow), so the stream's host GWRITEs are
                elided from the command bus; outputs stay bit-identical.
                Ignored when the protocol verifier is attached — the
                verifier checks the *host* protocol, whose
                GWRITE-before-COMP rule a fused stream intentionally
                bypasses.
        """
        controller = self.channel.controller
        # Fused lowering elides GWRITEs from the timed stream — sound for
        # Newton's chunk-major traversal where GWRITE is a pure host
        # round trip, but the output_stationary family *re-streams* the
        # input per tile (its GWRITEs are the dataflow's cost), so only
        # the newton family may fuse.
        fused = (
            fused_input
            and self.verifier is None
            and self.config.command_family == "newton"
        )
        stream = self._segments_for(layout, fused=fused)
        if fused:
            self.fused_runs += 1
            self.fused_skipped_gwrites += stream.skipped_gwrites
            self.fused_saved_cycles += stream.skipped_gwrites * max(
                self.timing.t_cmd, self.timing.t_ccd
            )
        if self.functional:
            if vector is None:
                raise ProtocolError("functional mode requires an input vector")
            padded = layout.pad_vector(vector)
        else:
            padded = np.zeros(0, dtype=np.float32)
        self._row_cache.clear()
        use_fast = (
            self.fast and background is None and controller.trace is None
        )
        cache = self.schedule_cache

        before = stats_snapshot(controller.stats)
        start = controller.now
        end = start
        output = (
            np.zeros(layout.m, dtype=np.float32) if self.functional else None
        )
        boundary = 0
        for segment in stream.segments:
            if segment.barrier_cycles:
                if background is not None:
                    for command in background.commands_for_boundary(
                        boundary, controller.now
                    ):
                        record = controller.issue(command)
                        end = max(end, record.complete)
                        notify = getattr(background, "record_completion", None)
                        if notify is not None:
                            notify(command, record)
                boundary += 1
                controller.refresh_barrier(segment.barrier_cycles)
            if not segment.items and not segment.functional_steps:
                continue

            signature = (
                fastpath.relative_signature(controller) if use_fast else None
            )
            if signature is not None:
                base = controller.now
                delta = cache.lookup(segment.key_id, signature)
                if delta is not None:
                    # Steady state: replay the recorded schedule in O(1).
                    fastpath.apply_delta(controller, delta, base)
                    cache.replayed_commands += segment.n_commands
                    if delta.max_complete is not None:
                        end = max(end, base + delta.max_complete)
                else:
                    # Cold path: homogeneous runs go through the burst
                    # kernel (first command solved, tail in closed form);
                    # everything else through the per-command solver.
                    counters_before = fastpath.counters(controller)
                    segment_complete: Optional[int] = None
                    for item in segment.items:
                        if isinstance(item, CommandRun):
                            complete = controller.issue_burst(item).complete
                            self.burst_runs += 1
                            self.burst_commands += item.count
                        else:
                            complete = controller.issue(item).complete
                        if (
                            segment_complete is None
                            or complete > segment_complete
                        ):
                            segment_complete = complete
                    if segment_complete is not None:
                        end = max(end, segment_complete)
                    delta = fastpath.capture_delta(
                        controller, base, counters_before, segment_complete
                    )
                    if delta is not None:
                        cache.store(segment.key_id, signature, delta)
            else:
                for command in segment.commands:
                    record = controller.issue(command)
                    end = max(end, record.complete)
            if output is not None:
                for step in segment.functional_steps:
                    self.datapath.step(step, padded, layout, output)
        if output is not None:
            # Apply the datapath's deferred work (the batched tier
            # evaluates whole buffer groups at flush points), then drop
            # the run's expanded-row memo.
            self.datapath.finish(output)
            self._row_cache.clear()
        after = stats_snapshot(controller.stats)
        if self.verifier is not None:
            # Raises VerificationError if this run broke the protocol.
            self.verifier.after_run(end)
        return ChannelRunResult(
            channel_index=self.channel_index,
            row_slice=(0, layout.m),
            start_cycle=start,
            end_cycle=end,
            stats=stats_delta(before, after),
            output=output,
        )

    def power_report(self) -> PowerReport:
        """Normalized power breakdown over everything run so far."""
        return self.channel.power_report()

    def collect_metrics(self, *, end: Optional[int] = None) -> dict:
        """Schema-validated telemetry breakdown for this channel.

        See :func:`repro.telemetry.engine_metrics`; pass the run's
        reported ``end_cycle`` so in-flight completions are attributed.
        """
        from repro.telemetry import engine_metrics

        return engine_metrics(self, end=end)
