"""The per-channel execution engine: timing + functional, together.

The engine walks a :class:`~repro.core.command_gen.Step` stream, issuing
every command to the cycle-accurate controller and — in functional mode —
mirroring the datapath's state: GWRITE loads the global buffer, the final
compute command of a tile fires the vectorized tile evaluation (bit-exact
with the per-command MAC path), and READRES drains result latches into
fp32 host-side partial accumulation.

A single engine persists across runs: successive layers (or batch inputs)
execute back-to-back on the same controller clock, so refresh interference
accumulates across an end-to-end model exactly as it would on hardware —
the effect behind DLRM's end-to-end vs single-layer gap in Figure 8.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.command_gen import CommandStreamGenerator, Step
from repro.core.global_buffer import GlobalBuffer
from repro.core.layout import Layout, make_layout
from repro.core.mac_unit import tile_compute
from repro.core.optimizations import OptimizationConfig
from repro.core.result import ChannelRunResult, stats_delta, stats_snapshot
from repro.dram.channel import Channel
from repro.dram.config import DRAMConfig
from repro.dram.power import PowerParams, PowerReport
from repro.dram.timing import TimingParams
from repro.errors import ProtocolError
from repro.numerics.bfloat16 import bf16_bits_to_float
from repro.numerics.lut import ActivationLUT


class NewtonChannelEngine:
    """Executes GEMV command streams on one Newton channel."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        opt: OptimizationConfig,
        *,
        channel_index: int = 0,
        functional: bool = True,
        refresh_enabled: bool = True,
        power_params: PowerParams = PowerParams(),
        lut: Optional[ActivationLUT] = None,
    ):
        self.config = config
        self.timing = timing
        self.opt = opt
        self.channel_index = channel_index
        self.functional = functional
        self.lut = lut
        self.channel = Channel(
            config,
            timing,
            aggressive_tfaw=opt.aggressive_tfaw,
            refresh_enabled=refresh_enabled,
            power_params=power_params,
        )
        self.buffer = GlobalBuffer(config)
        self._latches = np.zeros(
            (config.banks_per_channel, opt.result_latches), dtype=np.float32
        )
        self._next_free_row = 0
        self._row_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # matrix residency

    def add_matrix(self, m: int, n: int, matrix: Optional[np.ndarray] = None) -> Layout:
        """Allocate DRAM rows for an ``m x n`` matrix and (optionally) load it.

        The load itself is not timed: the filter matrix is resident in
        the AiM for the model's lifetime (the paper re-loads it only for
        ECC scrubbing, about once per thousand inputs).
        """
        layout = make_layout(
            self.config,
            m,
            n,
            interleaved=self.opt.interleaved_reuse,
            base_row=self._next_free_row,
            latches_per_bank=self.opt.result_latches,
        )
        self._next_free_row += layout.rows_per_bank_used
        if self.functional and matrix is not None:
            for bank, row, bits in layout.place(matrix):
                self.channel.storage[bank].write_row(row, bits)
        return layout

    # ------------------------------------------------------------------
    # execution

    def _tile_matrix(self, dram_row: int) -> np.ndarray:
        """All banks' open-row data as float32 on the bfloat16 grid."""
        if self._row_cache is not None and self._row_cache[0] == dram_row:
            return self._row_cache[1]
        rows = np.stack(
            [
                bf16_bits_to_float(storage.row_array(dram_row))
                for storage in self.channel.storage
            ]
        )
        self._row_cache = (dram_row, rows)
        return rows

    def _handle_functional(
        self, step: Step, padded_vector: np.ndarray, layout: Layout
    ) -> Optional[tuple]:
        if step.new_chunk is not None:
            self.buffer.invalidate()
        if step.load is not None:
            chunk, sub = step.load
            k = self.config.elems_per_col
            data = padded_vector[
                chunk * self.config.elems_per_row + sub * k :
                chunk * self.config.elems_per_row + (sub + 1) * k
            ]
            self.buffer.load_subchunk(sub, data)
        if step.compute is not None:
            op = step.compute
            matrix_rows = self._tile_matrix(op.dram_row)
            self._latches[:, op.latch] = tile_compute(
                matrix_rows,
                self.buffer.chunk(layout.cols_in_chunk(op.chunk)),
                self._latches[:, op.latch],
                self.config.mults_per_bank,
            )
        if step.emit is not None:
            emit = step.emit
            values = self._latches[:, emit.latch].copy()
            self._latches[:, emit.latch] = 0.0
            if emit.chunk is None and self.lut is not None:
                values = self.lut.apply(values)
            return (emit.matrix_rows, values)
        return None

    def run_gemv(
        self,
        layout: Layout,
        vector: Optional[np.ndarray] = None,
        background=None,
    ) -> ChannelRunResult:
        """Execute one matrix-vector product on this channel's slice.

        Args:
            layout: the resident matrix's layout (from :meth:`add_matrix`).
            vector: the input vector (functional mode).
            background: optional non-AiM traffic source with a
                ``commands_for_boundary(index, now) -> list[Command]``
                method (and optionally ``record_completion``);
                its commands are interleaved at tile boundaries, where
                every bank is precharged — honouring Section III-D's rule
                that non-AiM commands access a different row and never
                interfere with in-flight AiM row operations.
        """
        controller = self.channel.controller
        generator = CommandStreamGenerator(self.config, self.timing, self.opt, layout)
        if self.functional:
            if vector is None:
                raise ProtocolError("functional mode requires an input vector")
            padded = layout.pad_vector(vector)
        else:
            padded = np.zeros(0, dtype=np.float32)
        self._row_cache = None

        before = stats_snapshot(controller.stats)
        start = controller.now
        end = start
        output = (
            np.zeros(layout.m, dtype=np.float32) if self.functional else None
        )
        boundary = 0
        for step in generator.gemv_steps():
            if step.barrier_cycles:
                if background is not None:
                    for command in background.commands_for_boundary(
                        boundary, controller.now
                    ):
                        record = controller.issue(command)
                        end = max(end, record.complete)
                        notify = getattr(background, "record_completion", None)
                        if notify is not None:
                            notify(command, record)
                boundary += 1
                controller.refresh_barrier(step.barrier_cycles)
                continue
            if step.command is not None:
                record = controller.issue(step.command)
                end = max(end, record.complete)
            if self.functional:
                emitted = self._handle_functional(step, padded, layout)
                if emitted is not None and output is not None:
                    rows, values = emitted
                    mask = rows >= 0
                    # fp32 host-side reduction of per-chunk partials.
                    np.add.at(output, rows[mask], values[mask])
        after = stats_snapshot(controller.stats)
        return ChannelRunResult(
            channel_index=self.channel_index,
            row_slice=(0, layout.m),
            start_cycle=start,
            end_cycle=end,
            stats=stats_delta(before, after),
            output=output,
        )

    def power_report(self) -> PowerReport:
        """Normalized power breakdown over everything run so far."""
        return self.channel.power_report()
