"""The per-channel global input-vector buffer (Section III-B).

One DRAM-row-wide buffer (512 bfloat16) shared by every bank in the
channel — the "non-intuitive" feature that amortizes the input buffer's
area over the whole channel. It is loaded one column-access width (a
16-element *sub-chunk*) at a time by GWRITE commands, and COMP broadcasts
a sub-chunk to all banks' multiplier inputs with no per-bank latching.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.config import DRAMConfig
from repro.errors import ProtocolError
from repro.numerics.bfloat16 import quantize_bf16


class GlobalBuffer:
    """Functional model of the channel's shared input-vector buffer."""

    def __init__(self, config: DRAMConfig):
        self.config = config
        self.subchunks = config.cols_per_row
        self._data = np.zeros(config.elems_per_row, dtype=np.float32)
        self._valid = np.zeros(self.subchunks, dtype=bool)
        self.loads = 0
        self.broadcasts = 0

    def _check_index(self, subchunk: int) -> None:
        if not 0 <= subchunk < self.subchunks:
            raise ProtocolError(
                f"sub-chunk {subchunk} outside [0, {self.subchunks})"
            )

    def load_subchunk(self, subchunk: int, values: np.ndarray) -> None:
        """GWRITE#: store one sub-chunk (bfloat16-rounded on entry)."""
        self._check_index(subchunk)
        values = np.asarray(values, dtype=np.float32).reshape(-1)
        k = self.config.elems_per_col
        if values.shape != (k,):
            raise ProtocolError(
                f"GWRITE of {values.shape[0]} elements; a sub-chunk holds {k}"
            )
        lo = subchunk * k
        self._data[lo : lo + k] = quantize_bf16(values)
        self._valid[subchunk] = True
        self.loads += 1

    def load_chunk(self, values: np.ndarray, subchunks: int) -> None:
        """A whole GWRITE run: store sub-chunks ``0..subchunks-1`` at once.

        The batched form of :meth:`load_subchunk` — one vectorized
        bfloat16 rounding for the block instead of one per sub-chunk
        (rounding is elementwise, so the result is bit-identical).
        """
        if not 0 < subchunks <= self.subchunks:
            raise ProtocolError(
                f"GWRITE run of {subchunks} sub-chunks outside "
                f"[1, {self.subchunks}]"
            )
        values = np.asarray(values, dtype=np.float32).reshape(-1)
        k = self.config.elems_per_col
        if values.shape != (subchunks * k,):
            raise ProtocolError(
                f"GWRITE run of {values.shape[0]} elements; {subchunks} "
                f"sub-chunks hold {subchunks * k}"
            )
        self._data[: subchunks * k] = quantize_bf16(values)
        self._valid[:subchunks] = True
        self.loads += subchunks

    def read_subchunk(self, subchunk: int) -> np.ndarray:
        """Broadcast one sub-chunk to the banks (COMP's first step)."""
        self._check_index(subchunk)
        if not self._valid[subchunk]:
            raise ProtocolError(
                f"COMP read sub-chunk {subchunk} before it was GWRITE-loaded"
            )
        self.broadcasts += 1
        k = self.config.elems_per_col
        lo = subchunk * k
        return self._data[lo : lo + k].copy()

    def chunk(self, required_subchunks: Optional[int] = None) -> np.ndarray:
        """The buffered chunk (for the vectorized tile evaluator).

        Args:
            required_subchunks: how many leading sub-chunks the tile will
                actually consume (all of them when ``None``). Unloaded
                trailing sub-chunks read as zero, matching a buffer that
                was cleared on ``invalidate``.
        """
        needed = self.subchunks if required_subchunks is None else required_subchunks
        if not 0 <= needed <= self.subchunks:
            raise ProtocolError(
                f"required_subchunks {needed} outside [0, {self.subchunks}]"
            )
        if needed and not self._valid[:needed].all():
            missing = int(np.flatnonzero(~self._valid[:needed])[0])
            raise ProtocolError(
                f"tile compute before the buffer was loaded "
                f"(sub-chunk {missing} missing)"
            )
        return self._data.copy()

    def invalidate(self) -> None:
        """Clear the buffer (a new chunk is about to be loaded)."""
        self._valid[:] = False
        self._data[:] = 0.0
