"""Matrix layouts: Figure 3's chunk-interleaved layout and Newton-no-reuse.

**Interleaved** (the Newton design): the matrix is cut into DRAM-row-wide
*chunks* (512 bfloat16). Matrix row *i*'s chunk *c* occupies one whole
DRAM row of bank ``i mod banks``; consecutive matrix rows go to
consecutive banks; rows beyond the bank count continue at the next DRAM
row ("vertical tile position" *j = i div banks*). All tiles of chunk 0
precede all tiles of chunk 1 ("the first chunk of all the matrix rows is
followed by the second chunk of all the matrix rows"). The computation
walks tiles column-major — every tile of a chunk before the next chunk —
so one buffered input chunk is fully reused.

**No-reuse** (the Section III-C alternative): a full matrix row lives in
one bank across contiguous DRAM rows (one per chunk); the traversal is
row-major, accumulating a whole matrix row in the result latch (output
reuse) but re-fetching each input chunk for every pass of matrix rows.
With ``latches_per_bank = L`` this generalizes to the paper's four-latch
partial-reuse option (input fetched once per L matrix rows per bank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.dram.config import DRAMConfig
from repro.errors import CapacityError, LayoutError
from repro.numerics.bfloat16 import float_to_bf16_bits


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def partition_rows(m: int, num_channels: int) -> List[Tuple[int, int]]:
    """Split ``m`` matrix rows into per-channel contiguous slices.

    Newton's per-channel operation simply repeats across channels
    (Section III-D), so the matrix rows are spread as evenly as possible;
    channels beyond the row count receive empty slices.
    """
    if m <= 0:
        raise LayoutError("matrix must have at least one row")
    if num_channels <= 0:
        raise LayoutError("at least one channel is required")
    base, extra = divmod(m, num_channels)
    slices: List[Tuple[int, int]] = []
    start = 0
    for ch in range(num_channels):
        size = base + (1 if ch < extra else 0)
        slices.append((start, start + size))
        start += size
    return slices


@dataclass(frozen=True)
class TilePlacement:
    """Where one tile's DRAM rows live and which matrix rows they hold."""

    dram_row: int
    matrix_rows: np.ndarray
    """Global matrix-row index per bank; -1 marks an unused (padding) bank."""


class _BaseLayout:
    """Shared geometry for both layouts (one channel's slice)."""

    def __init__(self, config: DRAMConfig, m: int, n: int, base_row: int = 0):
        if m <= 0 or n <= 0:
            raise LayoutError(f"matrix dimensions must be positive, got {m}x{n}")
        if base_row < 0:
            raise LayoutError("base_row must be non-negative")
        self.config = config
        self.m = m
        self.n = n
        self.base_row = base_row
        self.chunk_elems = config.elems_per_row
        self.num_chunks = _ceil_div(n, self.chunk_elems)
        self.banks = config.banks_per_channel

    @property
    def padded_n(self) -> int:
        """Vector length after zero-padding to whole chunks."""
        return self.num_chunks * self.chunk_elems

    def pad_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Validate shape and zero-pad columns to whole chunks (float32)."""
        matrix = np.asarray(matrix, dtype=np.float32)
        if matrix.shape != (self.m, self.n):
            raise LayoutError(
                f"matrix of shape {matrix.shape}, layout expects ({self.m}, {self.n})"
            )
        if self.padded_n == self.n:
            return matrix
        padded = np.zeros((self.m, self.padded_n), dtype=np.float32)
        padded[:, : self.n] = matrix
        return padded

    def pad_vector(self, vector: np.ndarray) -> np.ndarray:
        """Validate shape and zero-pad the input vector to whole chunks."""
        vector = np.asarray(vector, dtype=np.float32).reshape(-1)
        if vector.shape != (self.n,):
            raise LayoutError(
                f"vector of length {vector.shape[0]}, layout expects {self.n}"
            )
        if self.padded_n == self.n:
            return vector
        padded = np.zeros(self.padded_n, dtype=np.float32)
        padded[: self.n] = vector
        return padded

    def chunk_of_vector(self, vector_padded: np.ndarray, chunk: int) -> np.ndarray:
        """Slice chunk ``chunk`` out of a padded vector."""
        lo = chunk * self.chunk_elems
        return vector_padded[lo : lo + self.chunk_elems]

    def cols_in_chunk(self, chunk: int) -> int:
        """Column accesses carrying real data in ``chunk``.

        The final chunk of a vector shorter than a whole DRAM row needs
        fewer COMP commands: the host knows the vector length and skips
        the all-padding sub-chunks.
        """
        if not 0 <= chunk < self.num_chunks:
            raise LayoutError(f"chunk {chunk} outside [0, {self.num_chunks})")
        remaining = self.n - chunk * self.chunk_elems
        return min(
            self.config.cols_per_row,
            _ceil_div(remaining, self.config.elems_per_col),
        )

    def _check_capacity(self, rows_needed: int) -> None:
        if self.base_row + rows_needed > self.config.rows_per_bank:
            raise CapacityError(
                f"layout needs {rows_needed} DRAM rows per bank starting at "
                f"{self.base_row}, but banks have {self.config.rows_per_bank}"
            )


class InterleavedLayout(_BaseLayout):
    """Figure 3's chunk-interleaved, DRAM-row-wide layout."""

    def __init__(self, config: DRAMConfig, m: int, n: int, base_row: int = 0):
        super().__init__(config, m, n, base_row)
        self.tiles = _ceil_div(m, self.banks)
        self.rows_per_bank_used = self.num_chunks * self.tiles
        self._check_capacity(self.rows_per_bank_used)

    def dram_row(self, chunk: int, tile: int) -> int:
        """DRAM row (same index in every bank) of tile ``tile`` of ``chunk``."""
        if not 0 <= chunk < self.num_chunks:
            raise LayoutError(f"chunk {chunk} outside [0, {self.num_chunks})")
        if not 0 <= tile < self.tiles:
            raise LayoutError(f"tile {tile} outside [0, {self.tiles})")
        return self.base_row + chunk * self.tiles + tile

    def tile_matrix_rows(self, tile: int) -> np.ndarray:
        """Global matrix row held by each bank in ``tile`` (-1 = padding)."""
        rows = tile * self.banks + np.arange(self.banks)
        return np.where(rows < self.m, rows, -1)

    def placement(self, chunk: int, tile: int) -> TilePlacement:
        """Full placement record for one tile."""
        return TilePlacement(
            dram_row=self.dram_row(chunk, tile),
            matrix_rows=self.tile_matrix_rows(tile),
        )

    def place(self, matrix: np.ndarray) -> List[Tuple[int, int, np.ndarray]]:
        """Lower a matrix to (bank, dram_row, bf16-bits row data) writes."""
        padded = self.pad_matrix(matrix)
        bits = float_to_bf16_bits(padded)
        writes: List[Tuple[int, int, np.ndarray]] = []
        for chunk in range(self.num_chunks):
            lo = chunk * self.chunk_elems
            hi = lo + self.chunk_elems
            for tile in range(self.tiles):
                row = self.dram_row(chunk, tile)
                for bank in range(self.banks):
                    mrow = tile * self.banks + bank
                    if mrow >= self.m:
                        continue
                    writes.append((bank, row, bits[mrow, lo:hi]))
        return writes


class NoReuseLayout(_BaseLayout):
    """The Section III-C alternative: whole matrix rows per bank.

    Matrix row ``i`` lives in bank ``i mod banks``, slot ``i div banks``,
    occupying ``num_chunks`` contiguous DRAM rows (one per chunk).
    """

    def __init__(
        self,
        config: DRAMConfig,
        m: int,
        n: int,
        base_row: int = 0,
        latches_per_bank: int = 1,
    ):
        super().__init__(config, m, n, base_row)
        if latches_per_bank < 1:
            raise LayoutError("latches_per_bank must be at least 1")
        self.latches_per_bank = latches_per_bank
        self.slots = _ceil_div(m, self.banks)
        self.passes = _ceil_div(self.slots, latches_per_bank)
        self.rows_per_bank_used = self.slots * self.num_chunks
        self._check_capacity(self.rows_per_bank_used)

    def dram_row(self, slot: int, chunk: int) -> int:
        """DRAM row (same in every bank) of slot ``slot``, chunk ``chunk``."""
        if not 0 <= slot < self.slots:
            raise LayoutError(f"slot {slot} outside [0, {self.slots})")
        if not 0 <= chunk < self.num_chunks:
            raise LayoutError(f"chunk {chunk} outside [0, {self.num_chunks})")
        return self.base_row + slot * self.num_chunks + chunk

    def slot_matrix_rows(self, slot: int) -> np.ndarray:
        """Global matrix row held by each bank in ``slot`` (-1 = padding)."""
        rows = slot * self.banks + np.arange(self.banks)
        return np.where(rows < self.m, rows, -1)

    def pass_slots(self, pass_index: int) -> Sequence[int]:
        """The slots (latch positions) processed together in one pass."""
        if not 0 <= pass_index < self.passes:
            raise LayoutError(f"pass {pass_index} outside [0, {self.passes})")
        lo = pass_index * self.latches_per_bank
        hi = min(lo + self.latches_per_bank, self.slots)
        return range(lo, hi)

    def place(self, matrix: np.ndarray) -> List[Tuple[int, int, np.ndarray]]:
        """Lower a matrix to (bank, dram_row, bf16-bits row data) writes."""
        padded = self.pad_matrix(matrix)
        bits = float_to_bf16_bits(padded)
        writes: List[Tuple[int, int, np.ndarray]] = []
        for slot in range(self.slots):
            for bank in range(self.banks):
                mrow = slot * self.banks + bank
                if mrow >= self.m:
                    continue
                for chunk in range(self.num_chunks):
                    lo = chunk * self.chunk_elems
                    writes.append(
                        (bank, self.dram_row(slot, chunk), bits[mrow, lo : lo + self.chunk_elems])
                    )
        return writes


Layout = Union[InterleavedLayout, NoReuseLayout]


def make_layout(
    config: DRAMConfig,
    m: int,
    n: int,
    *,
    interleaved: bool,
    base_row: int = 0,
    latches_per_bank: int = 1,
) -> Layout:
    """Build the layout matching an optimization configuration."""
    if interleaved:
        if latches_per_bank != 1:
            raise LayoutError("the interleaved layout uses a single result latch")
        return InterleavedLayout(config, m, n, base_row)
    return NoReuseLayout(config, m, n, base_row, latches_per_bank)
