"""Per-bank MAC datapath: 16 multipliers + adder tree + result latch(es).

Two functional paths model the same hardware:

* :class:`BankMacUnit` — the scalar, per-command path: one COMP feeds 16
  lane products through the adder tree into the latch. Used by unit and
  property tests as the bit-exact reference.
* :func:`tile_compute` — the vectorized path: evaluates one whole tile
  (every bank x every sub-chunk of a DRAM row) with identical rounding
  and accumulation *order*, so it is bit-identical to the scalar path
  (a property test pins this). The engine uses it for speed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.config import DRAMConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.numerics.adder_tree import AdderTree
from repro.numerics.bfloat16 import bf16_add, bf16_mul, quantize_bf16


class BankMacUnit:
    """One bank's multiplier array, adder tree, and result latches."""

    def __init__(self, config: DRAMConfig, num_latches: int = 1):
        if num_latches < 1:
            raise ConfigurationError("a bank needs at least one result latch")
        self.config = config
        self.lanes = config.mults_per_bank
        self.num_latches = num_latches
        self._tree = AdderTree(self.lanes)
        self._latches = np.zeros(num_latches, dtype=np.float32)
        self.macs = 0

    def _check_latch(self, latch: int) -> None:
        if not 0 <= latch < self.num_latches:
            raise ProtocolError(f"latch {latch} outside [0, {self.num_latches})")

    def compute(
        self,
        matrix_subchunk: np.ndarray,
        input_subchunk: np.ndarray,
        latch: int = 0,
    ) -> None:
        """One COMP: lane multiplies, tree reduction, latch accumulate."""
        self._check_latch(latch)
        a = np.asarray(matrix_subchunk, dtype=np.float32).reshape(-1)
        b = np.asarray(input_subchunk, dtype=np.float32).reshape(-1)
        if a.shape != (self.lanes,) or b.shape != (self.lanes,):
            raise ProtocolError(
                f"COMP operands must be {self.lanes}-wide sub-chunks, got "
                f"{a.shape[0]} and {b.shape[0]}"
            )
        products = bf16_mul(a, b)
        # The tree's reduction, accumulated into the selected latch.
        tree_sum = self._tree.reduce(products)
        self._latches[latch] = bf16_add(
            self._latches[latch : latch + 1],
            np.array([tree_sum], dtype=np.float32),
        )[0]
        self.macs += self.lanes

    def latch_value(self, latch: int = 0) -> float:
        """Peek a latch (bfloat16 value, as float)."""
        self._check_latch(latch)
        return float(self._latches[latch])

    def read_and_clear(self, latch: int = 0) -> float:
        """READRES semantics: read out and reset one latch."""
        self._check_latch(latch)
        value = float(self._latches[latch])
        self._latches[latch] = 0.0
        return value

    @property
    def tree_pipeline_depth(self) -> int:
        """Adder stages the drain delay must cover."""
        return self._tree.pipeline_depth


def tile_compute(
    matrix_rows_f32: np.ndarray,
    input_chunk_f32: np.ndarray,
    latches: np.ndarray,
    lanes: int,
    subchunk_order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized evaluation of one tile's COMP sequence.

    Args:
        matrix_rows_f32: (banks, chunk_elems) float32 already on the
            bfloat16 grid (read straight from storage bits).
        input_chunk_f32: (chunk_elems,) float32 on the bfloat16 grid
            (the global buffer's contents).
        latches: (banks,) float32 current latch values; returned updated
            (a new array), accumulated in ascending sub-chunk order
            exactly like the per-command path.
        lanes: multipliers per bank (sub-chunk width).
        subchunk_order: optional explicit ordering of sub-chunk indices
            (defaults to ascending, which is what the command stream
            issues).

    Returns:
        The updated (banks,) latch array.
    """
    banks, chunk_elems = matrix_rows_f32.shape
    if input_chunk_f32.shape != (chunk_elems,):
        raise ProtocolError(
            f"input chunk of {input_chunk_f32.shape[0]} elements, matrix "
            f"chunk has {chunk_elems}"
        )
    if chunk_elems % lanes != 0:
        raise ProtocolError("chunk width must be a whole number of sub-chunks")
    subchunks = chunk_elems // lanes

    products = quantize_bf16(matrix_rows_f32 * input_chunk_f32[None, :])
    level = products.reshape(banks, subchunks, lanes)
    while level.shape[-1] > 1:
        level = bf16_add(level[..., 0::2], level[..., 1::2])
    tree_sums = level[..., 0]  # (banks, subchunks)

    order = (
        np.arange(subchunks)
        if subchunk_order is None
        else np.asarray(subchunk_order, dtype=np.int64)
    )
    acc = np.asarray(latches, dtype=np.float32).copy()
    for s in order:
        acc = bf16_add(acc, tree_sums[:, s])
    return acc
