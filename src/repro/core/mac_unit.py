"""Per-bank MAC datapath: 16 multipliers + adder tree + result latch(es).

Two functional paths model the same hardware:

* :class:`BankMacUnit` — the scalar, per-command path: one COMP feeds 16
  lane products through the adder tree into the latch. Used by unit and
  property tests as the bit-exact reference.
* :func:`tile_compute` — the vectorized path: evaluates one whole tile
  (every bank x every sub-chunk of a DRAM row) with identical rounding
  and accumulation *order*, so it is bit-identical to the scalar path
  (a property test pins this). The engine uses it for speed.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.config import DRAMConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.numerics.adder_tree import AdderTree
from repro.numerics.bfloat16 import quantize_bf16
from repro.numerics.vectorized import (
    LaneScratch,
    batched_tile_compute,
    grid_add,
    tree_reduce_block,
)


class BankMacUnit:
    """One bank's multiplier array, adder tree, and result latches."""

    def __init__(self, config: DRAMConfig, num_latches: int = 1):
        if num_latches < 1:
            raise ConfigurationError("a bank needs at least one result latch")
        self.config = config
        self.lanes = config.mults_per_bank
        self.num_latches = num_latches
        self._tree = AdderTree(self.lanes)
        self._latches = np.zeros(num_latches, dtype=np.float32)
        # Per-call hot-loop scratch: compute() runs once per COMP on the
        # scalar path, so its operand/product buffers live here rather
        # than being rebuilt every call.
        self._scratch = LaneScratch(self.lanes)
        self.macs = 0

    def _check_latch(self, latch: int) -> None:
        if not 0 <= latch < self.num_latches:
            raise ProtocolError(f"latch {latch} outside [0, {self.num_latches})")

    def compute(
        self,
        matrix_subchunk: np.ndarray,
        input_subchunk: np.ndarray,
        latch: int = 0,
    ) -> None:
        """One COMP: lane multiplies, tree reduction, latch accumulate."""
        self._check_latch(latch)
        a = np.asarray(matrix_subchunk, dtype=np.float32).reshape(-1)
        b = np.asarray(input_subchunk, dtype=np.float32).reshape(-1)
        if a.shape != (self.lanes,) or b.shape != (self.lanes,):
            raise ProtocolError(
                f"COMP operands must be {self.lanes}-wide sub-chunks, got "
                f"{a.shape[0]} and {b.shape[0]}"
            )
        # bf16_mul / adder_tree_reduce / bf16_add semantics, evaluated in
        # the preallocated scratch (bit-identical; pinned by the property
        # suite and tests/numerics/test_vectorized.py).
        products = self._scratch.mul(a, b)
        tree_sum = self._scratch.tree_reduce(products)
        self._latches[latch] = self._scratch.accumulate(
            float(self._latches[latch]), tree_sum
        )
        self.macs += self.lanes

    def latch_value(self, latch: int = 0) -> float:
        """Peek a latch (bfloat16 value, as float)."""
        self._check_latch(latch)
        return float(self._latches[latch])

    def read_and_clear(self, latch: int = 0) -> float:
        """READRES semantics: read out and reset one latch."""
        self._check_latch(latch)
        value = float(self._latches[latch])
        self._latches[latch] = 0.0
        return value

    @property
    def tree_pipeline_depth(self) -> int:
        """Adder stages the drain delay must cover."""
        return self._tree.pipeline_depth


def tile_compute(
    matrix_rows_f32: np.ndarray,
    input_chunk_f32: np.ndarray,
    latches: np.ndarray,
    lanes: int,
    subchunk_order: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Vectorized evaluation of one tile's COMP sequence.

    Args:
        matrix_rows_f32: (banks, chunk_elems) float32 already on the
            bfloat16 grid (read straight from storage bits).
        input_chunk_f32: (chunk_elems,) float32 on the bfloat16 grid
            (the global buffer's contents).
        latches: (banks,) float32 current latch values; returned updated
            (a new array), accumulated in ascending sub-chunk order
            exactly like the per-command path.
        lanes: multipliers per bank (sub-chunk width).
        subchunk_order: optional explicit ordering of sub-chunk indices
            (defaults to ascending, which is what the command stream
            issues).

    Returns:
        The updated (banks,) latch array.
    """
    banks, chunk_elems = matrix_rows_f32.shape
    if input_chunk_f32.shape != (chunk_elems,):
        raise ProtocolError(
            f"input chunk of {input_chunk_f32.shape[0]} elements, matrix "
            f"chunk has {chunk_elems}"
        )
    if chunk_elems % lanes != 0:
        raise ProtocolError("chunk width must be a whole number of sub-chunks")
    subchunks = chunk_elems // lanes
    carry = np.asarray(latches, dtype=np.float32)

    if subchunk_order is None:
        # The common (command-stream) order: delegate to the batched
        # kernel as a 1-tile block.
        return batched_tile_compute(
            np.asarray(matrix_rows_f32, dtype=np.float32)[None, :, :],
            np.asarray(input_chunk_f32, dtype=np.float32),
            carry[None, :],
            lanes,
        )[0]

    with np.errstate(over="ignore", invalid="ignore"):
        products = quantize_bf16(matrix_rows_f32 * input_chunk_f32[None, :])
    tree_sums = tree_reduce_block(
        products.reshape(banks, subchunks, lanes)
    )  # (banks, subchunks)
    acc = quantize_bf16(carry)
    for s in np.asarray(subchunk_order, dtype=np.int64):
        acc = grid_add(acc, tree_sums[:, s])
    return acc
