"""Newton's ablatable optimizations (Figure 9).

Figure 9 adds the optimizations progressively over the non-optimized
design: (1) all-bank ganged compute commands, (2) complex multi-step
compute commands, (3) reuse via tiling and the interleaved layout,
(4) four-bank ganged activations, and (5) aggressive tFAW — which
together constitute the full Newton design.

``result_latches`` covers the Section III-C in-between option (four
result latches per bank, partial input reuse) that the paper evaluates
and rejects; it only applies to the row-major (no-reuse) traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class OptimizationConfig:
    """Which of Newton's interface/layout optimizations are enabled."""

    ganged_compute: bool = True
    """One COMP command drives all banks (16x command-bandwidth saving)."""

    complex_commands: bool = True
    """Buffer-read + column-access + MAC fused into one command (3x)."""

    interleaved_reuse: bool = True
    """Chunk-interleaved DRAM-row-wide layout with column-major tile
    traversal for full input reuse (Figure 3); when disabled, the
    Newton-no-reuse row-major layout is used."""

    four_bank_activation: bool = True
    """G_ACT activates a four-bank cluster per command."""

    aggressive_tfaw: bool = False
    """Use the reduced tFAW enabled by stronger internal voltage
    generators (Section III-D / Figure 6)."""

    result_latches: int = 1
    """Result latches per bank. The full-reuse design needs exactly one;
    the Section III-C partial-reuse variant uses four with the row-major
    traversal."""

    def __post_init__(self) -> None:
        if self.result_latches < 1:
            raise ConfigurationError("at least one result latch per bank is required")
        if self.interleaved_reuse and self.result_latches != 1:
            raise ConfigurationError(
                "the interleaved full-reuse design uses a single result "
                "latch; multiple latches only apply to the row-major variant"
            )

    @property
    def label(self) -> str:
        """Short tag for tables."""
        if self == FULL:
            return "Newton"
        if self == NON_OPT:
            return "Non-opt-Newton"
        flags = [
            "gang" if self.ganged_compute else "",
            "complex" if self.complex_commands else "",
            "reuse" if self.interleaved_reuse else "",
            "4bank" if self.four_bank_activation else "",
            "tfaw" if self.aggressive_tfaw else "",
        ]
        on = "+".join(f for f in flags if f)
        tag = on or "none"
        if self.result_latches != 1:
            tag += f"+latches{self.result_latches}"
        return tag

    def evolve(self, **kwargs) -> "OptimizationConfig":
        """Return a copy with the given flags replaced."""
        return replace(self, **kwargs)


FULL = OptimizationConfig(
    ganged_compute=True,
    complex_commands=True,
    interleaved_reuse=True,
    four_bank_activation=True,
    aggressive_tfaw=True,
)
"""The complete Newton design."""

NON_OPT = OptimizationConfig(
    ganged_compute=False,
    complex_commands=False,
    interleaved_reuse=False,
    four_bank_activation=False,
    aggressive_tfaw=False,
)
"""Non-opt-Newton: same compute and internal bandwidth, none of the
interface/layout optimizations."""


def figure9_ladder() -> List[Tuple[str, OptimizationConfig]]:
    """The progressive configurations of Figure 9, in paper order."""
    steps: List[Tuple[str, OptimizationConfig]] = []
    cfg = NON_OPT
    steps.append(("non-opt", cfg))
    cfg = cfg.evolve(ganged_compute=True)
    steps.append(("+gang", cfg))
    cfg = cfg.evolve(complex_commands=True)
    steps.append(("+complex", cfg))
    cfg = cfg.evolve(interleaved_reuse=True)
    steps.append(("+reuse", cfg))
    cfg = cfg.evolve(four_bank_activation=True)
    steps.append(("+four-bank", cfg))
    cfg = cfg.evolve(aggressive_tfaw=True)
    steps.append(("+tFAW (Newton)", cfg))
    return steps
