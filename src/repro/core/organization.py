"""Adder-tree vs column-major MAC organization (Section III-B).

Newton reduces each bank's 16 lane products through an adder tree into
one output element. The alternative the paper analyzes — a column-major,
element-interleaved layout where each column access carries one element
of 16 *different* matrix rows into 16 independent accumulators — needs
the same multipliers and adders but 16 accumulator latches, and, more
importantly, utilizes its multipliers only when every bank can be given
16 distinct matrix rows.

Quantitatively (the paper's argument):

* column-major idles multipliers whenever
  ``m < lanes x banks x channels`` (thousands of rows on a 24-channel
  system);
* the adder tree idles banks only when ``m < banks x channels``
  (a few hundred).

Since real layers have 512+ matrix rows — more than total banks
(256-384) but not always more than total lanes (4096-6144) — "the
latter approach's unfavorable case is more likely", hence the tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dram.area import AreaModel, AreaReport
from repro.dram.config import DRAMConfig
from repro.errors import ConfigurationError


class MacOrganization(enum.Enum):
    """How each bank's 16 multipliers feed accumulation."""

    ADDER_TREE = "adder-tree"
    COLUMN_MAJOR = "column-major"


@dataclass(frozen=True)
class OrganizationComparison:
    """Utilization and area of both organizations for one matrix height."""

    m: int
    tree_utilization: float
    column_major_utilization: float
    tree_area: AreaReport
    column_major_area: AreaReport

    @property
    def tree_wins(self) -> bool:
        """Tree wins on utilization, or ties with less latch area."""
        if self.tree_utilization != self.column_major_utilization:
            return self.tree_utilization > self.column_major_utilization
        return self.tree_area.compute_area <= self.column_major_area.compute_area


class OrganizationModel:
    """Multiplier-utilization model for both MAC organizations."""

    def __init__(self, config: DRAMConfig):
        self.config = config

    @property
    def total_banks(self) -> int:
        """Banks across all channels (the tree's parallelism grain)."""
        return self.config.banks_per_channel * self.config.num_channels

    @property
    def total_lanes(self) -> int:
        """Multipliers across all channels (column-major's grain)."""
        return self.total_banks * self.config.mults_per_bank

    def utilization(self, m: int, organization: MacOrganization) -> float:
        """Fraction of multipliers doing useful work for an m-row matrix.

        Both organizations process work in waves of their parallelism
        grain; the last (partial) wave idles the remainder.
        """
        if m <= 0:
            raise ConfigurationError("matrix height must be positive")
        grain = (
            self.total_banks
            if organization is MacOrganization.ADDER_TREE
            else self.total_lanes
        )
        waves = -(-m // grain)
        return m / (waves * grain)

    def compare(self, m: int) -> OrganizationComparison:
        """Full comparison for one matrix height."""
        area = AreaModel(self.config)
        return OrganizationComparison(
            m=m,
            tree_utilization=self.utilization(m, MacOrganization.ADDER_TREE),
            column_major_utilization=self.utilization(
                m, MacOrganization.COLUMN_MAJOR
            ),
            tree_area=area.newton(),
            column_major_area=area.column_major(),
        )

    def paper_argument_holds(self, typical_rows: int = 512) -> bool:
        """The Section III-B conclusion for typical layer heights:
        512+ matrix rows saturate the tree's banks but not column-major's
        lanes on an aggressive multi-channel system."""
        tree = self.utilization(typical_rows, MacOrganization.ADDER_TREE)
        cm = self.utilization(typical_rows, MacOrganization.COLUMN_MAJOR)
        return tree >= cm
