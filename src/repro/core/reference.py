"""A per-command reference executor for cross-checking the engine.

The fast engine evaluates whole tiles vectorized. This executor walks
the *same* Step stream but interprets it the way the hardware would —
GWRITE by GWRITE into the global buffer, COMP by COMP through each
bank's :class:`~repro.core.mac_unit.BankMacUnit` (including the
non-complex BUF_READ/COL_READ/MAC micro-sequences), READRES by latch
read — exercising every protocol check (buffer validity, latch bounds)
along the way. Tests pin its outputs bit-identical to the fast engine.

It is deliberately slow; use it for verification, not experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.core.command_gen import CommandStreamGenerator
from repro.core.global_buffer import GlobalBuffer
from repro.core.layout import Layout
from repro.core.mac_unit import BankMacUnit
from repro.core.optimizations import OptimizationConfig
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.storage import BankStorage
from repro.dram.timing import TimingParams
from repro.errors import ProtocolError
from repro.numerics.bfloat16 import bf16_bits_to_float


class ReferenceExecutor:
    """Interprets GEMV command streams one command at a time."""

    def __init__(self, config: DRAMConfig, opt: OptimizationConfig):
        self.config = config
        self.opt = opt
        self.storage = [
            BankStorage(config, b) for b in range(config.banks_per_channel)
        ]
        self.buffer = GlobalBuffer(config)
        self.macs = [
            BankMacUnit(config, num_latches=opt.result_latches)
            for _ in range(config.banks_per_channel)
        ]
        self._open_row: List[Optional[int]] = [None] * config.banks_per_channel
        # Non-complex mode staging: the broadcast sub-chunk and each
        # bank's column latch, filled by BUF_READ / COL_READ, consumed
        # by MAC / MAC_ALL.
        self._broadcast: Optional[np.ndarray] = None
        self._column_latch: Dict[int, np.ndarray] = {}
        self._current_latch = 0

    def load_matrix(self, layout: Layout, matrix: np.ndarray) -> None:
        """Place the matrix exactly as the engine does."""
        for bank, row, bits in layout.place(matrix):
            self.storage[bank].write_row(row, bits)

    # ------------------------------------------------------------------

    def _col_data(self, bank: int, col: int) -> np.ndarray:
        row = self._open_row[bank]
        if row is None:
            raise ProtocolError(f"bank {bank}: column access with no open row")
        return bf16_bits_to_float(self.storage[bank].read_col(row, col))

    def _mac(self, bank: int, matrix_sub: np.ndarray, input_sub: np.ndarray) -> None:
        self.macs[bank].compute(matrix_sub, input_sub, latch=self._current_latch)

    def _execute(self, command: Command, padded_vector: np.ndarray, chunk: int):
        kind = command.kind
        if kind in (CommandKind.ACT,):
            self._open_row[command.bank] = command.row
        elif kind is CommandKind.G_ACT:
            size = self.config.bank_group_size
            for bank in range(command.group * size, (command.group + 1) * size):
                self._open_row[bank] = command.row
        elif kind is CommandKind.GWRITE:
            k = self.config.elems_per_col
            base = chunk * self.config.elems_per_row + command.subchunk * k
            self.buffer.load_subchunk(
                command.subchunk, padded_vector[base : base + k]
            )
        elif kind is CommandKind.COMP:
            sub = self.buffer.read_subchunk(command.subchunk)
            for bank in range(self.config.banks_per_channel):
                self._mac(bank, self._col_data(bank, command.col), sub)
        elif kind is CommandKind.COMP_BANK:
            sub = self.buffer.read_subchunk(command.subchunk)
            self._mac(command.bank, self._col_data(command.bank, command.col), sub)
        elif kind is CommandKind.BUF_READ:
            self._broadcast = self.buffer.read_subchunk(command.subchunk)
        elif kind is CommandKind.COL_READ:
            self._column_latch[command.bank] = self._col_data(
                command.bank, command.col
            )
        elif kind is CommandKind.COL_READ_ALL:
            for bank in range(self.config.banks_per_channel):
                self._column_latch[bank] = self._col_data(bank, command.col)
        elif kind is CommandKind.MAC:
            if self._broadcast is None or command.bank not in self._column_latch:
                raise ProtocolError("MAC before BUF_READ/COL_READ staged operands")
            self._mac(command.bank, self._column_latch[command.bank], self._broadcast)
        elif kind is CommandKind.MAC_ALL:
            if self._broadcast is None:
                raise ProtocolError("MAC_ALL before BUF_READ staged the broadcast")
            for bank in range(self.config.banks_per_channel):
                self._mac(bank, self._column_latch[bank], self._broadcast)
        # PRE/PRE_ALL/REF/RD/WR/READRES* handled by the caller or no-op
        if command.auto_precharge and kind in (
            CommandKind.RD,
            CommandKind.WR,
            CommandKind.COMP,
            CommandKind.COMP_BANK,
            CommandKind.COL_READ,
            CommandKind.COL_READ_ALL,
        ):
            if command.bank is not None:
                self._open_row[command.bank] = None
            else:
                self._open_row = [None] * self.config.banks_per_channel

    def run_gemv(
        self,
        timing: TimingParams,
        layout: Layout,
        vector: np.ndarray,
    ) -> np.ndarray:
        """Interpret the full stream and return the fp32 output vector."""
        generator = CommandStreamGenerator(self.config, timing, self.opt, layout)
        padded = layout.pad_vector(vector)
        output = np.zeros(layout.m, dtype=np.float32)
        chunk = 0
        for step in generator.gemv_steps():
            if step.new_chunk is not None:
                chunk = step.new_chunk
                self.buffer.invalidate()
            if step.command is not None:
                self._current_latch = step.latch
                self._execute(step.command, padded, chunk)
            if step.emit is not None:
                emit = step.emit
                values = np.array(
                    [mac.read_and_clear(emit.latch) for mac in self.macs],
                    dtype=np.float32,
                )
                mask = emit.matrix_rows >= 0
                np.add.at(output, emit.matrix_rows[mask], values[mask])
        return output
