"""Result records returned by the engine and device."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.dram.commands import CommandKind
from repro.dram.controller import ControllerStats


def stats_snapshot(stats: ControllerStats) -> Dict[str, object]:
    """Copy the mutable controller statistics for delta computation."""
    return {
        "command_counts": dict(stats.command_counts),
        "cycle_attribution": dict(stats.cycle_attribution),
        "bank_activations": stats.bank_activations,
        "bank_column_accesses": stats.bank_column_accesses,
        "compute_column_accesses": stats.compute_column_accesses,
        "data_transfers": stats.data_transfers,
        "refreshes": stats.refreshes,
        "refresh_stall_cycles": stats.refresh_stall_cycles,
    }


def stats_delta(before: Dict[str, object], after: Dict[str, object]) -> Dict[str, object]:
    """Difference of two snapshots (per-run accounting)."""
    counts_before: Dict[CommandKind, int] = before["command_counts"]  # type: ignore[assignment]
    counts_after: Dict[CommandKind, int] = after["command_counts"]  # type: ignore[assignment]
    counts = {
        kind: counts_after.get(kind, 0) - counts_before.get(kind, 0)
        for kind in set(counts_before) | set(counts_after)
    }
    attr_before: Dict[str, int] = before["cycle_attribution"]  # type: ignore[assignment]
    attr_after: Dict[str, int] = after["cycle_attribution"]  # type: ignore[assignment]
    attribution = {
        category: attr_after.get(category, 0) - attr_before.get(category, 0)
        for category in set(attr_before) | set(attr_after)
    }
    delta = {
        "command_counts": {k: v for k, v in counts.items() if v},
        "cycle_attribution": {k: v for k, v in attribution.items() if v},
    }
    for key in (
        "bank_activations",
        "bank_column_accesses",
        "compute_column_accesses",
        "data_transfers",
        "refreshes",
        "refresh_stall_cycles",
    ):
        delta[key] = after[key] - before[key]  # type: ignore[operator]
    return delta


@dataclass
class ChannelRunResult:
    """One channel's share of a GEMV run."""

    channel_index: int
    row_slice: "tuple[int, int]"
    start_cycle: int
    end_cycle: int
    stats: Dict[str, object]
    output: Optional[np.ndarray] = None
    """fp32 partial-accumulated outputs for this channel's matrix rows
    (``None`` in timing-only mode)."""

    @property
    def cycles(self) -> int:
        """Busy cycles this run occupied on the channel."""
        return self.end_cycle - self.start_cycle

    def command_count(self, kind: CommandKind) -> int:
        """Commands of ``kind`` issued during this run."""
        return self.stats["command_counts"].get(kind, 0)  # type: ignore[union-attr]


@dataclass
class GemvRunResult:
    """A full device GEMV: all channels in parallel."""

    cycles: int
    """Wall-clock cycles (the slowest channel)."""
    channel_results: List[ChannelRunResult] = field(default_factory=list)
    output: Optional[np.ndarray] = None

    @property
    def total_commands(self) -> int:
        """Commands issued across every channel."""
        return sum(
            sum(r.stats["command_counts"].values())  # type: ignore[union-attr]
            for r in self.channel_results
        )

    def command_count(self, kind: CommandKind) -> int:
        """Commands of ``kind`` across every channel."""
        return sum(r.command_count(kind) for r in self.channel_results)

    @property
    def refresh_stall_cycles(self) -> int:
        """Worst per-channel refresh stall during the run."""
        if not self.channel_results:
            return 0
        return max(r.stats["refresh_stall_cycles"] for r in self.channel_results)  # type: ignore[type-var]
