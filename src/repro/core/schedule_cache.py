"""Tile-schedule memoization: segmented streams and the replay cache.

The engine's command streams decompose into *segments* at refresh
barriers: the prologue (the first chunk's GWRITEs) and then one segment
per tile (activations + computes + result reads, plus the next chunk's
GWRITEs when a chunk boundary falls inside). Within a run the segments
are overwhelmingly identical — the same command kinds against the same
bank/column operands, differing only in the DRAM row they open, which
never affects timing.

:class:`ScheduleCache` keys recorded
:class:`~repro.dram.fastpath.ControllerDelta` segment effects by
``(segment command identity, relative controller signature)``. The
signature check is what makes replay *exact* rather than heuristic: a
hit proves the controller is in the same steady-state phase (same
open-row offsets, bus/FAW/tCCD offsets, adder-tree anchor relative to
the segment's first issue opportunity) the recording started from, so
the recorded schedule is the true schedule shifted rigidly in time.
Refresh breaks phase — the engine executes every barrier exactly, and a
post-refresh state simply forms its own signature (which itself recurs
periodically and becomes cacheable).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.command_gen import CommandStreamGenerator, Step
from repro.dram.fastpath import ControllerDelta, Signature

MAX_DELTA_ENTRIES = 8192
"""Replay-cache size backstop; real workloads use a handful of entries."""


@dataclass(frozen=True)
class StreamSegment:
    """A barrier-delimited run of steps with a row-blind identity key.

    The timing side (``commands``) and the functional side
    (``functional_steps``) are stored separately: the controller and the
    datapath are independent state machines, so a segment's functional
    effects depend only on the order of its payload-carrying steps, not
    on how they interleave with pure command issue. Dropping the ~3x
    ``Step`` wrapper overhead matters for the no-reuse streams, whose
    materialized form runs to hundreds of thousands of steps.
    """

    barrier_cycles: int
    """Refresh-barrier window preceding the steps (0: no barrier)."""
    commands: Tuple  # Tuple[Command, ...]
    key_id: int
    """Engine-interned id of the command-identity key."""
    functional_steps: Tuple[Step, ...]
    """The subset of steps carrying a functional payload, in order."""


@dataclass
class SegmentedStream:
    """One layout's full command stream, lowered and segmented once."""

    segments: List[StreamSegment] = field(default_factory=list)

    @property
    def total_commands(self) -> int:
        return sum(len(s.commands) for s in self.segments)


def _command_key(command) -> tuple:
    """The timing-relevant identity of a command.

    The DRAM row is deliberately excluded: which row an activation opens
    never affects the schedule, and it is the one operand that differs
    tile to tile in an otherwise periodic stream.
    """
    return (
        command.kind,
        command.bank,
        command.group,
        command.col,
        command.subchunk,
        command.auto_precharge,
    )


def _has_payload(step: Step) -> bool:
    return (
        step.new_chunk is not None
        or step.load is not None
        or step.compute is not None
        or step.emit is not None
    )


class ScheduleCache:
    """Interns segment keys and stores recorded segment deltas."""

    def __init__(self, max_entries: int = MAX_DELTA_ENTRIES):
        self._key_ids: Dict[tuple, int] = {}
        self._deltas: Dict[Tuple[int, Signature], ControllerDelta] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.replayed_commands = 0

    def intern_key(self, key: tuple) -> int:
        """Map a segment command-identity key to a small stable id."""
        return self._key_ids.setdefault(key, len(self._key_ids))

    def lookup(
        self, key_id: int, signature: Signature
    ) -> Optional[ControllerDelta]:
        delta = self._deltas.get((key_id, signature))
        if delta is None:
            self.misses += 1
        else:
            self.hits += 1
        return delta

    def store(
        self, key_id: int, signature: Signature, delta: ControllerDelta
    ) -> None:
        if len(self._deltas) >= self.max_entries:
            # Pathological (non-periodic) streams only; a full reset is
            # cheaper and simpler than eviction bookkeeping.
            self._deltas.clear()
        self._deltas[(key_id, signature)] = delta

    def __len__(self) -> int:
        return len(self._deltas)


def segment_stream(
    generator: CommandStreamGenerator, cache: ScheduleCache
) -> SegmentedStream:
    """Lower a generator's step stream into barrier-delimited segments."""
    stream = SegmentedStream()
    barrier = 0
    commands: List = []
    functional: List[Step] = []

    def flush() -> None:
        nonlocal barrier
        if commands or functional or barrier:
            key = tuple(_command_key(c) for c in commands)
            stream.segments.append(
                StreamSegment(
                    barrier_cycles=barrier,
                    commands=tuple(commands),
                    key_id=cache.intern_key(key),
                    functional_steps=tuple(functional),
                )
            )
        barrier = 0
        commands.clear()
        functional.clear()

    for step in generator.gemv_steps():
        if step.barrier_cycles:
            flush()
            barrier = step.barrier_cycles
            continue
        if step.command is not None:
            commands.append(step.command)
        if _has_payload(step):
            functional.append(step)
    flush()
    return stream


class StreamCache:
    """Per-layout memo of segmented streams (LRU, identity-keyed).

    Lowering Algorithm 1 costs as much as several tiles of simulation;
    ``gemm``, ``gemv_batch``, and the serving study re-run the same
    layout hundreds of times, so the step list is materialized once per
    (layout, engine) and reused. The key is the layout *object*: layouts
    are immutable after construction and one engine only ever sees the
    layouts its own ``add_matrix`` produced.
    """

    def __init__(self, max_entries: int = 16):
        self._streams: "OrderedDict[object, SegmentedStream]" = OrderedDict()
        self.max_entries = max_entries

    def get(self, layout: object) -> Optional[SegmentedStream]:
        stream = self._streams.get(layout)
        if stream is not None:
            self._streams.move_to_end(layout)
        return stream

    def put(self, layout: object, stream: SegmentedStream) -> None:
        self._streams[layout] = stream
        self._streams.move_to_end(layout)
        while len(self._streams) > self.max_entries:
            self._streams.popitem(last=False)

    def __len__(self) -> int:
        return len(self._streams)
