"""Tile-schedule memoization: segmented streams and the replay cache.

The engine's command streams decompose into *segments* at refresh
barriers: the prologue (the first chunk's GWRITEs) and then one segment
per tile (activations + computes + result reads, plus the next chunk's
GWRITEs when a chunk boundary falls inside). Within a run the segments
are overwhelmingly identical — the same command kinds against the same
bank/column operands, differing only in the DRAM row they open, which
never affects timing.

:class:`ScheduleCache` keys recorded
:class:`~repro.dram.fastpath.ControllerDelta` segment effects by
``(segment command identity, relative controller signature)``. The
signature check is what makes replay *exact* rather than heuristic: a
hit proves the controller is in the same steady-state phase (same
open-row offsets, bus/FAW/tCCD offsets, adder-tree anchor relative to
the segment's first issue opportunity) the recording started from, so
the recorded schedule is the true schedule shifted rigidly in time.
Refresh breaks phase — the engine executes every barrier exactly, and a
post-refresh state simply forms its own signature (which itself recurs
periodically and becomes cacheable).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.command_gen import CommandStreamGenerator, RunStep, Step
from repro.dram.commands import CommandKind, CommandRun
from repro.dram.fastpath import ControllerDelta, Signature

MAX_DELTA_ENTRIES = 8192
"""Replay-cache size backstop; real workloads use a handful of entries."""


@dataclass
class StreamSegment:
    """A barrier-delimited run of stream items with a row-blind key.

    The timing side (``items``) and the functional side
    (``functional_steps``) are stored separately: the controller and the
    datapath are independent state machines, so a segment's functional
    effects depend only on the order of its payload-carrying steps, not
    on how they interleave with pure command issue. Dropping the ~3x
    ``Step`` wrapper overhead matters for the no-reuse streams, whose
    materialized form runs to hundreds of thousands of steps.

    ``items`` is the compiled form the cold path executes: individual
    :class:`~repro.dram.commands.Command` objects interleaved with
    :class:`~repro.dram.commands.CommandRun` homogeneous runs (a tile's
    COMP burst arrives as *one* item). Barriers never fall inside a run:
    the segmenter flushes at every barrier step, so a refresh splits
    runs exactly where it splits replay segments. The per-command view
    (:attr:`commands`) is materialized lazily for the consumers that
    need it — the slow reference path, tracing, background traffic.
    """

    barrier_cycles: int
    """Refresh-barrier window preceding the steps (0: no barrier)."""
    items: Tuple  # Tuple[Command | CommandRun, ...]
    n_commands: int
    """Commands the segment expands to (``len(self.commands)``)."""
    key_id: int
    """Engine-interned id of the command-identity key."""
    functional_steps: Tuple[Step, ...]
    """The subset of steps carrying a functional payload, in order."""
    _commands: Optional[Tuple] = None

    @property
    def commands(self) -> Tuple:
        """The segment as per-command objects (lazily materialized)."""
        if self._commands is None:
            flat: List = []
            for item in self.items:
                if isinstance(item, CommandRun):
                    flat.extend(item.commands())
                else:
                    flat.append(item)
            self._commands = tuple(flat)
        return self._commands


@dataclass
class SegmentedStream:
    """One layout's full command stream, lowered and segmented once."""

    segments: List[StreamSegment] = field(default_factory=list)
    skipped_gwrites: int = 0
    """GWRITE commands elided from a fused lowering (0 for the ordinary
    round-trip stream). The functional buffer loads are kept — a fused
    design fills the global buffer from the result latches / activation
    buffer instead of the host, so the data still arrives, just not over
    the command bus (see :func:`segment_stream`)."""

    @property
    def total_commands(self) -> int:
        return sum(s.n_commands for s in self.segments)


def _command_key(command) -> tuple:
    """The timing-relevant identity of a command.

    The DRAM row is deliberately excluded: which row an activation opens
    never affects the schedule, and it is the one operand that differs
    tile to tile in an otherwise periodic stream.
    """
    return (
        command.kind,
        command.bank,
        command.group,
        command.col,
        command.subchunk,
        command.auto_precharge,
    )


def _item_key(item) -> tuple:
    """The timing-relevant identity of a stream item.

    A :class:`~repro.dram.commands.CommandRun` keys as its whole run
    identity (kind, bank scope, operand arrays, trailing AP) — runnable
    kinds never carry a row, so the key stays row-blind by construction
    and a compiled segment gets the same replay hit rate as its expanded
    per-command form.
    """
    if isinstance(item, CommandRun):
        return ("run",) + item.timing_key
    return _command_key(item)


def _has_payload(step: Step) -> bool:
    return (
        step.new_chunk is not None
        or step.load is not None
        or step.load_run is not None
        or step.compute is not None
        or step.emit is not None
    )


class ScheduleCache:
    """Interns segment keys and stores recorded segment deltas."""

    def __init__(self, max_entries: int = MAX_DELTA_ENTRIES):
        self._key_ids: Dict[tuple, int] = {}
        self._deltas: Dict[Tuple[int, Signature], ControllerDelta] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.replayed_commands = 0

    def intern_key(self, key: tuple) -> int:
        """Map a segment command-identity key to a small stable id."""
        return self._key_ids.setdefault(key, len(self._key_ids))

    def lookup(
        self, key_id: int, signature: Signature
    ) -> Optional[ControllerDelta]:
        delta = self._deltas.get((key_id, signature))
        if delta is None:
            self.misses += 1
        else:
            self.hits += 1
        return delta

    def store(
        self, key_id: int, signature: Signature, delta: ControllerDelta
    ) -> None:
        if len(self._deltas) >= self.max_entries:
            # Pathological (non-periodic) streams only; a full reset is
            # cheaper and simpler than eviction bookkeeping.
            self._deltas.clear()
        self._deltas[(key_id, signature)] = delta

    def __len__(self) -> int:
        return len(self._deltas)


def segment_stream(
    generator: CommandStreamGenerator,
    cache: ScheduleCache,
    *,
    fused: bool = False,
) -> SegmentedStream:
    """Lower a generator's compiled stream into barrier-delimited segments.

    Consumes :meth:`~repro.core.command_gen.CommandStreamGenerator.gemv_items`
    so homogeneous runs survive lowering as single
    :class:`~repro.dram.commands.CommandRun` items; their functional
    payloads (loads, the tile compute) are re-attached as skeleton steps
    in issue order. A barrier always flushes the open segment, so no run
    ever straddles a refresh decision point.

    With ``fused=True`` the lowering models a fused-layer dataflow: the
    input activation is already channel-resident (produced by the
    previous layer, or still held from a sibling layer's load), so the
    host's GWRITE runs are dropped from the *timing* side while their
    buffer-fill payloads stay on the *functional* side — outputs are
    bit-identical to the round-trip stream by construction, only the
    command-bus occupancy changes. The elided command count is recorded
    on the stream (:attr:`SegmentedStream.skipped_gwrites`). Fused
    segments intern under their own (GWRITE-less) keys, so the replay
    cache never conflates the two schedules.
    """
    stream = SegmentedStream()
    barrier = 0
    items: List = []
    n_commands = 0
    functional: List[Step] = []

    def flush() -> None:
        nonlocal barrier, n_commands
        if items or functional or barrier:
            key = tuple(_item_key(i) for i in items)
            stream.segments.append(
                StreamSegment(
                    barrier_cycles=barrier,
                    items=tuple(items),
                    n_commands=n_commands,
                    key_id=cache.intern_key(key),
                    functional_steps=tuple(functional),
                )
            )
        barrier = 0
        n_commands = 0
        items.clear()
        functional.clear()

    for item in generator.gemv_items():
        if isinstance(item, RunStep):
            if fused and item.run.kind is CommandKind.GWRITE:
                # Fused: the buffer fill happens off the command bus.
                stream.skipped_gwrites += item.run.count
                functional.extend(item.payload_steps())
                continue
            items.append(item.run)
            n_commands += item.run.count
            functional.extend(item.payload_steps())
            continue
        if item.barrier_cycles:
            flush()
            barrier = item.barrier_cycles
            continue
        if item.command is not None:
            if fused and item.command.kind is CommandKind.GWRITE:
                stream.skipped_gwrites += 1
            else:
                items.append(item.command)
                n_commands += 1
        if _has_payload(item):
            functional.append(item)
    flush()
    return stream


class StreamCache:
    """Per-layout memo of segmented streams (LRU, identity-keyed).

    Lowering Algorithm 1 costs as much as several tiles of simulation;
    ``gemm``, ``gemv_batch``, and the serving study re-run the same
    layout hundreds of times, so the step list is materialized once per
    (layout, engine) and reused. The key is the layout *object*: layouts
    are immutable after construction and one engine only ever sees the
    layouts its own ``add_matrix`` produced.
    """

    def __init__(self, max_entries: int = 16):
        self._streams: "OrderedDict[object, SegmentedStream]" = OrderedDict()
        self.max_entries = max_entries

    def get(self, layout: object) -> Optional[SegmentedStream]:
        stream = self._streams.get(layout)
        if stream is not None:
            self._streams.move_to_end(layout)
        return stream

    def put(self, layout: object, stream: SegmentedStream) -> None:
        self._streams[layout] = stream
        self._streams.move_to_end(layout)
        while len(self._streams) > self.max_entries:
            self._streams.popitem(last=False)

    def __len__(self) -> int:
        return len(self._streams)
