"""ECC scrubbing by periodic matrix reload (Section III-E).

DRAM ECC is computed and checked by the *memory controller*, but AiM
computation happens inside the DRAM, where the long-resident matrix can
silently collect transient errors. The paper's remedy: "re-loading the
matrix, and thereby discarding any errors, from a non-AiM copy every so
often for a small bandwidth overhead (e.g., once per 1000 inputs)". The
input and output vectors cross the (checked) interface on every
inference, so only the matrix needs scrubbing.

This module quantifies that policy: the bandwidth/time overhead of the
reload amortized over the scrub interval, and a fault-injection check
that a reload really does clear injected bit flips.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.device import MatrixHandle, NewtonDevice
from repro.errors import ConfigurationError, ProtocolError


@dataclass(frozen=True)
class ScrubPolicy:
    """Reload the matrix from its non-AiM copy every N inputs."""

    inputs_per_scrub: int = 1000

    def __post_init__(self) -> None:
        if self.inputs_per_scrub <= 0:
            raise ConfigurationError("inputs_per_scrub must be positive")

    def reload_cycles(
        self, matrix_bytes: int, bytes_per_cycle: float
    ) -> float:
        """Cycles to stream the matrix back in over the external bus."""
        if matrix_bytes <= 0 or bytes_per_cycle <= 0:
            raise ConfigurationError("matrix size and bandwidth must be positive")
        return matrix_bytes / bytes_per_cycle

    def overhead_fraction(
        self, matrix_bytes: int, bytes_per_cycle: float, inference_cycles: float
    ) -> float:
        """Scrub time as a fraction of useful inference time.

        This is the paper's "small bandwidth overhead": a reload per
        ``inputs_per_scrub`` inferences.
        """
        if inference_cycles <= 0:
            raise ConfigurationError("inference_cycles must be positive")
        reload = self.reload_cycles(matrix_bytes, bytes_per_cycle)
        return reload / (self.inputs_per_scrub * inference_cycles)


class MatrixScrubber:
    """Fault injection + reload against a functional Newton device."""

    def __init__(self, device: NewtonDevice, handle: MatrixHandle, matrix: np.ndarray):
        if not device.functional:
            raise ProtocolError("scrubbing needs a functional device")
        self.device = device
        self.handle = handle
        self.golden = np.asarray(matrix, dtype=np.float32).copy()
        self.flips_injected = 0

    def inject_faults(self, count: int, seed: int = 0) -> None:
        """Flip ``count`` random bits in resident matrix rows."""
        if count <= 0:
            raise ConfigurationError("inject at least one fault")
        rng = np.random.default_rng(seed)
        for _ in range(count):
            channel, (lo, hi), layout = self.handle.placements[
                rng.integers(len(self.handle.placements))
            ]
            storage = self.device.engines[channel].channel.storage
            bank = int(rng.integers(self.device.config.banks_per_channel))
            row = layout.base_row + int(rng.integers(layout.rows_per_bank_used))
            elem = int(rng.integers(self.device.config.elems_per_row))
            bit = np.uint16(1 << int(rng.integers(16)))
            arr = storage[bank].row_array(row)
            arr[elem] ^= bit
            self.flips_injected += 1

    def scrub(self) -> None:
        """Reload the matrix from the golden (non-AiM, ECC-protected) copy."""
        for channel, (lo, hi), layout in self.handle.placements:
            storage = self.device.engines[channel].channel.storage
            for bank, row, bits in layout.place(self.golden[lo:hi]):
                storage[bank].write_row(row, bits)

    def residency_matches_golden(self) -> bool:
        """Bit-compare the resident matrix against the golden copy."""
        for channel, (lo, hi), layout in self.handle.placements:
            storage = self.device.engines[channel].channel.storage
            for bank, row, bits in layout.place(self.golden[lo:hi]):
                resident = storage[bank].row_array(row)
                expected = np.zeros_like(resident)
                expected[: bits.shape[0]] = bits
                # place() emits whole rows, so compare whole rows.
                if not np.array_equal(resident, expected):
                    return False
        return True
