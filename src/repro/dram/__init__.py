"""Cycle-accurate (command-level) DRAM substrate.

This package is the reproduction's stand-in for the paper's DRAMSim2-based
simulator: a from-scratch, constraint-based DRAM timing engine. Rather
than ticking every cycle, the controller computes each command's earliest
legal issue cycle as the maximum over its timing constraints (command-bus
occupancy, bank state, tRRD/tFAW windows, data-bus occupancy, refresh),
which is exact for single-master command streams and fast enough to run
hundreds of thousands of commands in pure Python.
"""

from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.dram.controller import ChannelController, IssueRecord
from repro.dram.channel import Channel
from repro.dram.power import PowerModel, PowerReport
from repro.dram.trace import CommandTrace
from repro.dram.area import AreaModel, AreaParams, AreaReport, AREA_BUDGET_FRACTION
from repro.dram.families import FAMILIES, FamilyPreset, family_by_name
from repro.dram.ticksim import TickSimulator
from repro.dram.encoding import COMMAND_WORD_BITS, decode, encode

__all__ = [
    "Command",
    "CommandKind",
    "DRAMConfig",
    "hbm2e_like_config",
    "TimingParams",
    "hbm2e_like_timing",
    "ChannelController",
    "IssueRecord",
    "Channel",
    "PowerModel",
    "PowerReport",
    "CommandTrace",
    "AreaModel",
    "AreaParams",
    "AreaReport",
    "AREA_BUDGET_FRACTION",
    "FAMILIES",
    "FamilyPreset",
    "family_by_name",
    "TickSimulator",
    "encode",
    "decode",
    "COMMAND_WORD_BITS",
]
