"""Physical address coordinates and mapping helpers.

Newton commands address (channel, bank, row, column) directly — "the
Newton commands are based on physical addresses as are conventional DRAM
commands" — and the matrix layout expects physical contiguity (the paper
allocates it with superpages). This module provides the coordinate type
and a linear <-> coordinate mapping with bank-interleaved ordering, which
the layouts and tests use to reason about placement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.errors import LayoutError


@dataclass(frozen=True, order=True)
class DramCoord:
    """A (channel, bank, row, col) physical coordinate."""

    channel: int
    bank: int
    row: int
    col: int


def validate_coord(config: DRAMConfig, coord: DramCoord) -> None:
    """Raise :class:`LayoutError` if ``coord`` is outside the device."""
    if not 0 <= coord.channel < config.num_channels:
        raise LayoutError(f"channel {coord.channel} outside [0, {config.num_channels})")
    if not 0 <= coord.bank < config.banks_per_channel:
        raise LayoutError(f"bank {coord.bank} outside [0, {config.banks_per_channel})")
    if not 0 <= coord.row < config.rows_per_bank:
        raise LayoutError(f"row {coord.row} outside [0, {config.rows_per_bank})")
    if not 0 <= coord.col < config.cols_per_row:
        raise LayoutError(f"col {coord.col} outside [0, {config.cols_per_row})")


def linear_to_coord(config: DRAMConfig, index: int) -> DramCoord:
    """Map a linear column-I/O index to a coordinate.

    Ordering is bank-interleaved within a channel at DRAM-row granularity
    (row r of bank 0, row r of bank 1, ...), matching the Figure 3 layout's
    walk over the device.
    """
    cols = config.cols_per_row
    banks = config.banks_per_channel
    rows = config.rows_per_bank
    per_channel = banks * rows * cols
    if index < 0 or index >= per_channel * config.num_channels:
        raise LayoutError(f"linear index {index} outside the device")
    channel, rem = divmod(index, per_channel)
    row_group, rem = divmod(rem, banks * cols)
    bank, col = divmod(rem, cols)
    return DramCoord(channel=channel, bank=bank, row=row_group, col=col)


def coord_to_linear(config: DRAMConfig, coord: DramCoord) -> int:
    """Inverse of :func:`linear_to_coord`."""
    validate_coord(config, coord)
    cols = config.cols_per_row
    banks = config.banks_per_channel
    per_channel = banks * config.rows_per_bank * cols
    return (
        coord.channel * per_channel
        + coord.row * banks * cols
        + coord.bank * cols
        + coord.col
    )
