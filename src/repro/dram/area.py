"""Area budget model (Section I / III-B).

The paper's feasibility argument is an *area* argument: digital PIM is
only buildable if the compute stays within a severe die-area budget
("no more than 25% area overhead"; "even such minimal hardware incurs
around 20% area penalty"), which is why Newton carries only MACs,
buffers, and latches — and why previous full-core PIM proposals were
never built.

This model charges each structure in DRAM-process gate-equivalents and
expresses the total as a fraction of the bank array area, reproducing
the paper's two quantitative claims:

* Newton's minimal datapath lands around ~20%, inside the 25% cap;
* a full in-order core per bank (the prior-work design point) blows
  far past it.

The adder-tree vs column-major comparison (Section III-B) also comes
down to latches: both need 16 multipliers and 16 adders, but the
column-major organization needs 16 accumulator latches per bank where
the tree needs one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.errors import ConfigurationError

AREA_BUDGET_FRACTION = 0.25
"""The paper's ceiling: 'no more than 25% area overhead'."""


@dataclass(frozen=True)
class AreaParams:
    """Gate-equivalent costs in DRAM-process units.

    The absolute unit is arbitrary (areas are reported as fractions of
    the bank array); the *ratios* follow standard synthesis counts: a
    bfloat16 multiplier ~ 6x a bfloat16 adder ~ 40x a 16-bit latch.
    """

    bank_array_units: float = 10_000.0
    """One bank's memory array + sense amps, the normalization basis."""

    multiplier_units: float = 100.0
    """One bfloat16 multiplier (DRAM-process transistors)."""

    adder_units: float = 16.0
    """One bfloat16 adder."""

    latch16_units: float = 2.5
    """One 16-bit latch."""

    lut_units: float = 160.0
    """The per-channel activation lookup table (no-reuse variant only)."""

    global_buffer_per_bit: float = 0.012
    """Per-bit cost of the channel-shared global buffer (SRAM-ish)."""

    full_core_units: float = 25_000.0
    """A minimal in-order core + caches per bank — the prior-work
    design point Newton exists to avoid."""

    voltage_generator_units: float = 800.0
    """Per-channel LDO regulator + DC-DC pump upgrade enabling the
    aggressive tFAW (Figure 6: 'improving tFAW comes with the cost of
    higher die area' — justified by Newton's higher price point)."""

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigurationError(f"area parameter {name} must be positive")


@dataclass(frozen=True)
class AreaReport:
    """Per-channel area accounting."""

    bank_array_area: float
    multiplier_area: float
    adder_area: float
    latch_area: float
    buffer_area: float
    lut_area: float
    voltage_generator_area: float = 0.0

    @property
    def compute_area(self) -> float:
        """Everything Newton adds to the channel."""
        return (
            self.multiplier_area
            + self.adder_area
            + self.latch_area
            + self.buffer_area
            + self.lut_area
            + self.voltage_generator_area
        )

    @property
    def overhead_fraction(self) -> float:
        """Added area over the bank-array area (the paper's metric)."""
        return self.compute_area / self.bank_array_area

    @property
    def within_budget(self) -> bool:
        """Does the design fit the 25% ceiling?"""
        return self.overhead_fraction <= AREA_BUDGET_FRACTION


class AreaModel:
    """Area accounting for Newton datapath variants."""

    def __init__(self, config: DRAMConfig, params: AreaParams = AreaParams()):
        self.config = config
        self.params = params

    def _datapath(
        self,
        latches_per_bank: int,
        column_major: bool,
        with_lut: bool,
        aggressive_tfaw: bool = True,
    ) -> AreaReport:
        p = self.params
        banks = self.config.banks_per_channel
        lanes = self.config.mults_per_bank
        # Both organizations need `lanes` multipliers and `lanes` adders
        # per bank (a 16-to-1 tree is 15 adders + 1 accumulate; column
        # major is 16 independent accumulating adders) — Section III-B.
        multiplier_area = banks * lanes * p.multiplier_units
        adder_area = banks * lanes * p.adder_units
        latch_count = lanes if column_major else latches_per_bank
        latch_area = banks * latch_count * p.latch16_units
        buffer_area = self.config.elems_per_row * 16 * p.global_buffer_per_bit
        lut_area = p.lut_units if with_lut else 0.0
        return AreaReport(
            bank_array_area=banks * p.bank_array_units,
            multiplier_area=multiplier_area,
            adder_area=adder_area,
            latch_area=latch_area,
            buffer_area=buffer_area,
            lut_area=lut_area,
            voltage_generator_area=(
                p.voltage_generator_units if aggressive_tfaw else 0.0
            ),
        )

    def newton(
        self,
        latches_per_bank: int = 1,
        with_lut: bool = False,
        aggressive_tfaw: bool = True,
    ) -> AreaReport:
        """The adder-tree Newton datapath (the shipped design).

        ``aggressive_tfaw`` charges the strengthened voltage generators
        of Figure 6; disabling it models a standard-tFAW Newton.
        """
        if latches_per_bank < 1:
            raise ConfigurationError("at least one result latch per bank")
        return self._datapath(
            latches_per_bank,
            column_major=False,
            with_lut=with_lut,
            aggressive_tfaw=aggressive_tfaw,
        )

    def column_major(self) -> AreaReport:
        """The Section III-B alternative: 16 accumulator latches per bank."""
        return self._datapath(1, column_major=True, with_lut=False)

    def full_core_pim(self) -> AreaReport:
        """Prior-work PIM: a full core per bank (for the infeasibility
        comparison; buffers/LUT omitted — the cores alone blow the budget)."""
        p = self.params
        banks = self.config.banks_per_channel
        return AreaReport(
            bank_array_area=banks * p.bank_array_units,
            multiplier_area=banks * p.full_core_units,
            adder_area=0.0,
            latch_area=0.0,
            buffer_area=0.0,
            lut_area=0.0,
        )
