"""Per-bank state machine and timing bookkeeping.

A bank is either closed or holds one open row in its bit-line sense
amplifiers (Newton has no double buffering: "DRAM rows are not
double-buffered causing the last row activation latency to be exposed").
The bank records the earliest cycles at which the next ACT, column
access, and PRE become legal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TimingViolationError

NEG_INF = -(10**18)


@dataclass
class BankState:
    """Timing state of a single DRAM bank."""

    index: int
    open_row: Optional[int] = None
    ready_for_act: int = 0
    """Earliest cycle an ACT may issue (precharge / refresh complete)."""
    column_ready: int = 0
    """Earliest cycle a column access may issue (ACT + tRCD)."""
    precharge_ready: int = 0
    """Earliest cycle a PRE may issue (ACT + tRAS, write recovery)."""
    last_column_issue: int = field(default=NEG_INF)
    """Issue cycle of the most recent column access on this bank."""
    activations: int = 0
    column_accesses: int = 0

    @property
    def is_open(self) -> bool:
        """True when a row is latched in the sense amplifiers."""
        return self.open_row is not None

    def do_activate(self, row: int, at: int, t_rcd: int, t_ras: int) -> None:
        """Apply the effects of an ACT issued at cycle ``at``."""
        if self.is_open:
            raise TimingViolationError(
                f"bank {self.index}: ACT while row {self.open_row} is open "
                "(a precharge must close it first; rows are not double-buffered)"
            )
        if at < self.ready_for_act:
            raise TimingViolationError(
                f"bank {self.index}: ACT at {at} before ready_for_act={self.ready_for_act}"
            )
        self.open_row = row
        self.column_ready = at + t_rcd
        self.precharge_ready = at + t_ras
        self.activations += 1

    def do_column(self, at: int, write_recovery: int = 0) -> None:
        """Apply the effects of a column access issued at cycle ``at``."""
        if not self.is_open:
            raise TimingViolationError(
                f"bank {self.index}: column access with no open row"
            )
        if at < self.column_ready:
            raise TimingViolationError(
                f"bank {self.index}: column access at {at} before tRCD "
                f"satisfied at {self.column_ready}"
            )
        self.last_column_issue = at
        # A write pushes out the earliest precharge by the write recovery.
        if write_recovery:
            self.precharge_ready = max(self.precharge_ready, at + write_recovery)
        self.column_accesses += 1

    def do_precharge(self, at: int, t_rp: int) -> None:
        """Apply the effects of a PRE issued at cycle ``at``."""
        if at < self.precharge_ready:
            raise TimingViolationError(
                f"bank {self.index}: PRE at {at} before tRAS satisfied "
                f"at {self.precharge_ready}"
            )
        self.open_row = None
        self.ready_for_act = at + t_rp

    def do_refresh_done(self, at_done: int) -> None:
        """Close the bank and block it until the refresh completes."""
        self.open_row = None
        self.ready_for_act = at_done
        self.column_ready = at_done
        self.precharge_ready = at_done
