"""The cold-path burst timing kernel: solve a homogeneous run in O(1).

The steady-state fast path (:mod:`repro.dram.fastpath`) exploits the
periodicity of Newton's streams *across* tiles; this module exploits the
same regularity *within* one: inside a tile, the COMP sequence is
homogeneous — every command is the same class against the same banks,
every issue cycle is a max over a fixed set of state fields plus timing
constants, and every state update adds a constant. After the first
command of such a run is placed, the remaining issue cycles satisfy the
one-step recurrence

    at[i] = max(at[i-1] + t_cmd,  at[i-1] + t_ccd)  =  at[i-1] + stride

with ``stride = max(t_cmd, t_ccd)``, because the run's only live
constraints are the command bus (``t_cmd`` after the previous command)
and the per-bank column cadence (``t_ccd`` after the previous column
access; for GWRITE, the data-bus slot, which frees exactly ``t_ccd``
after the previous slot began). Every other constraint — bank
``column_ready``, the activation window, the adder-tree anchor — was
already satisfied at ``at[0]`` and never moves during the run. So the
whole burst is an arithmetic progression that can be applied to the
controller in one step instead of ``count`` solver iterations, with the
per-command issue cycles still available on demand.

The binding-constraint attribution survives the same argument: for every
tail command the argmax of the candidate set is the column cadence (or
the data-bus slot, for GWRITE) unless the command bus pushes the issue
strictly later — i.e. unless ``t_cmd > t_ccd`` — so the whole tail
charges ``stride`` cycles per command to one statically known bucket,
and the run's attribution still sums exactly to the finalized end cycle
(the telemetry invariant of :mod:`repro.telemetry`).

Exactness is pinned differentially: the per-command constraint solver
stays in the codebase as the reference, and the suites in
``tests/dram/test_burst.py`` / ``tests/core/test_fastpath_differential.py``
hold the two bit-identical (issue cycles, end state, every statistic,
full cycle attribution) across all optimization combinations with
refresh on and off.

Refresh never lands inside a burst on a well-formed stream — Newton's
barrier rule (Section III-E) protects whole row operations — and the
stream compiler (:func:`repro.core.schedule_cache.segment_stream`)
guarantees it structurally by splitting runs at every barrier, exactly
as it splits replay segments for the fast path.

The functional side mirrors this shape: a compiled run's payloads
(:meth:`repro.core.command_gen.RunStep.payload_steps`) compact a GWRITE
run to a single ``load_run`` buffer load, and the batched datapath tier
(:mod:`repro.core.datapath`) evaluates a whole buffer-group of COMP
runs as one :func:`repro.numerics.vectorized.batched_tile_compute`
call — so in both domains a homogeneous command run costs one kernel
application, not ``count`` interpreter iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.dram.commands import CommandKind, CommandRun

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.controller import ChannelController

BURST_KINDS = frozenset(
    {CommandKind.COMP, CommandKind.COMP_BANK, CommandKind.GWRITE}
)
"""Run kinds whose tail satisfies the affine recurrence above."""


@dataclass(frozen=True)
class BurstRecord:
    """Outcome of issuing one command run.

    The analogue of :class:`~repro.dram.controller.IssueRecord` for a
    whole run: the first/last issue cycles, the stride between them, and
    the latest completion cycle. Per-command issue cycles are derived on
    demand by :meth:`issue_cycles` — O(1) storage either way.
    """

    kind: CommandKind
    count: int
    first_issue: int
    stride: int
    last_issue: int
    complete: int
    """Latest completion cycle across the run (the last command's)."""
    _cycles: Optional[Tuple[int, ...]] = None
    """Explicit issue cycles when the run was issued per-command (the
    fallback path); ``None`` when the closed form applies."""

    def issue_cycles(self) -> np.ndarray:
        """Every command's issue cycle, materialized on demand."""
        if self._cycles is not None:
            return np.asarray(self._cycles, dtype=np.int64)
        return self.first_issue + self.stride * np.arange(
            self.count, dtype=np.int64
        )


def _fallback(controller: "ChannelController", run: CommandRun) -> BurstRecord:
    """Issue the run per-command (trace attached, or a non-affine kind)."""
    cycles = []
    complete = 0
    for command in run.commands():
        record = controller.issue(command)
        cycles.append(record.issue)
        complete = max(complete, record.complete)
    stride = cycles[1] - cycles[0] if len(cycles) > 1 else 0
    return BurstRecord(
        kind=run.kind,
        count=run.count,
        first_issue=cycles[0],
        stride=stride,
        last_issue=cycles[-1],
        complete=complete,
        _cycles=tuple(cycles),
    )


def issue_burst(controller: "ChannelController", run: CommandRun) -> BurstRecord:
    """Issue a homogeneous run at its exact per-command schedule, fast.

    The first command goes through the ordinary constraint solver (it
    faces the run's arbitrary entry state: bank readiness after the
    activation phase, bus phases, the previous tile's cadence); the tail
    is applied in closed form. Falls back to per-command issue when a
    trace recorder needs individual records or the kind is not burstable,
    so the call is always safe.
    """
    if (
        controller.trace is not None
        or run.kind not in BURST_KINDS
        or run.count < 2
    ):
        return _fallback(controller, run)

    from repro.dram.controller import (
        ATTR_CMD_BUS,
        ATTR_COLUMN,
        ATTR_DATA_BUS,
    )

    timing = controller.timing
    first_record = controller.issue(run.first_command())
    first = first_record.issue
    tail = run.count - 1
    stride = max(timing.t_cmd, timing.t_ccd)
    last = first + tail * stride

    # Shared command bus: one slot per tail command, t_cmd busy each.
    controller.cmd_bus.fastforward(
        last + timing.t_cmd, tail, tail * timing.t_cmd
    )
    counts = controller.stats.command_counts
    counts[run.kind] = counts.get(run.kind, 0) + tail

    if run.kind is CommandKind.GWRITE:
        # Each GWRITE occupies a data-I/O slot t_aa after issue; no bank.
        controller.data_bus.fastforward(
            last + timing.t_aa + timing.t_ccd, tail, tail * timing.t_ccd
        )
        controller.stats.data_transfers += tail
        banks = ()
        bucket = ATTR_CMD_BUS if timing.t_cmd > timing.t_ccd else ATTR_DATA_BUS
        complete = last + timing.t_aa + timing.t_ccd
    else:
        banks = (
            controller.banks
            if run.kind is CommandKind.COMP
            else (controller._bank(run.bank),)
        )
        for bank in banks:
            bank.last_column_issue = last
            bank.column_accesses += tail
        controller.stats.bank_column_accesses += tail * len(banks)
        controller.stats.compute_column_accesses += tail * len(banks)
        controller._last_tree_feed = last
        bucket = ATTR_CMD_BUS if timing.t_cmd > timing.t_ccd else ATTR_COLUMN
        complete = last + timing.t_ccd

    controller.now = last
    if controller.telemetry:
        controller._charge(bucket, last)
    if run.auto_precharge_last and banks:
        for bank in banks:
            controller._auto_precharge(bank, last)

    return BurstRecord(
        kind=run.kind,
        count=run.count,
        first_issue=first,
        stride=stride,
        last_issue=last,
        complete=max(first_record.complete, complete),
    )
