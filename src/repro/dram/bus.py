"""Shared command bus and shared data bus occupancy models.

The command bus serializes *all* commands to a channel with an
inter-command delay of ``t_cmd`` cycles; it is the critical resource the
paper's ganged and complex commands conserve ("the compute-memory command
bandwidth remains constrained"). The data bus serializes transfers that
actually cross the channel's global I/O (RD, WR, GWRITE, READRES) —
Newton's in-bank compute deliberately never touches it.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class BusTimer:
    """Occupancy timer for a serialized bus resource."""

    def __init__(self, slot_cycles: int, name: str = "bus"):
        if slot_cycles <= 0:
            raise ConfigurationError(f"{name} slot width must be positive")
        self.slot_cycles = slot_cycles
        self.name = name
        self._next_free = 0
        self.slots_used = 0
        self.busy_cycles = 0

    @property
    def next_free(self) -> int:
        """Earliest cycle the bus can accept another slot."""
        return self._next_free

    def earliest(self, not_before: int = 0) -> int:
        """Earliest cycle a slot starting at or after ``not_before`` may begin."""
        return max(self._next_free, not_before)

    def occupy(self, at: int, cycles: int = 0) -> int:
        """Occupy the bus starting at ``at`` for ``cycles`` (default slot width).

        Returns the cycle at which the bus frees again.
        """
        width = cycles if cycles > 0 else self.slot_cycles
        if at < self._next_free:
            raise ConfigurationError(
                f"{self.name}: slot at {at} overlaps previous occupancy ending "
                f"at {self._next_free}"
            )
        self._next_free = at + width
        self.slots_used += 1
        self.busy_cycles += width
        return self._next_free

    def advance_to(self, cycle: int) -> None:
        """Fast-forward the bus's free time (used across refresh stalls)."""
        self._next_free = max(self._next_free, cycle)

    def fastforward(self, next_free: int, slots: int, busy: int) -> None:
        """Jump to a known future state (steady-state schedule replay).

        ``next_free`` must not move backwards: replay only ever advances
        the clock past work whose schedule is already known.
        """
        if next_free < self._next_free:
            raise ConfigurationError(
                f"{self.name}: fastforward to {next_free} behind current "
                f"free time {self._next_free}"
            )
        self._next_free = next_free
        self.slots_used += slots
        self.busy_cycles += busy

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the bus was occupied."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def snapshot(self, elapsed: int) -> "dict[str, object]":
        """Occupancy counters + utilization for the telemetry export."""
        return {
            "slots_used": self.slots_used,
            "busy_cycles": self.busy_cycles,
            "utilization": self.utilization(elapsed),
        }
