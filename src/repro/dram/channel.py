"""A channel: the timing controller plus functional bank storage.

This is the DRAM-only composition; the Newton-specific units (global
input-vector buffer, per-bank MAC arrays, result latches) are layered on
top by :mod:`repro.core.engine`, keeping the substrate reusable as a
plain DRAM model.
"""

from __future__ import annotations

from typing import List

from repro.dram.config import DRAMConfig
from repro.dram.controller import ChannelController
from repro.dram.power import PowerModel, PowerParams, PowerReport
from repro.dram.storage import BankStorage
from repro.dram.timing import TimingParams


class Channel:
    """One (pseudo) channel: controller + per-bank storage."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        *,
        aggressive_tfaw: bool = False,
        refresh_enabled: bool = True,
        power_params: PowerParams = PowerParams(),
        telemetry: bool = True,
    ):
        self.config = config
        self.timing = timing
        self.controller = ChannelController(
            config,
            timing,
            aggressive_tfaw=aggressive_tfaw,
            refresh_enabled=refresh_enabled,
            telemetry=telemetry,
        )
        self.storage: List[BankStorage] = [
            BankStorage(config, i) for i in range(config.banks_per_channel)
        ]
        self.power_model = PowerModel(config, timing, power_params)

    def power_report(self) -> PowerReport:
        """Power breakdown for everything issued so far."""
        end = self.controller.finalize()
        return self.power_model.report(self.controller.stats, end)
