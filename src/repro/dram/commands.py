"""The DRAM command taxonomy: standard commands plus Newton's (Table I).

Standard commands: ACT, PRE, PRE_ALL, RD, WR, REF.

Newton extensions (Table I):

========== =============================================================
Command    Operation
========== =============================================================
COMP#      Ganged multiply of sub-chunk # in all banks (the *complex*
           command: global-buffer read + column access + multiply-reduce)
READRES    Read the result latches of all banks in one column access
GWRITE#    WRITE sub-chunk # into the per-channel global buffer
G_ACT#     Ganged activation of four-bank cluster #
========== =============================================================

The Figure 9 ablation additionally needs the *de-optimized* encodings the
full design replaces: per-bank COMP (no ganging) and the three-step
micro-command sequence BUF_READ + COL_READ + MAC (no complex commands).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


class CommandKind(enum.Enum):
    """Every command the controller can issue."""

    # Standard DRAM
    ACT = "ACT"
    PRE = "PRE"
    PRE_ALL = "PRE_ALL"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    # Newton (Table I)
    G_ACT = "G_ACT"
    GWRITE = "GWRITE"
    COMP = "COMP"
    READRES = "READRES"
    # De-optimized encodings for the Figure 9 ablation
    COMP_BANK = "COMP_BANK"  # per-bank compute (ganging disabled)
    BUF_READ = "BUF_READ"  # step 1 of a non-complex compute
    COL_READ = "COL_READ"  # step 2 of a non-complex compute
    MAC = "MAC"  # step 3 of a non-complex compute
    COL_READ_ALL = "COL_READ_ALL"  # ganged step 2 (gang without complex)
    MAC_ALL = "MAC_ALL"  # ganged step 3 (gang without complex)
    READRES_BANK = "READRES_BANK"  # per-bank result read (ganging disabled)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


NEWTON_KINDS: Tuple[CommandKind, ...] = (
    CommandKind.G_ACT,
    CommandKind.GWRITE,
    CommandKind.COMP,
    CommandKind.READRES,
)
"""The four commands Table I adds to the DRAM interface."""


@dataclass(frozen=True)
class Command:
    """One command as placed on the (shared) command bus.

    Attributes:
        kind: the command opcode.
        bank: target bank for per-bank commands, else ``None``.
        group: target four-bank cluster for ``G_ACT``, else ``None``.
        row: DRAM row for activations.
        col: column I/O index for column commands (RD/WR/COMP/...).
        subchunk: global-buffer sub-chunk index for GWRITE/BUF_READ/COMP
            (the COMP# / GWRITE# parameter of Table I).
    """

    kind: CommandKind
    bank: Optional[int] = None
    group: Optional[int] = None
    row: Optional[int] = None
    col: Optional[int] = None
    subchunk: Optional[int] = None
    auto_precharge: bool = field(default=False)

    def describe(self) -> str:
        """Human-readable one-liner for traces."""
        parts = [self.kind.value]
        if self.group is not None:
            parts.append(f"grp={self.group}")
        if self.bank is not None:
            parts.append(f"bank={self.bank}")
        if self.row is not None:
            parts.append(f"row={self.row}")
        if self.col is not None:
            parts.append(f"col={self.col}")
        if self.subchunk is not None:
            parts.append(f"sub={self.subchunk}")
        if self.auto_precharge:
            parts.append("AP")
        return " ".join(parts)


def act(bank: int, row: int) -> Command:
    """Activate ``row`` in ``bank``."""
    return Command(CommandKind.ACT, bank=bank, row=row)


def g_act(group: int, row: int) -> Command:
    """Ganged activation of ``row`` across four-bank cluster ``group``."""
    return Command(CommandKind.G_ACT, group=group, row=row)


def pre(bank: int) -> Command:
    """Precharge ``bank``."""
    return Command(CommandKind.PRE, bank=bank)


def pre_all() -> Command:
    """Precharge every open bank in the channel."""
    return Command(CommandKind.PRE_ALL)


def rd(bank: int, col: int, auto_precharge: bool = False) -> Command:
    """Read one column I/O from the open row of ``bank``."""
    return Command(CommandKind.RD, bank=bank, col=col, auto_precharge=auto_precharge)


def wr(bank: int, col: int, auto_precharge: bool = False) -> Command:
    """Write one column I/O into the open row of ``bank``."""
    return Command(CommandKind.WR, bank=bank, col=col, auto_precharge=auto_precharge)


def ref() -> Command:
    """All-bank refresh."""
    return Command(CommandKind.REF)


def gwrite(subchunk: int) -> Command:
    """Load sub-chunk ``subchunk`` of the input vector into the global buffer."""
    return Command(CommandKind.GWRITE, subchunk=subchunk)


def comp(col: int, subchunk: int, auto_precharge: bool = False) -> Command:
    """Ganged complex compute: broadcast sub-chunk, column-read, MAC — all banks."""
    return Command(CommandKind.COMP, col=col, subchunk=subchunk, auto_precharge=auto_precharge)


def comp_bank(bank: int, col: int, subchunk: int, auto_precharge: bool = False) -> Command:
    """Per-bank complex compute (used when ganging is ablated)."""
    return Command(
        CommandKind.COMP_BANK, bank=bank, col=col, subchunk=subchunk, auto_precharge=auto_precharge
    )


def buf_read(subchunk: int) -> Command:
    """Micro-command: read a sub-chunk from the global buffer (non-complex mode)."""
    return Command(CommandKind.BUF_READ, subchunk=subchunk)


def col_read(bank: int, col: int) -> Command:
    """Micro-command: column access feeding the multipliers (non-complex mode)."""
    return Command(CommandKind.COL_READ, bank=bank, col=col)


def mac(bank: int) -> Command:
    """Micro-command: fire the multiply-reduce (non-complex mode)."""
    return Command(CommandKind.MAC, bank=bank)


def col_read_all(col: int, auto_precharge: bool = False) -> Command:
    """Ganged micro-command: column access in all banks (gang, no complex)."""
    return Command(CommandKind.COL_READ_ALL, col=col, auto_precharge=auto_precharge)


def mac_all() -> Command:
    """Ganged micro-command: fire the multiply-reduce in all banks."""
    return Command(CommandKind.MAC_ALL)


def readres() -> Command:
    """Read all banks' result latches, concatenated, in one access."""
    return Command(CommandKind.READRES)


def readres_bank(bank: int) -> Command:
    """Read a single bank's result latch (used when ganging is ablated)."""
    return Command(CommandKind.READRES_BANK, bank=bank)


# ----------------------------------------------------------------------
# run-length-encoded homogeneous command runs

RUN_KINDS: Tuple[CommandKind, ...] = (
    CommandKind.COMP,
    CommandKind.COMP_BANK,
    CommandKind.GWRITE,
)
"""Kinds a :class:`CommandRun` may encode. These are the command
sequences Newton's streams issue in long homogeneous stretches (a tile's
COMP burst, a chunk's GWRITE prologue), and exactly the sequences whose
issue cycles satisfy the affine recurrence the burst timing kernel
(:mod:`repro.dram.burst`) solves in closed form."""


class CommandRun:
    """A homogeneous command run, compiled instead of materialized.

    One ``CommandRun`` stands for ``count`` consecutive commands of the
    same kind against the same bank scope, whose per-command operands
    (column / sub-chunk index) are carried as numpy arrays rather than
    ``count`` Python :class:`Command` objects. Only the *last* command of
    a run may carry auto-precharge — the shape Newton's streams emit.

    The per-command objects are produced lazily by :meth:`commands` (for
    the per-command reference solver, the trace writer, and the
    background-traffic path); the fast cold path hands the run itself to
    :meth:`repro.dram.controller.ChannelController.issue_burst` and never
    materializes anything.

    ``timing_key`` is the run's schedule-relevant identity (kind, bank
    scope, operand arrays, count, trailing auto-precharge) — the run
    analogue of the per-command key the schedule cache interns. DRAM rows
    never appear: none of the runnable kinds carries one.
    """

    __slots__ = (
        "kind",
        "count",
        "bank",
        "cols",
        "subchunks",
        "auto_precharge_last",
        "timing_key",
        "_commands",
        "_first",
    )

    def __init__(
        self,
        kind: CommandKind,
        count: int,
        *,
        bank: Optional[int] = None,
        cols: Optional[np.ndarray] = None,
        subchunks: Optional[np.ndarray] = None,
        auto_precharge_last: bool = False,
    ):
        from repro.errors import ProtocolError

        if kind not in RUN_KINDS:
            raise ProtocolError(
                f"{kind} streams are not homogeneous; only "
                f"{[k.value for k in RUN_KINDS]} can be run-length encoded"
            )
        if count < 1:
            raise ProtocolError("a command run needs at least one command")
        if kind is CommandKind.COMP_BANK and bank is None:
            raise ProtocolError("a COMP_BANK run requires a bank operand")
        self.kind = kind
        self.count = count
        self.bank = bank
        self.cols = None if cols is None else np.asarray(cols, dtype=np.int32)
        self.subchunks = (
            None if subchunks is None else np.asarray(subchunks, dtype=np.int32)
        )
        for name, arr in (("cols", self.cols), ("subchunks", self.subchunks)):
            if arr is not None and arr.shape != (count,):
                raise ProtocolError(
                    f"run {name} array has shape {arr.shape}, expected ({count},)"
                )
        self.auto_precharge_last = auto_precharge_last
        self.timing_key = (
            kind,
            bank,
            count,
            auto_precharge_last,
            None if self.cols is None else self.cols.tobytes(),
            None if self.subchunks is None else self.subchunks.tobytes(),
        )
        self._commands: Optional[Tuple[Command, ...]] = None
        self._first: Optional[Command] = None

    def _command_at(self, i: int) -> Command:
        return Command(
            self.kind,
            bank=self.bank,
            col=None if self.cols is None else int(self.cols[i]),
            subchunk=None if self.subchunks is None else int(self.subchunks[i]),
            auto_precharge=self.auto_precharge_last and i == self.count - 1,
        )

    def first_command(self) -> Command:
        """The run's first command (what the burst kernel issues exactly)."""
        if self._first is None:
            self._first = self._command_at(0)
        return self._first

    def commands(self) -> Tuple[Command, ...]:
        """Materialize the run as per-command objects (lazily, cached)."""
        if self._commands is None:
            self._commands = tuple(
                self._command_at(i) for i in range(self.count)
            )
        return self._commands

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        scope = "" if self.bank is None else f" bank={self.bank}"
        ap = " AP" if self.auto_precharge_last else ""
        return f"<CommandRun {self.kind.value} x{self.count}{scope}{ap}>"


def comp_run(cols: int, *, auto_precharge_last: bool = True, start: int = 0) -> CommandRun:
    """A tile's ganged COMP burst: ``COMP#start .. COMP#(start+cols-1)``."""
    idx = np.arange(start, start + cols, dtype=np.int32)
    return CommandRun(
        CommandKind.COMP,
        cols,
        cols=idx,
        subchunks=idx,
        auto_precharge_last=auto_precharge_last,
    )


def comp_bank_run(
    bank: int, cols: int, *, auto_precharge_last: bool = True, start: int = 0
) -> CommandRun:
    """One bank's COMP_BANK burst (the ganging-ablated encoding)."""
    idx = np.arange(start, start + cols, dtype=np.int32)
    return CommandRun(
        CommandKind.COMP_BANK,
        cols,
        bank=bank,
        cols=idx,
        subchunks=idx,
        auto_precharge_last=auto_precharge_last,
    )


def gwrite_run(subchunks: int) -> CommandRun:
    """A chunk's GWRITE prologue: sub-chunks ``0 .. subchunks-1``."""
    return CommandRun(
        CommandKind.GWRITE,
        subchunks,
        subchunks=np.arange(subchunks, dtype=np.int32),
    )
