"""The DRAM command taxonomy: standard commands plus Newton's (Table I).

Standard commands: ACT, PRE, PRE_ALL, RD, WR, REF.

Newton extensions (Table I):

========== =============================================================
Command    Operation
========== =============================================================
COMP#      Ganged multiply of sub-chunk # in all banks (the *complex*
           command: global-buffer read + column access + multiply-reduce)
READRES    Read the result latches of all banks in one column access
GWRITE#    WRITE sub-chunk # into the per-channel global buffer
G_ACT#     Ganged activation of four-bank cluster #
========== =============================================================

The Figure 9 ablation additionally needs the *de-optimized* encodings the
full design replaces: per-bank COMP (no ganging) and the three-step
micro-command sequence BUF_READ + COL_READ + MAC (no complex commands).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class CommandKind(enum.Enum):
    """Every command the controller can issue."""

    # Standard DRAM
    ACT = "ACT"
    PRE = "PRE"
    PRE_ALL = "PRE_ALL"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    # Newton (Table I)
    G_ACT = "G_ACT"
    GWRITE = "GWRITE"
    COMP = "COMP"
    READRES = "READRES"
    # De-optimized encodings for the Figure 9 ablation
    COMP_BANK = "COMP_BANK"  # per-bank compute (ganging disabled)
    BUF_READ = "BUF_READ"  # step 1 of a non-complex compute
    COL_READ = "COL_READ"  # step 2 of a non-complex compute
    MAC = "MAC"  # step 3 of a non-complex compute
    COL_READ_ALL = "COL_READ_ALL"  # ganged step 2 (gang without complex)
    MAC_ALL = "MAC_ALL"  # ganged step 3 (gang without complex)
    READRES_BANK = "READRES_BANK"  # per-bank result read (ganging disabled)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


NEWTON_KINDS: Tuple[CommandKind, ...] = (
    CommandKind.G_ACT,
    CommandKind.GWRITE,
    CommandKind.COMP,
    CommandKind.READRES,
)
"""The four commands Table I adds to the DRAM interface."""


@dataclass(frozen=True)
class Command:
    """One command as placed on the (shared) command bus.

    Attributes:
        kind: the command opcode.
        bank: target bank for per-bank commands, else ``None``.
        group: target four-bank cluster for ``G_ACT``, else ``None``.
        row: DRAM row for activations.
        col: column I/O index for column commands (RD/WR/COMP/...).
        subchunk: global-buffer sub-chunk index for GWRITE/BUF_READ/COMP
            (the COMP# / GWRITE# parameter of Table I).
    """

    kind: CommandKind
    bank: Optional[int] = None
    group: Optional[int] = None
    row: Optional[int] = None
    col: Optional[int] = None
    subchunk: Optional[int] = None
    auto_precharge: bool = field(default=False)

    def describe(self) -> str:
        """Human-readable one-liner for traces."""
        parts = [self.kind.value]
        if self.group is not None:
            parts.append(f"grp={self.group}")
        if self.bank is not None:
            parts.append(f"bank={self.bank}")
        if self.row is not None:
            parts.append(f"row={self.row}")
        if self.col is not None:
            parts.append(f"col={self.col}")
        if self.subchunk is not None:
            parts.append(f"sub={self.subchunk}")
        if self.auto_precharge:
            parts.append("AP")
        return " ".join(parts)


def act(bank: int, row: int) -> Command:
    """Activate ``row`` in ``bank``."""
    return Command(CommandKind.ACT, bank=bank, row=row)


def g_act(group: int, row: int) -> Command:
    """Ganged activation of ``row`` across four-bank cluster ``group``."""
    return Command(CommandKind.G_ACT, group=group, row=row)


def pre(bank: int) -> Command:
    """Precharge ``bank``."""
    return Command(CommandKind.PRE, bank=bank)


def pre_all() -> Command:
    """Precharge every open bank in the channel."""
    return Command(CommandKind.PRE_ALL)


def rd(bank: int, col: int, auto_precharge: bool = False) -> Command:
    """Read one column I/O from the open row of ``bank``."""
    return Command(CommandKind.RD, bank=bank, col=col, auto_precharge=auto_precharge)


def wr(bank: int, col: int, auto_precharge: bool = False) -> Command:
    """Write one column I/O into the open row of ``bank``."""
    return Command(CommandKind.WR, bank=bank, col=col, auto_precharge=auto_precharge)


def ref() -> Command:
    """All-bank refresh."""
    return Command(CommandKind.REF)


def gwrite(subchunk: int) -> Command:
    """Load sub-chunk ``subchunk`` of the input vector into the global buffer."""
    return Command(CommandKind.GWRITE, subchunk=subchunk)


def comp(col: int, subchunk: int, auto_precharge: bool = False) -> Command:
    """Ganged complex compute: broadcast sub-chunk, column-read, MAC — all banks."""
    return Command(CommandKind.COMP, col=col, subchunk=subchunk, auto_precharge=auto_precharge)


def comp_bank(bank: int, col: int, subchunk: int, auto_precharge: bool = False) -> Command:
    """Per-bank complex compute (used when ganging is ablated)."""
    return Command(
        CommandKind.COMP_BANK, bank=bank, col=col, subchunk=subchunk, auto_precharge=auto_precharge
    )


def buf_read(subchunk: int) -> Command:
    """Micro-command: read a sub-chunk from the global buffer (non-complex mode)."""
    return Command(CommandKind.BUF_READ, subchunk=subchunk)


def col_read(bank: int, col: int) -> Command:
    """Micro-command: column access feeding the multipliers (non-complex mode)."""
    return Command(CommandKind.COL_READ, bank=bank, col=col)


def mac(bank: int) -> Command:
    """Micro-command: fire the multiply-reduce (non-complex mode)."""
    return Command(CommandKind.MAC, bank=bank)


def col_read_all(col: int, auto_precharge: bool = False) -> Command:
    """Ganged micro-command: column access in all banks (gang, no complex)."""
    return Command(CommandKind.COL_READ_ALL, col=col, auto_precharge=auto_precharge)


def mac_all() -> Command:
    """Ganged micro-command: fire the multiply-reduce in all banks."""
    return Command(CommandKind.MAC_ALL)


def readres() -> Command:
    """Read all banks' result latches, concatenated, in one access."""
    return Command(CommandKind.READRES)


def readres_bank(bank: int) -> Command:
    """Read a single bank's result latch (used when ganging is ablated)."""
    return Command(CommandKind.READRES_BANK, bank=bank)
