"""DRAM geometry (Table III) and derived quantities.

The HBM2E-like configuration: 16 banks per (pseudo) channel, 32K rows per
bank, 8 Kb (1 KB) rows accessed as 32 column I/Os of 256 bits, bfloat16
elements, and 16 multipliers per bank rate-matched to one column access.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

COMMAND_FAMILY_NEWTON = "newton"
"""The paper's GWRITE/G_ACT/COMP/READRES protocol (the default)."""

COMMAND_FAMILY_OUTPUT_STATIONARY = "output_stationary"
"""MAC-DO-style output-stationary dataflow: partials accumulate in place
at the sense-amp result latch across every input chunk and drain with a
single READRES per tile — no per-(chunk, tile) result reads, at the cost
of re-streaming the input chunk once per tile."""

COMMAND_FAMILY_BANKGROUP_EXT = "bankgroup_ext"
"""GradPIM-style bank-group command extension: activation commands are
issued per bank group, so the four-activation tFAW window is tracked per
group instead of per channel (tRRD stays channel-global)."""

COMMAND_FAMILIES = (
    COMMAND_FAMILY_NEWTON,
    COMMAND_FAMILY_OUTPUT_STATIONARY,
    COMMAND_FAMILY_BANKGROUP_EXT,
)
"""Every in-DRAM command family the simulator models. The family rides
on :class:`DRAMConfig` so it reaches every consumer that already takes
the config — controller, command generation, invariant checker, cycle
oracle — without new plumbing."""


@dataclass(frozen=True)
class DRAMConfig:
    """Geometry of one Newton-capable DRAM device."""

    num_channels: int = 1
    """(Pseudo) channels; Newton's per-channel operation simply repeats
    across channels (Section III-D)."""

    banks_per_channel: int = 16
    """Banks per channel; Figure 10 sweeps this over {8, 16, 32}."""

    rows_per_bank: int = 32768
    """DRAM rows per bank (Table III: 32K)."""

    cols_per_row: int = 32
    """Column I/Os per row (Table III: 32 accesses of 256 b each)."""

    col_io_bits: int = 256
    """Bits per column access (one sub-chunk)."""

    elem_bits: int = 16
    """Bits per element (bfloat16)."""

    mults_per_bank: int = 16
    """Multipliers per bank; rate-matched when equal to elems_per_col."""

    bank_group_size: int = 4
    """Banks activated by one G_ACT command (the four-bank cluster)."""

    command_family: str = COMMAND_FAMILY_NEWTON
    """The in-DRAM command protocol this device speaks (one of
    :data:`COMMAND_FAMILIES`). Geometry is orthogonal: any family runs
    on any valid geometry."""

    def __post_init__(self) -> None:
        for name in (
            "num_channels",
            "banks_per_channel",
            "rows_per_bank",
            "cols_per_row",
            "col_io_bits",
            "elem_bits",
            "mults_per_bank",
            "bank_group_size",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.col_io_bits % self.elem_bits != 0:
            raise ConfigurationError("column I/O width must be a whole number of elements")
        if self.banks_per_channel % self.bank_group_size != 0:
            raise ConfigurationError("banks per channel must be a multiple of the bank group size")
        if self.mults_per_bank != self.elems_per_col:
            raise ConfigurationError(
                "Newton rate-matches the multipliers to the column access: "
                f"mults_per_bank ({self.mults_per_bank}) must equal elements "
                f"per column access ({self.elems_per_col})"
            )
        if self.command_family not in COMMAND_FAMILIES:
            raise ConfigurationError(
                f"unknown command family {self.command_family!r}; "
                f"available: {list(COMMAND_FAMILIES)}"
            )

    @property
    def elems_per_col(self) -> int:
        """Elements per column access (the sub-chunk: 16 bfloat16)."""
        return self.col_io_bits // self.elem_bits

    @property
    def elems_per_row(self) -> int:
        """Elements per DRAM row (the chunk: 512 bfloat16 = 1 KB)."""
        return self.elems_per_col * self.cols_per_row

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row."""
        return self.elems_per_row * self.elem_bits // 8

    @property
    def col_io_bytes(self) -> int:
        """Bytes per column access."""
        return self.col_io_bits // 8

    @property
    def bank_groups(self) -> int:
        """Number of four-bank clusters per channel."""
        return self.banks_per_channel // self.bank_group_size

    @property
    def bank_bytes(self) -> int:
        """Capacity of one bank in bytes."""
        return self.rows_per_bank * self.row_bytes

    @property
    def channel_bytes(self) -> int:
        """Capacity of one channel in bytes."""
        return self.bank_bytes * self.banks_per_channel

    def with_overrides(self, **kwargs) -> "DRAMConfig":
        """Return a copy with the given fields replaced (for sweeps)."""
        return replace(self, **kwargs)


def hbm2e_like_config(num_channels: int = 1, banks_per_channel: int = 16) -> DRAMConfig:
    """The Table III HBM2E-like geometry preset."""
    return DRAMConfig(num_channels=num_channels, banks_per_channel=banks_per_channel)
