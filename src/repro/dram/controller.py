"""The constraint-based channel controller: the timing heart of the model.

Every command's issue cycle is computed as the maximum over the timing
constraints that bind it:

* the shared **command bus** (one command per ``t_cmd`` cycles — the
  resource Newton's ganged/complex commands conserve),
* the target **bank state** (tRCD / tRAS / tRP, open row, no double
  buffering),
* the channel **activation window** (tRRD and tFAW, with Newton's
  aggressive tFAW selectable),
* the shared **data bus** (for transfers that cross the channel I/O:
  RD / WR / GWRITE / READRES — ganged COMP never does),
* per-bank **column cadence** (one column access per tCCD), and
* the **adder-tree drain** before a result read.

Because a Newton channel has a single master issuing an in-order stream,
this earliest-legal-issue computation is cycle-exact and avoids per-cycle
ticking entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dram.bank import BankState
from repro.dram.bus import BusTimer
from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.faw import ActivationWindow
from repro.dram.refresh import RefreshScheduler
from repro.dram.timing import TimingParams
from repro.errors import TimingViolationError

# ----------------------------------------------------------------------
# cycle-attribution categories
#
# Every cycle of a run is charged to exactly one bucket: the constraint
# that *bound* the command issued at the end of the waiting interval
# (the argmax of the controller's earliest-legal-issue computation).
# This is the simulator-level form of the paper's Section III-F
# decomposition: ATTR_ACT_WINDOW + ATTR_BANK is the activation
# serialization term (tRRD/tFAW and row readiness — the numerator of the
# overhead ratio ``o``), ATTR_COLUMN is the ``col x tCCD`` compute term,
# and the rest are the shared-resource and refresh overheads.

ATTR_CMD_BUS = "cmd_bus"
"""Command-bus serialization (``t_cmd`` between any two commands)."""
ATTR_ACT_WINDOW = "act_window"
"""Activation-window stalls: tRRD spacing and the tFAW budget."""
ATTR_BANK = "bank"
"""Bank-state readiness: tRCD after ACT, tRAS/tRP row cycling."""
ATTR_COLUMN = "column"
"""Per-bank column cadence (one column access per tCCD)."""
ATTR_DATA_BUS = "data_bus"
"""Shared data-I/O slot conflicts (RD/WR/GWRITE/READRES only)."""
ATTR_TREE = "tree_drain"
"""Adder-tree drain before a result read."""
ATTR_REFRESH = "refresh"
"""Refresh stalls under Newton's delay rule."""
ATTR_TAIL = "tail"
"""End-of-run drain: cycles between the last command's issue and the
run's end cycle (in-flight completions), closed out by :meth:`finalize`."""

ATTRIBUTION_CATEGORIES = (
    ATTR_CMD_BUS,
    ATTR_ACT_WINDOW,
    ATTR_BANK,
    ATTR_COLUMN,
    ATTR_DATA_BUS,
    ATTR_TREE,
    ATTR_REFRESH,
    ATTR_TAIL,
)
"""Every bucket :attr:`ControllerStats.cycle_attribution` may contain."""


@dataclass(frozen=True)
class IssueRecord:
    """Outcome of issuing one command."""

    command: Command
    issue: int
    """Cycle the command left the command bus."""
    complete: int
    """Cycle its effect is usable (data at host, row open, ...)."""


@dataclass
class ControllerStats:
    """Aggregated accounting the power model and tests consume."""

    command_counts: Dict[CommandKind, int] = field(default_factory=dict)
    bank_activations: int = 0
    bank_column_accesses: int = 0
    compute_column_accesses: int = 0
    data_transfers: int = 0
    open_bank_cycles: int = 0
    refreshes: int = 0
    refresh_stall_cycles: int = 0
    cycle_attribution: Dict[str, int] = field(default_factory=dict)
    """Cycles charged per binding constraint (keys from
    :data:`ATTRIBUTION_CATEGORIES`); empty when telemetry is disabled.
    After :meth:`ChannelController.finalize` the values sum to the end
    cycle — the invariant the telemetry JSON schema validates."""

    def count(self, kind: CommandKind) -> int:
        """Commands issued of the given kind."""
        return self.command_counts.get(kind, 0)

    @property
    def total_commands(self) -> int:
        """All commands placed on the command bus."""
        return sum(self.command_counts.values())

    @property
    def attributed_cycles(self) -> int:
        """Total cycles charged to any attribution bucket."""
        return sum(self.cycle_attribution.values())


class ChannelController:
    """Timing engine for one (pseudo) channel."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        *,
        aggressive_tfaw: bool = False,
        refresh_enabled: bool = True,
        telemetry: bool = True,
    ):
        self.config = config
        self.timing = timing
        self.aggressive_tfaw = aggressive_tfaw
        self.telemetry = telemetry
        """When True, every cycle is charged to the constraint that bound
        it (see :data:`ATTRIBUTION_CATEGORIES`); False skips the
        accounting entirely (the bench's overhead reference point)."""
        self.banks: List[BankState] = [
            BankState(index=i) for i in range(config.banks_per_channel)
        ]
        self.cmd_bus = BusTimer(timing.t_cmd, name="command bus")
        self.data_bus = BusTimer(timing.t_ccd, name="data bus")
        self._window_grouped = config.command_family == "bankgroup_ext"
        """bankgroup_ext scopes the tFAW window per bank group (GradPIM's
        per-group command issue); every other family keeps the JEDEC
        channel-wide window."""
        self.window = ActivationWindow(
            timing.t_rrd,
            timing.faw_window(aggressive_tfaw),
            groups=config.bank_groups if self._window_grouped else 1,
        )
        self.refresh = RefreshScheduler(
            t_refi=timing.t_refi, t_rfc=timing.t_rfc, enabled=refresh_enabled
        )
        self.stats = ControllerStats()
        self.now = 0
        self.trace = None
        """Optional :class:`~repro.dram.trace.CommandTrace` recorder."""
        self._last_tree_feed: int = -(10**18)
        self._bank_opened_at: List[int] = [0] * config.banks_per_channel
        self._attr_cursor: int = 0
        """Last cycle already charged to an attribution bucket. Equals
        ``now`` after every issue/refresh (the fast path relies on this
        invariant to restore it after a replay)."""

    # ------------------------------------------------------------------
    # internals

    def _bank(self, index: Optional[int]) -> BankState:
        if index is None:
            raise TimingViolationError("command requires a bank operand")
        if not 0 <= index < len(self.banks):
            raise TimingViolationError(f"bank {index} outside the channel")
        return self.banks[index]

    def _group_banks(self, group: Optional[int]) -> Sequence[BankState]:
        if group is None:
            raise TimingViolationError("G_ACT requires a bank-group operand")
        size = self.config.bank_group_size
        if not 0 <= group < self.config.bank_groups:
            raise TimingViolationError(f"bank group {group} outside the channel")
        return self.banks[group * size : (group + 1) * size]

    def _record(self, command: Command, issue: int, complete: int) -> IssueRecord:
        counts = self.stats.command_counts
        counts[command.kind] = counts.get(command.kind, 0) + 1
        self.now = max(self.now, issue)
        record = IssueRecord(command=command, issue=issue, complete=complete)
        if self.trace is not None:
            self.trace.record(record)
        return record

    def _occupy_cmd(self, earliest: int) -> int:
        at = self.cmd_bus.earliest(earliest)
        self.cmd_bus.occupy(at)
        return at

    def _charge(self, category: str, until: int) -> None:
        """Charge the cycles since the attribution cursor to a bucket."""
        gap = until - self._attr_cursor
        if gap > 0:
            attr = self.stats.cycle_attribution
            attr[category] = attr.get(category, 0) + gap
            self._attr_cursor = until

    def _issue_after(self, *candidates: "tuple[str, int]") -> int:
        """Issue at the earliest legal cycle over named constraints.

        Each candidate is ``(attribution category, earliest cycle)``. The
        binding constraint is the argmax (first wins ties); the command
        bus binds when its own serialization pushes the issue later than
        every candidate. With telemetry on, the wait since the previous
        issue is charged to the binding bucket.
        """
        earliest = 0
        binding = ATTR_CMD_BUS
        for category, cycle in candidates:
            if cycle > earliest:
                earliest = cycle
                binding = category
        at = self._occupy_cmd(earliest)
        if self.telemetry:
            if at > earliest:
                binding = ATTR_CMD_BUS
            self._charge(binding, at)
        return at

    def _data_slot_constraint(self, data_offset: int) -> int:
        """Earliest issue such that the data-bus slot (starting
        ``data_offset`` after issue) does not overlap the previous one."""
        return self.data_bus.next_free - data_offset

    def _activate_banks(self, banks: Sequence[BankState], row: int, at: int) -> None:
        for bank in banks:
            bank.do_activate(row, at, self.timing.t_rcd, self.timing.t_ras)
            self._bank_opened_at[bank.index] = at
        self.stats.bank_activations += len(banks)

    def _close_bank(self, bank: BankState, at: int) -> None:
        self.stats.open_bank_cycles += max(0, at - self._bank_opened_at[bank.index])
        bank.do_precharge(at, self.timing.t_rp)

    def _auto_precharge(self, bank: BankState, column_issue: int) -> None:
        ap_at = max(bank.precharge_ready, column_issue + self.timing.t_ccd)
        self._close_bank(bank, ap_at)

    # ------------------------------------------------------------------
    # refresh

    def refresh_barrier(self, op_duration: int) -> int:
        """Apply Newton's refresh rule before a row-long operation.

        If a refresh would mature within ``op_duration`` of the current
        time, the controller stalls, refreshes (closing every bank), and
        returns the post-refresh start cycle; otherwise returns ``now``.
        """
        before = self.refresh.refreshes_issued
        start = self.refresh.stall_for_refresh(self.now, op_duration)
        issued = self.refresh.refreshes_issued - before
        if issued:
            for bank in self.banks:
                if bank.is_open:
                    self._close_bank(bank, max(self.now, bank.precharge_ready))
                bank.do_refresh_done(start)
            self.cmd_bus.advance_to(start)
            self.data_bus.advance_to(start)
            self.stats.refreshes += issued
            self.stats.refresh_stall_cycles += start - self.now
            self.stats.command_counts[CommandKind.REF] = (
                self.stats.command_counts.get(CommandKind.REF, 0) + issued
            )
            if self.telemetry:
                self._charge(ATTR_REFRESH, start)
            self.now = start
        return self.now

    # ------------------------------------------------------------------
    # command issue

    def issue(self, command: Command) -> IssueRecord:
        """Issue one command at its earliest legal cycle."""
        handler = self._HANDLERS[command.kind]
        return handler(self, command)

    def _window_scope(self, group: int) -> int:
        """The activation-window scope a command's activations land in."""
        return group if self._window_grouped else 0

    def _issue_act(self, command: Command) -> IssueRecord:
        bank = self._bank(command.bank)
        if command.row is None:
            raise TimingViolationError("ACT requires a row operand")
        scope = self._window_scope(bank.index // self.config.bank_group_size)
        at = self._issue_after(
            (ATTR_BANK, bank.ready_for_act),
            (ATTR_ACT_WINDOW, self.window.earliest(1, scope)),
        )
        self.window.record(at, 1, scope)
        self._activate_banks([bank], command.row, at)
        return self._record(command, at, at + self.timing.t_rcd)

    def _issue_g_act(self, command: Command) -> IssueRecord:
        banks = self._group_banks(command.group)
        if command.row is None:
            raise TimingViolationError("G_ACT requires a row operand")
        scope = self._window_scope(command.group)
        at = self._issue_after(
            (ATTR_BANK, max(b.ready_for_act for b in banks)),
            (ATTR_ACT_WINDOW, self.window.earliest(len(banks), scope)),
        )
        self.window.record(at, len(banks), scope)
        self._activate_banks(banks, command.row, at)
        return self._record(command, at, at + self.timing.t_rcd)

    def _issue_pre(self, command: Command) -> IssueRecord:
        bank = self._bank(command.bank)
        if not bank.is_open:
            raise TimingViolationError(f"PRE on closed bank {bank.index}")
        at = self._issue_after(
            (ATTR_BANK, bank.precharge_ready),
            (ATTR_COLUMN, bank.last_column_issue + self.timing.t_ccd),
        )
        self._close_bank(bank, at)
        return self._record(command, at, at + self.timing.t_rp)

    def _issue_pre_all(self, command: Command) -> IssueRecord:
        open_banks = [b for b in self.banks if b.is_open]
        if not open_banks:
            raise TimingViolationError("PRE_ALL with no open banks")
        at = self._issue_after(
            (ATTR_BANK, max(b.precharge_ready for b in open_banks)),
            (
                ATTR_COLUMN,
                max(b.last_column_issue for b in open_banks) + self.timing.t_ccd,
            ),
        )
        for bank in open_banks:
            self._close_bank(bank, at)
        return self._record(command, at, at + self.timing.t_rp)

    def _issue_column_transfer(self, command: Command, write: bool) -> IssueRecord:
        bank = self._bank(command.bank)
        at = self._issue_after(
            (ATTR_BANK, bank.column_ready),
            (ATTR_COLUMN, bank.last_column_issue + self.timing.t_ccd),
            (ATTR_DATA_BUS, self._data_slot_constraint(self.timing.t_aa)),
        )
        bank.do_column(at, write_recovery=self.timing.t_wr if write else 0)
        self.stats.bank_column_accesses += 1
        self.data_bus.occupy(at + self.timing.t_aa)
        self.stats.data_transfers += 1
        if command.auto_precharge:
            self._auto_precharge(bank, at)
        return self._record(command, at, at + self.timing.t_aa + self.timing.t_ccd)

    def _issue_rd(self, command: Command) -> IssueRecord:
        return self._issue_column_transfer(command, write=False)

    def _issue_wr(self, command: Command) -> IssueRecord:
        return self._issue_column_transfer(command, write=True)

    def _issue_gwrite(self, command: Command) -> IssueRecord:
        # Loads one sub-chunk into the per-channel global buffer: occupies
        # the command bus and the channel data I/O, touches no bank.
        at = self._issue_after(
            (ATTR_DATA_BUS, self._data_slot_constraint(self.timing.t_aa))
        )
        self.data_bus.occupy(at + self.timing.t_aa)
        self.stats.data_transfers += 1
        return self._record(command, at, at + self.timing.t_aa + self.timing.t_ccd)

    def _issue_comp(self, command: Command) -> IssueRecord:
        # Ganged complex compute: column access + MAC in every bank at once.
        for bank in self.banks:
            if not bank.is_open:
                raise TimingViolationError(
                    f"COMP with bank {bank.index} closed; all banks must hold "
                    "their tile row"
                )
        at = self._issue_after(
            (ATTR_BANK, max(b.column_ready for b in self.banks)),
            (
                ATTR_COLUMN,
                max(b.last_column_issue for b in self.banks) + self.timing.t_ccd,
            ),
        )
        for bank in self.banks:
            bank.do_column(at)
        self.stats.bank_column_accesses += len(self.banks)
        self.stats.compute_column_accesses += len(self.banks)
        self._last_tree_feed = at
        if command.auto_precharge:
            for bank in self.banks:
                self._auto_precharge(bank, at)
        return self._record(command, at, at + self.timing.t_ccd)

    def _issue_comp_bank(self, command: Command) -> IssueRecord:
        bank = self._bank(command.bank)
        at = self._issue_after(
            (ATTR_BANK, bank.column_ready),
            (ATTR_COLUMN, bank.last_column_issue + self.timing.t_ccd),
        )
        bank.do_column(at)
        self.stats.bank_column_accesses += 1
        self.stats.compute_column_accesses += 1
        self._last_tree_feed = at
        if command.auto_precharge:
            self._auto_precharge(bank, at)
        return self._record(command, at, at + self.timing.t_ccd)

    def _issue_buf_read(self, command: Command) -> IssueRecord:
        at = self._issue_after()
        return self._record(command, at, at + 1)

    def _issue_col_read(self, command: Command) -> IssueRecord:
        bank = self._bank(command.bank)
        at = self._issue_after(
            (ATTR_BANK, bank.column_ready),
            (ATTR_COLUMN, bank.last_column_issue + self.timing.t_ccd),
        )
        bank.do_column(at)
        self.stats.bank_column_accesses += 1
        self.stats.compute_column_accesses += 1
        if command.auto_precharge:
            self._auto_precharge(bank, at)
        return self._record(command, at, at + self.timing.t_ccd)

    def _issue_mac(self, command: Command) -> IssueRecord:
        at = self._issue_after()
        self._last_tree_feed = at
        return self._record(command, at, at + self.timing.t_ccd)

    def _issue_col_read_all(self, command: Command) -> IssueRecord:
        for bank in self.banks:
            if not bank.is_open:
                raise TimingViolationError(
                    f"COL_READ_ALL with bank {bank.index} closed"
                )
        at = self._issue_after(
            (ATTR_BANK, max(b.column_ready for b in self.banks)),
            (
                ATTR_COLUMN,
                max(b.last_column_issue for b in self.banks) + self.timing.t_ccd,
            ),
        )
        for bank in self.banks:
            bank.do_column(at)
        self.stats.bank_column_accesses += len(self.banks)
        self.stats.compute_column_accesses += len(self.banks)
        if command.auto_precharge:
            for bank in self.banks:
                self._auto_precharge(bank, at)
        return self._record(command, at, at + self.timing.t_ccd)

    def _issue_mac_all(self, command: Command) -> IssueRecord:
        at = self._issue_after()
        self._last_tree_feed = at
        return self._record(command, at, at + self.timing.t_ccd)

    def _issue_readres(self, command: Command) -> IssueRecord:
        # The host memory controller inserts the adder-tree drain delay
        # before reading the result latches (Section III-D, issue (2)).
        at = self._issue_after(
            (ATTR_TREE, self._last_tree_feed + self.timing.t_tree_drain),
            (ATTR_DATA_BUS, self._data_slot_constraint(self.timing.t_aa)),
        )
        self.data_bus.occupy(at + self.timing.t_aa)
        self.stats.data_transfers += 1
        return self._record(command, at, at + self.timing.t_aa + self.timing.t_ccd)

    def _issue_readres_bank(self, command: Command) -> IssueRecord:
        bank = self._bank(command.bank)
        at = self._issue_after(
            (
                ATTR_TREE,
                max(bank.last_column_issue, self._last_tree_feed)
                + self.timing.t_tree_drain,
            ),
            (ATTR_DATA_BUS, self._data_slot_constraint(self.timing.t_aa)),
        )
        self.data_bus.occupy(at + self.timing.t_aa)
        self.stats.data_transfers += 1
        return self._record(command, at, at + self.timing.t_aa + self.timing.t_ccd)

    def _issue_ref(self, command: Command) -> IssueRecord:
        for bank in self.banks:
            if bank.is_open:
                raise TimingViolationError(
                    "REF requires all banks precharged; issue PRE_ALL first"
                )
        at = self._issue_after(
            (ATTR_BANK, max(b.ready_for_act for b in self.banks))
        )
        done = at + self.timing.t_rfc
        for bank in self.banks:
            bank.do_refresh_done(done)
        self.stats.refreshes += 1
        return self._record(command, at, done)

    def issue_burst(self, run) -> "object":
        """Issue a homogeneous :class:`~repro.dram.commands.CommandRun`.

        The cold-path entry point: the first command goes through the
        ordinary constraint solver, the rest are applied in closed form
        by :func:`repro.dram.burst.issue_burst` — bit-identical to
        issuing :meth:`issue` per command (the differential suite pins
        end cycle, stats, and full cycle attribution). Falls back to
        per-command issue under a trace recorder. Returns a
        :class:`~repro.dram.burst.BurstRecord`.
        """
        from repro.dram.burst import issue_burst as _issue_burst

        return _issue_burst(self, run)

    _HANDLERS = {
        CommandKind.ACT: _issue_act,
        CommandKind.G_ACT: _issue_g_act,
        CommandKind.PRE: _issue_pre,
        CommandKind.PRE_ALL: _issue_pre_all,
        CommandKind.RD: _issue_rd,
        CommandKind.WR: _issue_wr,
        CommandKind.REF: _issue_ref,
        CommandKind.GWRITE: _issue_gwrite,
        CommandKind.COMP: _issue_comp,
        CommandKind.COMP_BANK: _issue_comp_bank,
        CommandKind.BUF_READ: _issue_buf_read,
        CommandKind.COL_READ: _issue_col_read,
        CommandKind.MAC: _issue_mac,
        CommandKind.COL_READ_ALL: _issue_col_read_all,
        CommandKind.MAC_ALL: _issue_mac_all,
        CommandKind.READRES: _issue_readres,
        CommandKind.READRES_BANK: _issue_readres_bank,
    }

    # ------------------------------------------------------------------
    # finalization

    def finalize(self, end: Optional[int] = None) -> int:
        """Close open-bank and attribution accounting; return the end cycle.

        With telemetry on, the cycles between the last issued command and
        ``end`` (in-flight completions draining) are charged to
        :data:`ATTR_TAIL`, making the attribution buckets sum exactly to
        the returned end cycle. Idempotent for a fixed ``end``.
        """
        end_cycle = max(self.now, end if end is not None else self.now)
        for bank in self.banks:
            if bank.is_open:
                self.stats.open_bank_cycles += max(
                    0, end_cycle - self._bank_opened_at[bank.index]
                )
                self._bank_opened_at[bank.index] = end_cycle
        if self.telemetry:
            self._charge(ATTR_TAIL, end_cycle)
        return end_cycle
