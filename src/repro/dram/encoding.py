"""Bit-level command encoding for the DRAM-like interface.

Newton's host issues commands over the standard DRAM command/address
pins — that is what makes the interface "indistinguishable from regular
DRAM". This module packs every command into a fixed-width command word
(opcode + bank/group + row + column/sub-chunk + flags), mirroring how a
real command decoder would see it, and decodes it back. The encoding is
validated by an exhaustive round-trip property test.

Field layout (LSB first):

====== ===== ==========================================
field  bits  meaning
====== ===== ==========================================
opcode 5     CommandKind ordinal
bank   6     bank index (or four-bank cluster for G_ACT)
row    17    DRAM row
col    7     column I/O or global-buffer sub-chunk
ap     1     auto-precharge flag
====== ===== ==========================================
"""

from __future__ import annotations

from typing import Dict

from repro.dram.commands import Command, CommandKind
from repro.errors import ProtocolError

_OPCODE_BITS = 5
_BANK_BITS = 6
_ROW_BITS = 17
_COL_BITS = 7

COMMAND_WORD_BITS = _OPCODE_BITS + _BANK_BITS + _ROW_BITS + _COL_BITS + 1
"""Total width of one encoded command word."""

_KINDS = list(CommandKind)
_OPCODES: Dict[CommandKind, int] = {kind: i for i, kind in enumerate(_KINDS)}

_BANK_SHIFT = _OPCODE_BITS
_ROW_SHIFT = _BANK_SHIFT + _BANK_BITS
_COL_SHIFT = _ROW_SHIFT + _ROW_BITS
_AP_SHIFT = _COL_SHIFT + _COL_BITS

_GROUP_KINDS = frozenset({CommandKind.G_ACT})
_SUBCHUNK_ONLY = frozenset({CommandKind.GWRITE, CommandKind.BUF_READ})


def _field(value: "int | None", bits: int, label: str) -> int:
    if value is None:
        return 0
    if not 0 <= value < (1 << bits):
        raise ProtocolError(f"{label} {value} does not fit in {bits} bits")
    return value


def encode(command: Command) -> int:
    """Pack a command into its command word."""
    if command.kind not in _OPCODES:
        raise ProtocolError(f"unknown command kind {command.kind!r}")
    bank_field = command.group if command.kind in _GROUP_KINDS else command.bank
    col_field = (
        command.subchunk
        if (command.kind in _SUBCHUNK_ONLY or command.col is None)
        else command.col
    )
    word = _OPCODES[command.kind]
    word |= _field(bank_field, _BANK_BITS, "bank/group") << _BANK_SHIFT
    word |= _field(command.row, _ROW_BITS, "row") << _ROW_SHIFT
    word |= _field(col_field, _COL_BITS, "col/sub-chunk") << _COL_SHIFT
    word |= (1 if command.auto_precharge else 0) << _AP_SHIFT
    return word


def decode(word: int) -> Command:
    """Unpack a command word back into a :class:`Command`.

    The inverse of :func:`encode` for every command the generator emits
    (COMP's sub-chunk equals its column on the wire, as in Table I where
    COMP# carries a single sub-chunk parameter).
    """
    if not 0 <= word < (1 << COMMAND_WORD_BITS):
        raise ProtocolError(f"command word {word:#x} out of range")
    opcode = word & ((1 << _OPCODE_BITS) - 1)
    if opcode >= len(_KINDS):
        raise ProtocolError(f"opcode {opcode} is not a known command")
    kind = _KINDS[opcode]
    bank_field = (word >> _BANK_SHIFT) & ((1 << _BANK_BITS) - 1)
    row = (word >> _ROW_SHIFT) & ((1 << _ROW_BITS) - 1)
    col = (word >> _COL_SHIFT) & ((1 << _COL_BITS) - 1)
    ap = bool((word >> _AP_SHIFT) & 1)

    bank = None
    group = None
    if kind in _GROUP_KINDS:
        group = bank_field
    elif kind in (
        CommandKind.ACT,
        CommandKind.PRE,
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.COMP_BANK,
        CommandKind.COL_READ,
        CommandKind.MAC,
        CommandKind.READRES_BANK,
    ):
        bank = bank_field

    row_value = row if kind in (CommandKind.ACT, CommandKind.G_ACT) else None
    col_value = None
    subchunk = None
    if kind in _SUBCHUNK_ONLY:
        subchunk = col
    elif kind in (
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.COL_READ,
        CommandKind.COL_READ_ALL,
    ):
        col_value = col
    elif kind in (CommandKind.COMP, CommandKind.COMP_BANK):
        col_value = col
        subchunk = col  # Table I: COMP# names one sub-chunk parameter
    return Command(
        kind=kind,
        bank=bank,
        group=group,
        row=row_value,
        col=col_value,
        subchunk=subchunk,
        auto_precharge=ap,
    )
