"""Other DRAM-family presets (Section III-E / Conclusion).

"Newton's key ideas are applicable to other DRAM families such as
LPDDR, DDR, and GDDR, with low-level differences based on the internal
bandwidth, impact on density, and implementation (e.g., number of MACs
for rate matching)." SK hynix's shipped product is in fact GDDR6-AiM.

These presets carry the *-like* caveat of the HBM2E preset: geometry and
timing chosen to be family-plausible and internally consistent (the MAC
count per bank is always rate-matched to the column I/O width, as the
config layer enforces), with results meaningful as ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FamilyPreset:
    """A named DRAM family configuration."""

    name: str
    config: DRAMConfig
    timing: TimingParams
    notes: str


def hbm2e_family(num_channels: int = 24) -> FamilyPreset:
    """The paper's evaluation vehicle: many narrow (pseudo) channels."""
    return FamilyPreset(
        name="HBM2E",
        config=DRAMConfig(num_channels=num_channels),
        timing=TimingParams(),
        notes="Table III: 16 banks, 32 x 256 b columns per 1 KB row, 16 MACs",
    )


def gddr6_family(num_channels: int = 12) -> FamilyPreset:
    """GDDR6-like: the family Newton actually shipped in (GDDR6-AiM).

    Fewer, faster channels; 2 KB rows read as 64 column I/Os; the same
    256-bit access grain keeps 16 MACs per bank rate-matched.
    """
    return FamilyPreset(
        name="GDDR6",
        config=DRAMConfig(
            num_channels=num_channels,
            banks_per_channel=16,
            rows_per_bank=16384,
            cols_per_row=64,
            col_io_bits=256,
        ),
        timing=TimingParams(t_ccd=3, t_rrd=6, t_faw=24, t_faw_aim=12, t_cmd=3),
        notes="2 KB rows, 64 columns, higher column rate",
    )


def ddr4_family(num_channels: int = 4) -> FamilyPreset:
    """DDR4-like: few wide-row channels with a narrow 64-bit interface.

    Only 4 elements per column access, so rate matching needs just 4
    MACs per bank — the 'number of MACs for rate matching' difference
    the paper calls out.
    """
    return FamilyPreset(
        name="DDR4",
        config=DRAMConfig(
            num_channels=num_channels,
            banks_per_channel=16,
            rows_per_bank=65536,
            cols_per_row=128,
            col_io_bits=64,
            mults_per_bank=4,
        ),
        timing=TimingParams(t_ccd=6, t_rrd=6, t_faw=34, t_faw_aim=20, t_cmd=4),
        notes="1 KB rows as 128 x 64 b columns; 4 MACs per bank",
    )


def lpddr4_family(num_channels: int = 8) -> FamilyPreset:
    """LPDDR4-like: mobile-class — 8 banks, slower core timings."""
    return FamilyPreset(
        name="LPDDR4",
        config=DRAMConfig(
            num_channels=num_channels,
            banks_per_channel=8,
            rows_per_bank=32768,
            cols_per_row=64,
            col_io_bits=128,
            mults_per_bank=8,
        ),
        timing=TimingParams(
            t_rcd=18, t_rp=18, t_ras=42, t_ccd=8, t_rrd=10,
            t_faw=40, t_faw_aim=24, t_cmd=4, t_aa=28, t_tree_drain=10,
        ),
        notes="8 banks, 128 b columns, 8 MACs per bank, slower core",
    )


def output_stationary_family(num_channels: int = 24) -> FamilyPreset:
    """MAC-DO-style output-stationary rival on HBM2E-like geometry.

    Same banks/rows/columns as the HBM2E preset but a different command
    protocol (``command_family="output_stationary"``): partial sums stay
    in the sense-amp result latch across every input chunk of a tile and
    drain with one READRES per tile. The trade is one GWRITE re-stream
    of the input chunk per tile against Newton's per-(chunk, tile)
    result read — a win when outputs are wide relative to inputs.
    """
    return FamilyPreset(
        name="OUTPUT-STATIONARY",
        config=DRAMConfig(
            num_channels=num_channels, command_family="output_stationary"
        ),
        timing=TimingParams(),
        notes="MAC-DO-style: in-latch accumulation, one READRES per tile",
    )


def bankgroup_ext_family(num_channels: int = 24) -> FamilyPreset:
    """GradPIM-style bank-group command extension on HBM2E-like geometry.

    Identical command stream to Newton, but activation commands are
    scoped to a bank group (``command_family="bankgroup_ext"``): the
    four-activation tFAW window is tracked per group, so G_ACTs landing
    in different groups are spaced only by tRRD. tRRD itself stays
    channel-global (the shared command path).
    """
    return FamilyPreset(
        name="BANKGROUP-EXT",
        config=DRAMConfig(
            num_channels=num_channels, command_family="bankgroup_ext"
        ),
        timing=TimingParams(),
        notes="GradPIM-style: per-bank-group tFAW, tRRD channel-global",
    )


FamilyBuilder = Callable[..., FamilyPreset]

FAMILIES: Dict[str, FamilyBuilder] = {
    builder().name: builder
    for builder in (
        hbm2e_family,
        gddr6_family,
        ddr4_family,
        lpddr4_family,
        output_stationary_family,
        bankgroup_ext_family,
    )
}
"""Every family preset, keyed by name — the four DRAM-technology
presets plus the two rival command-family architectures the design-space
explorer compares against Newton's protocol."""

RIVAL_FAMILY_NAMES = ("OUTPUT-STATIONARY", "BANKGROUP-EXT")
"""The rival command-family presets (non-Newton protocols)."""


def family_by_name(name: str, **kwargs: int) -> FamilyPreset:
    """Look up a family preset by name.

    Raises:
        ConfigurationError: for unknown family names.
    """
    try:
        builder = FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown DRAM family {name!r}; available: {sorted(FAMILIES)}"
        ) from None
    return builder(**kwargs)
