"""Steady-state fast-forwarding of the channel controller.

Newton's command streams are periodic by construction (Figure 7): every
DRAM row repeats the same GWRITE/G_ACT/COMP/READRES tile pattern. The
constraint solver in :class:`~repro.dram.controller.ChannelController`
is *time-shift invariant*: every issue cycle is a max over state time
fields plus timing constants, and every state update adds a constant to
the issue cycle. So if two tile boundaries present the same *relative*
timing state (every time field expressed as an offset from ``now``) and
the same command sequence follows, the second tile's schedule is the
first one's shifted rigidly in time — and the controller can jump
straight to the end state in O(1) instead of re-running the solver per
command.

This module provides the three primitives that make that sound:

* :func:`relative_signature` — a hashable snapshot of the relative
  timing state at a candidate replay point (``None`` when the state is
  not replayable, i.e. a bank holds an open row whose identity is
  row-specific);
* :func:`capture_delta` — after executing a command segment normally,
  record its effect as a :class:`ControllerDelta`: relative end state
  plus statistics deltas;
* :func:`apply_delta` — replay a recorded delta from a new base cycle,
  fast-forwarding ``now``, bank state, bus timers, the activation
  window, the adder-tree drain anchor, and all statistics.

Refresh is deliberately **excluded**: the refresh scheduler works on
absolute deadlines, so the engine runs every refresh barrier exactly and
only consults the cache afterwards — refresh interference stays exact.

Sentinel time fields (``NEG_INF`` markers for "never happened") are
preserved as ``None`` offsets so a replayed controller is bit-identical
to one that executed the segment command by command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.dram.bank import NEG_INF
from repro.dram.commands import CommandKind
from repro.dram.controller import ChannelController

_REL_FLOOR = -(10**17)
"""Offsets below this are sentinel ("never happened") values."""

_STAT_FIELDS = (
    "bank_activations",
    "bank_column_accesses",
    "compute_column_accesses",
    "data_transfers",
    "open_bank_cycles",
    "refreshes",
    "refresh_stall_cycles",
)


def _rel(value: int, base: int) -> Optional[int]:
    """Offset from ``base``, or ``None`` for a sentinel value."""
    return None if value < _REL_FLOOR else value - base


def _abs(offset: Optional[int], base: int) -> int:
    """Inverse of :func:`_rel`."""
    return NEG_INF if offset is None else base + offset


@dataclass(frozen=True)
class ControllerDelta:
    """One command segment's effect, relative to its start cycle."""

    dt_now: int
    """``now`` advance over the segment."""
    max_complete: Optional[int]
    """Latest command-completion offset (``None``: no commands issued)."""
    banks: Tuple[Tuple[int, int, int, Optional[int]], ...]
    """Per bank: (ready_for_act, column_ready, precharge_ready,
    last_column_issue) offsets; every bank ends precharged."""
    cmd_next_free: int
    data_next_free: int
    window_recent: Tuple[Tuple[int, ...], ...]
    """Per-scope recent-activation offsets (one scope channel-wide, one
    per bank group under the ``bankgroup_ext`` family)."""
    window_last_act: Optional[int]
    last_tree_feed: Optional[int]
    command_counts: Tuple[Tuple[CommandKind, int], ...]
    stat_deltas: Tuple[int, ...]
    """Deltas of ``_STAT_FIELDS``, in order."""
    attribution: Tuple[Tuple[str, int], ...]
    """Cycle-attribution bucket deltas. Attribution is shift-invariant
    (gaps between issue cycles and binding-constraint argmaxes survive a
    rigid time shift), so a replay accumulates the exact counters the
    per-command path would have."""
    bank_counters: Tuple[Tuple[int, int], ...]
    """Per bank: (activations, column_accesses) deltas."""
    cmd_bus_counters: Tuple[int, int]
    """(slots_used, busy_cycles) deltas."""
    data_bus_counters: Tuple[int, int]
    window_activations: int


Signature = Tuple
"""Opaque hashable relative-state signature."""


def relative_signature(controller: ChannelController) -> Optional[Signature]:
    """The controller's timing state as offsets from ``now``.

    Two controller states with equal signatures schedule any identical
    command sequence identically (up to a rigid time shift). Returns
    ``None`` when the state cannot be summarized shift-invariantly: a
    bank holding an open row (the row identity is data, not timing, and
    differs tile to tile).
    """
    now = controller.now
    banks = []
    for bank in controller.banks:
        if bank.open_row is not None:
            return None
        banks.append(
            (
                bank.ready_for_act - now,
                bank.column_ready - now,
                bank.precharge_ready - now,
                _rel(bank.last_column_issue, now),
            )
        )
    scopes, last_act = controller.window.snapshot()
    return (
        tuple(banks),
        controller.cmd_bus.next_free - now,
        controller.data_bus.next_free - now,
        tuple(tuple(t - now for t in recent) for recent in scopes),
        _rel(last_act, now),
        _rel(controller._last_tree_feed, now),
    )


def counters(controller: ChannelController) -> tuple:
    """Snapshot of every monotone counter a segment can advance."""
    stats = controller.stats
    return (
        dict(stats.command_counts),
        dict(stats.cycle_attribution),
        tuple(getattr(stats, name) for name in _STAT_FIELDS),
        tuple((b.activations, b.column_accesses) for b in controller.banks),
        (controller.cmd_bus.slots_used, controller.cmd_bus.busy_cycles),
        (controller.data_bus.slots_used, controller.data_bus.busy_cycles),
        controller.window.total_activations,
    )


def capture_delta(
    controller: ChannelController,
    base: int,
    before: tuple,
    max_complete: Optional[int],
) -> Optional[ControllerDelta]:
    """Record a just-executed segment as a replayable delta.

    ``base`` is the controller's ``now`` when the segment started and
    ``before`` the :func:`counters` snapshot taken then. Returns ``None``
    when the end state is not replayable (an open row would pin the
    recorded row identity into every replay).
    """
    for bank in controller.banks:
        if bank.open_row is not None:
            return None
    counts_before: Dict[CommandKind, int] = before[0]
    count_deltas = tuple(
        (kind, count - counts_before.get(kind, 0))
        for kind, count in controller.stats.command_counts.items()
        if count - counts_before.get(kind, 0)
    )
    attr_before: Dict[str, int] = before[1]
    attr_deltas = tuple(
        (category, charged - attr_before.get(category, 0))
        for category, charged in controller.stats.cycle_attribution.items()
        if charged - attr_before.get(category, 0)
    )
    after_fields = tuple(getattr(controller.stats, name) for name in _STAT_FIELDS)
    scopes, last_act = controller.window.snapshot()
    return ControllerDelta(
        dt_now=controller.now - base,
        max_complete=None if max_complete is None else max_complete - base,
        banks=tuple(
            (
                b.ready_for_act - base,
                b.column_ready - base,
                b.precharge_ready - base,
                _rel(b.last_column_issue, base),
            )
            for b in controller.banks
        ),
        cmd_next_free=controller.cmd_bus.next_free - base,
        data_next_free=controller.data_bus.next_free - base,
        window_recent=tuple(
            tuple(t - base for t in recent) for recent in scopes
        ),
        window_last_act=_rel(last_act, base),
        last_tree_feed=_rel(controller._last_tree_feed, base),
        command_counts=count_deltas,
        attribution=attr_deltas,
        stat_deltas=tuple(a - b for a, b in zip(after_fields, before[2])),
        bank_counters=tuple(
            (b.activations - a, b.column_accesses - c)
            for b, (a, c) in zip(controller.banks, before[3])
        ),
        cmd_bus_counters=(
            controller.cmd_bus.slots_used - before[4][0],
            controller.cmd_bus.busy_cycles - before[4][1],
        ),
        data_bus_counters=(
            controller.data_bus.slots_used - before[5][0],
            controller.data_bus.busy_cycles - before[5][1],
        ),
        window_activations=controller.window.total_activations - before[6],
    )


def apply_delta(
    controller: ChannelController, delta: ControllerDelta, base: int
) -> None:
    """Fast-forward the controller past a segment recorded earlier.

    ``base`` is the current ``now``; the controller must be in a state
    whose :func:`relative_signature` matches the one the delta was
    recorded under (the cache key guarantees this).
    """
    for bank, (ra, cr, pr, lci), (da, dc) in zip(
        controller.banks, delta.banks, delta.bank_counters
    ):
        bank.open_row = None
        bank.ready_for_act = base + ra
        bank.column_ready = base + cr
        bank.precharge_ready = base + pr
        bank.last_column_issue = _abs(lci, base)
        bank.activations += da
        bank.column_accesses += dc
    controller.cmd_bus.fastforward(
        base + delta.cmd_next_free, *delta.cmd_bus_counters
    )
    controller.data_bus.fastforward(
        base + delta.data_next_free, *delta.data_bus_counters
    )
    controller.window.fastforward_scopes(
        tuple(
            tuple(base + t for t in recent) for recent in delta.window_recent
        ),
        _abs(delta.window_last_act, base),
        delta.window_activations,
    )
    controller._last_tree_feed = _abs(delta.last_tree_feed, base)
    stats = controller.stats
    for kind, count in delta.command_counts:
        stats.command_counts[kind] = stats.command_counts.get(kind, 0) + count
    for category, charged in delta.attribution:
        stats.cycle_attribution[category] = (
            stats.cycle_attribution.get(category, 0) + charged
        )
    for name, d in zip(_STAT_FIELDS, delta.stat_deltas):
        setattr(stats, name, getattr(stats, name) + d)
    controller.now = base + delta.dt_now
    # The attribution cursor tracks the last issued command, which is
    # also where ``now`` lands after any segment — restore the invariant
    # so the next segment (or refresh barrier) charges from here.
    controller._attr_cursor = controller.now
