"""Rolling activation-window tracker (tRRD and tFAW).

tFAW bounds how many row activations may land in any sliding window: at
most four activations per ``t_faw`` cycles per channel. Newton's G_ACT
issues four activations *in one command*, so one G_ACT consumes an entire
window and consecutive G_ACTs are separated by max(tRRD, tFAW) — exactly
the Section III-F model's ``max(tRRD, tFAW) * (n/4 - 1)`` term.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.errors import TimingViolationError


class ActivationWindow:
    """Tracks recent activations to enforce tRRD and tFAW.

    The window size (four) is the JEDEC four-activation window; the
    tracker is agnostic to whether activations arrive singly (ACT) or
    four-at-a-time (G_ACT).
    """

    WINDOW = 4

    def __init__(self, t_rrd: int, t_faw: int):
        if t_rrd <= 0 or t_faw <= 0:
            raise TimingViolationError("tRRD and tFAW must be positive")
        self.t_rrd = t_rrd
        self.t_faw = t_faw
        self._recent: Deque[int] = deque(maxlen=self.WINDOW)
        self._last_act = -(10**18)
        self.total_activations = 0

    def set_faw(self, t_faw: int) -> None:
        """Switch the window in force (standard vs aggressive tFAW)."""
        if t_faw <= 0:
            raise TimingViolationError("tFAW must be positive")
        self.t_faw = t_faw

    def earliest(self, count: int) -> int:
        """Earliest cycle at which ``count`` simultaneous activations are legal.

        Args:
            count: activations issued by the command (1 for ACT, the bank
                group size for G_ACT). Must not exceed the window size —
                more than four truly simultaneous activations can never
                satisfy tFAW.
        """
        if count < 1:
            raise TimingViolationError("an activation command must activate at least one bank")
        if count > self.WINDOW:
            raise TimingViolationError(
                f"{count} simultaneous activations can never satisfy the "
                f"four-activation window"
            )
        bound = self._last_act + self.t_rrd
        # After appending `count` acts at time t, every activation whose
        # WINDOW-previous activation exists must start >= tFAW after it.
        # The binding historical entry for the batch is the one WINDOW-count
        # from the end of history.
        history = list(self._recent)
        if len(history) >= self.WINDOW - count + 1:
            anchor = history[-(self.WINDOW - count + 1)]
            bound = max(bound, anchor + self.t_faw)
        return bound

    def history(self) -> "tuple[tuple[int, ...], int]":
        """The recent-activation times and the last activation cycle."""
        return tuple(self._recent), self._last_act

    def fastforward(
        self, recent: "tuple[int, ...]", last_act: int, activations: int
    ) -> None:
        """Jump to a known future history (steady-state schedule replay)."""
        self._recent = deque(recent, maxlen=self.WINDOW)
        self._last_act = last_act
        self.total_activations += activations

    def record(self, at: int, count: int) -> None:
        """Record ``count`` activations issued at cycle ``at``."""
        if at < self.earliest(count):
            raise TimingViolationError(
                f"activation batch at {at} violates tRRD/tFAW; earliest legal "
                f"cycle is {self.earliest(count)}"
            )
        for _ in range(count):
            self._recent.append(at)
        self._last_act = at
        self.total_activations += count
