"""Rolling activation-window tracker (tRRD and tFAW).

tFAW bounds how many row activations may land in any sliding window: at
most four activations per ``t_faw`` cycles per channel. Newton's G_ACT
issues four activations *in one command*, so one G_ACT consumes an entire
window and consecutive G_ACTs are separated by max(tRRD, tFAW) — exactly
the Section III-F model's ``max(tRRD, tFAW) * (n/4 - 1)`` term.

The ``bankgroup_ext`` command family (GradPIM-style) scopes the
four-activation window to a bank group instead of the whole channel, so
the tracker optionally keeps one rolling window per group. tRRD remains
channel-global in every family — the activation *command* still occupies
the shared command path regardless of which group it targets.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.errors import TimingViolationError


class ActivationWindow:
    """Tracks recent activations to enforce tRRD and tFAW.

    The window size (four) is the JEDEC four-activation window; the
    tracker is agnostic to whether activations arrive singly (ACT) or
    four-at-a-time (G_ACT). With ``groups > 1`` each tFAW window is
    scoped to one bank group while tRRD stays global; the default single
    scope reproduces the channel-wide JEDEC behaviour exactly.
    """

    WINDOW = 4

    def __init__(self, t_rrd: int, t_faw: int, groups: int = 1):
        if t_rrd <= 0 or t_faw <= 0:
            raise TimingViolationError("tRRD and tFAW must be positive")
        if groups < 1:
            raise TimingViolationError("the window needs at least one scope")
        self.t_rrd = t_rrd
        self.t_faw = t_faw
        self.groups = groups
        self._scopes: List[Deque[int]] = [
            deque(maxlen=self.WINDOW) for _ in range(groups)
        ]
        self._last_act = -(10**18)
        self.total_activations = 0

    def set_faw(self, t_faw: int) -> None:
        """Switch the window in force (standard vs aggressive tFAW)."""
        if t_faw <= 0:
            raise TimingViolationError("tFAW must be positive")
        self.t_faw = t_faw

    def earliest(self, count: int, group: int = 0) -> int:
        """Earliest cycle at which ``count`` simultaneous activations are legal.

        Args:
            count: activations issued by the command (1 for ACT, the bank
                group size for G_ACT). Must not exceed the window size —
                more than four truly simultaneous activations can never
                satisfy tFAW.
            group: scope the activations land in (always 0 for the
                channel-wide default).
        """
        if count < 1:
            raise TimingViolationError("an activation command must activate at least one bank")
        if count > self.WINDOW:
            raise TimingViolationError(
                f"{count} simultaneous activations can never satisfy the "
                f"four-activation window"
            )
        bound = self._last_act + self.t_rrd
        # After appending `count` acts at time t, every activation whose
        # WINDOW-previous activation exists must start >= tFAW after it.
        # The binding historical entry for the batch is the one WINDOW-count
        # from the end of history.
        history = list(self._scopes[group])
        if len(history) >= self.WINDOW - count + 1:
            anchor = history[-(self.WINDOW - count + 1)]
            bound = max(bound, anchor + self.t_faw)
        return bound

    def history(self) -> "tuple[tuple[int, ...], int]":
        """Scope 0's recent-activation times and the last activation cycle."""
        return tuple(self._scopes[0]), self._last_act

    def snapshot(self) -> "tuple[tuple[tuple[int, ...], ...], int]":
        """All scopes' recent-activation times and the last activation cycle."""
        return tuple(tuple(scope) for scope in self._scopes), self._last_act

    def fastforward(
        self, recent: "tuple[int, ...]", last_act: int, activations: int
    ) -> None:
        """Jump scope 0 to a known future history (single-scope replay)."""
        self.fastforward_scopes((recent,) + tuple(
            tuple(scope) for scope in self._scopes[1:]
        ), last_act, activations)

    def fastforward_scopes(
        self,
        scopes: "Tuple[Tuple[int, ...], ...]",
        last_act: int,
        activations: int,
    ) -> None:
        """Jump every scope to a known future history (schedule replay)."""
        if len(scopes) != self.groups:
            raise TimingViolationError(
                f"fast-forward carries {len(scopes)} scopes for a window "
                f"tracking {self.groups}"
            )
        self._scopes = [deque(recent, maxlen=self.WINDOW) for recent in scopes]
        self._last_act = last_act
        self.total_activations += activations

    def record(self, at: int, count: int, group: int = 0) -> None:
        """Record ``count`` activations issued at cycle ``at``."""
        if at < self.earliest(count, group):
            raise TimingViolationError(
                f"activation batch at {at} violates tRRD/tFAW; earliest legal "
                f"cycle is {self.earliest(count, group)}"
            )
        for _ in range(count):
            self._scopes[group].append(at)
        self._last_act = at
        self.total_activations += count
