"""Normalized average-power model (Section IV "Average Power Modeling").

The paper's power parameters are proprietary; what it *does* publish is
the construction of Figure 13 and two anchors:

* all-bank COMP consumes ~**4x** the power of reading DRAM at peak
  bandwidth (consecutive column accesses of an open row), and
* Newton averages ~**2.8x** conventional DRAM across the benchmarks.

We therefore model power in units normalized to "conventional DRAM
streaming reads at peak bandwidth ≡ 1.0" and account for exactly the
components the paper lists: compute power in the MACs/adders, PHY
transfer power for what still crosses the external interface (partial
results out, input-vector chunks in), the extra power of holding banks
open longer, activation bursts, and refresh. The free constants below
are fixed once against the two published anchors and never tuned per
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.dram.controller import ControllerStats
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerParams:
    """Per-event energies in (peak-read-power x cycle) units."""

    comp_power_multiplier: float = 4.0
    """Power during an all-bank COMP relative to peak-bandwidth reads
    (published: 'about 4x as much power as Ideal Non-PIM when reading
    DRAM at peak bandwidth')."""

    transfer_energy_per_col: float = 1.0
    """Energy to move one column I/O across the channel + PHY, expressed
    as peak-read power x tCCD (this *defines* the normalization)."""

    activation_energy: float = 4.0
    """Energy per bank activation (row open + restore)."""

    open_bank_power: float = 0.01
    """Background power per open bank (holding pages open)."""

    refresh_power: float = 1.5
    """Power while an all-bank refresh is in flight."""

    idle_power: float = 0.10
    """Background power of the rest of the channel."""


@dataclass(frozen=True)
class PowerReport:
    """Energy breakdown of one run, in normalized units."""

    elapsed_cycles: int
    compute_energy: float
    transfer_energy: float
    activation_energy: float
    open_bank_energy: float
    refresh_energy: float
    idle_energy: float

    @property
    def total_energy(self) -> float:
        """Total normalized energy."""
        return (
            self.compute_energy
            + self.transfer_energy
            + self.activation_energy
            + self.open_bank_energy
            + self.refresh_energy
            + self.idle_energy
        )

    @property
    def average_power(self) -> float:
        """Average power in peak-read units (the Figure 13 y-axis)."""
        if self.elapsed_cycles <= 0:
            return 0.0
        return self.total_energy / self.elapsed_cycles


class PowerModel:
    """Turns controller statistics into a normalized power report."""

    def __init__(self, config: DRAMConfig, timing: TimingParams, params: PowerParams = PowerParams()):
        if params.comp_power_multiplier <= 0:
            raise ConfigurationError("comp_power_multiplier must be positive")
        self.config = config
        self.timing = timing
        self.params = params

    def report(self, stats: ControllerStats, elapsed_cycles: int) -> PowerReport:
        """Energy breakdown for a finished run.

        Compute energy charges each *bank* column access feeding the MACs
        at the published 4x multiplier. The paper's anchor is relative to
        Ideal Non-PIM "reading DRAM at peak bandwidth" — i.e. its total
        average power, activation and background included — so the
        multiplier scales :meth:`conventional_streaming_power`, and is
        divided per bank so a ganged all-bank COMP of one column interval
        burns 4x that power for tCCD cycles.
        """
        p = self.params
        t = self.timing
        banks = self.config.banks_per_channel

        comp_power = p.comp_power_multiplier * self.conventional_streaming_power()
        compute_energy = (
            stats.compute_column_accesses * (comp_power * t.t_ccd) / banks
        )
        transfer_energy = stats.data_transfers * p.transfer_energy_per_col * t.t_ccd
        activation_energy = stats.bank_activations * p.activation_energy
        open_bank_energy = stats.open_bank_cycles * p.open_bank_power
        refresh_energy = stats.refreshes * t.t_rfc * p.refresh_power
        idle_energy = elapsed_cycles * p.idle_power
        return PowerReport(
            elapsed_cycles=elapsed_cycles,
            compute_energy=compute_energy,
            transfer_energy=transfer_energy,
            activation_energy=activation_energy,
            open_bank_energy=open_bank_energy,
            refresh_energy=refresh_energy,
            idle_energy=idle_energy,
        )

    def conventional_streaming_power(self) -> float:
        """Average power of conventional DRAM streaming at peak bandwidth.

        This is the Figure 13 normalization denominator. By construction
        of the units a saturated data bus burns 1.0, and we add the same
        activation, open-bank, and idle components a streaming read
        pattern would incur (one activation per row of one bank at a
        time, that bank open throughout).
        """
        p = self.params
        t = self.timing
        row_cycles = self.config.cols_per_row * t.t_ccd
        per_row = (
            row_cycles * 1.0  # saturated transfers
            + p.activation_energy
            + row_cycles * p.open_bank_power  # one open bank
            + row_cycles * p.idle_power
        )
        return per_row / row_cycles
