"""Refresh scheduling with Newton's delay rule (Section III-E).

Newton's result latch accumulates across an entire DRAM row, so a refresh
maturing mid-row would destroy the open row and the partial result. The
paper's fix: "the memory controller simply waits for the pending refresh
to mature, sends the refresh command, and then sends the Newton command."
:meth:`RefreshScheduler.stall_for_refresh` implements exactly that check
at row-operation granularity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class RefreshScheduler:
    """Tracks refresh deadlines and the stalls they impose."""

    t_refi: int
    t_rfc: int
    enabled: bool = True
    next_due: int = field(init=False)
    refreshes_issued: int = 0
    stall_cycles: int = 0
    log: List[Tuple[int, int]] = field(default_factory=list)
    """(issue_cycle, completion_cycle) of every refresh, for tests."""

    def __post_init__(self) -> None:
        self.next_due = self.t_refi

    def stall_for_refresh(self, now: int, op_duration: int) -> int:
        """Return the cycle at which a row operation of ``op_duration`` may start.

        If a refresh would mature inside ``[now, now + op_duration)``, it
        is performed first and the operation starts after it completes.
        An operation longer than a refresh interval can never be fully
        protected; the protection window is capped at ``tREFI - tRFC``
        and the overflowing refresh is postponed to the next barrier
        (JEDEC permits postponing refreshes), so the average refresh rate
        is always preserved.
        """
        if not self.enabled:
            return now
        start = now
        guard = min(op_duration, self.t_refi - self.t_rfc)
        while self.next_due < start + guard:
            issue_at = max(start, self.next_due)
            done_at = issue_at + self.t_rfc
            self.log.append((issue_at, done_at))
            self.refreshes_issued += 1
            self.stall_cycles += done_at - start
            self.next_due += self.t_refi
            start = done_at
        return start

    def snapshot(self) -> "dict[str, object]":
        """Refresh counters for the telemetry export."""
        return {
            "enabled": self.enabled,
            "refreshes_issued": self.refreshes_issued,
            "stall_cycles": self.stall_cycles,
            "next_due": self.next_due,
        }
