"""Functional data storage for one DRAM bank.

Rows are allocated lazily as uint16 arrays holding bfloat16 bit patterns,
so a 32K-row bank costs memory only for the rows a workload touches.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.dram.config import DRAMConfig
from repro.errors import LayoutError


class BankStorage:
    """Lazily allocated row storage for one bank."""

    def __init__(self, config: DRAMConfig, bank_index: int):
        self.config = config
        self.bank_index = bank_index
        self._rows: Dict[int, np.ndarray] = {}

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.config.rows_per_bank:
            raise LayoutError(
                f"bank {self.bank_index}: row {row} outside "
                f"[0, {self.config.rows_per_bank})"
            )

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.config.cols_per_row:
            raise LayoutError(
                f"bank {self.bank_index}: column {col} outside "
                f"[0, {self.config.cols_per_row})"
            )

    @property
    def allocated_rows(self) -> int:
        """Number of rows currently backed by real arrays."""
        return len(self._rows)

    def row_array(self, row: int) -> np.ndarray:
        """The backing uint16 array for ``row`` (allocating zeros if new)."""
        self._check_row(row)
        arr = self._rows.get(row)
        if arr is None:
            arr = np.zeros(self.config.elems_per_row, dtype=np.uint16)
            self._rows[row] = arr
        return arr

    def write_row(self, row: int, data: np.ndarray) -> None:
        """Overwrite an entire row with bf16 bit patterns."""
        self._check_row(row)
        data = np.ascontiguousarray(data, dtype=np.uint16)
        if data.shape != (self.config.elems_per_row,):
            raise LayoutError(
                f"row write of shape {data.shape}, expected "
                f"({self.config.elems_per_row},)"
            )
        self._rows[row] = data.copy()

    def read_row(self, row: int) -> np.ndarray:
        """Read an entire row (a copy) as bf16 bit patterns."""
        return self.row_array(row).copy()

    def read_col(self, row: int, col: int) -> np.ndarray:
        """Read one column I/O (a sub-chunk of 16 elements)."""
        self._check_col(col)
        k = self.config.elems_per_col
        return self.row_array(row)[col * k : (col + 1) * k].copy()

    def write_col(self, row: int, col: int, data: np.ndarray) -> None:
        """Write one column I/O."""
        self._check_col(col)
        k = self.config.elems_per_col
        data = np.ascontiguousarray(data, dtype=np.uint16)
        if data.shape != (k,):
            raise LayoutError(f"column write of shape {data.shape}, expected ({k},)")
        self.row_array(row)[col * k : (col + 1) * k] = data
