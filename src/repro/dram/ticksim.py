"""A per-cycle ("tick") reference simulator for differential validation.

The production controller computes each command's issue cycle as a
closed-form max over constraints. This module executes the same command
stream the way textbook DRAM simulators do — advancing one cycle at a
time and issuing the head-of-queue command the first cycle every
constraint is satisfied — with the constraints expressed as per-cycle
*predicates* over recorded event times rather than the controller's
incremental bookkeeping.

Because the mechanism is different (polling vs. computation) while the
rules are the same, agreement between the two is meaningful: a mistake
in either engine's handling of, say, the tFAW sliding window or the
auto-precharge timing shows up as a cycle-level divergence.
`tests/dram/test_ticksim.py` pins them identical on the full command
streams Newton generates, for every optimization combination.

The tick loop is O(cycles), so use it on small streams only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError, TimingViolationError

_COLUMN_KINDS = frozenset(
    {
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.COMP,
        CommandKind.COMP_BANK,
        CommandKind.COL_READ,
        CommandKind.COL_READ_ALL,
    }
)
_DATA_KINDS = frozenset(
    {CommandKind.RD, CommandKind.WR, CommandKind.GWRITE, CommandKind.READRES,
     CommandKind.READRES_BANK}
)
_TREE_FEED_KINDS = frozenset(
    {CommandKind.COMP, CommandKind.COMP_BANK, CommandKind.MAC, CommandKind.MAC_ALL}
)


@dataclass
class _TickBank:
    open_row: Optional[int] = None
    act_time: int = -(10**9)
    pre_done: int = 0
    last_col: int = -(10**9)
    wr_recovery_until: int = -(10**9)


class TickSimulator:
    """Issues a command list cycle by cycle under the same timing rules."""

    def __init__(self, config: DRAMConfig, timing: TimingParams, *, aggressive_tfaw: bool):
        self.config = config
        self.timing = timing
        self.faw = timing.faw_window(aggressive_tfaw)

    # ------------------------------------------------------------------

    def _target_banks(self, command: Command) -> Sequence[int]:
        kind = command.kind
        if kind in (CommandKind.G_ACT,):
            size = self.config.bank_group_size
            return range(command.group * size, (command.group + 1) * size)
        if kind in (
            CommandKind.COMP,
            CommandKind.COL_READ_ALL,
        ):
            return range(self.config.banks_per_channel)
        if command.bank is not None:
            return [command.bank]
        return []

    def _can_issue(
        self,
        command: Command,
        now: int,
        banks: List[_TickBank],
        act_history: List[int],
        bus_free: int,
        data_free: int,
        last_tree_feed: int,
    ) -> bool:
        t = self.timing
        kind = command.kind
        if now < bus_free:
            return False
        if kind in (CommandKind.ACT, CommandKind.G_ACT):
            targets = list(self._target_banks(command))
            count = len(targets)
            for b in targets:
                if banks[b].open_row is not None:
                    raise TimingViolationError(f"tick sim: ACT on open bank {b}")
                if now < banks[b].pre_done:
                    return False
            if act_history and now - act_history[-1] < t.t_rrd:
                return False
            # Appending `count` activations at `now`: every new one must
            # start >= tFAW after its fourth-previous activation. The
            # binding anchor is the (4 - count + 1)-th most recent entry.
            back = 4 - count + 1
            if len(act_history) >= back:
                if now - act_history[-back] < self.faw:
                    return False
            return True
        if kind in _COLUMN_KINDS:
            for b in self._target_banks(command):
                bank = banks[b]
                if bank.open_row is None:
                    raise TimingViolationError(f"tick sim: column on closed bank {b}")
                if now < bank.act_time + t.t_rcd:
                    return False
                if now - bank.last_col < t.t_ccd:
                    return False
            if kind in _DATA_KINDS and now + t.t_aa < data_free:
                return False
            return True
        if kind in (CommandKind.GWRITE,):
            return now + t.t_aa >= data_free
        if kind in (CommandKind.READRES, CommandKind.READRES_BANK):
            if now < last_tree_feed + t.t_tree_drain:
                return False
            if kind is CommandKind.READRES_BANK and command.bank is not None:
                if now < banks[command.bank].last_col + t.t_tree_drain:
                    return False
            return now + t.t_aa >= data_free
        if kind in (CommandKind.BUF_READ, CommandKind.MAC, CommandKind.MAC_ALL):
            return True
        if kind is CommandKind.PRE:
            bank = banks[command.bank]
            return (
                now >= bank.act_time + t.t_ras
                and now >= bank.wr_recovery_until
                and now - bank.last_col >= t.t_ccd
            )
        raise ConfigurationError(f"tick sim does not model {kind}")

    def run(self, commands: Sequence[Command], max_cycles: int = 2_000_000) -> List[int]:
        """Issue every command in order; return per-command issue cycles."""
        t = self.timing
        banks = [_TickBank() for _ in range(self.config.banks_per_channel)]
        act_history: List[int] = []
        issues: List[int] = []
        bus_free = 0
        data_free = 0
        last_tree_feed = -(10**9)
        now = 0
        for command in commands:
            while not self._can_issue(
                command, now, banks, act_history, bus_free, data_free,
                last_tree_feed,
            ):
                now += 1
                if now > max_cycles:
                    raise TimingViolationError(
                        f"tick sim: {command.describe()} never became legal"
                    )
            issues.append(now)
            bus_free = now + t.t_cmd
            kind = command.kind
            if kind in (CommandKind.ACT, CommandKind.G_ACT):
                targets = list(self._target_banks(command))
                for b in targets:
                    banks[b].open_row = command.row
                    banks[b].act_time = now
                act_history.extend([now] * len(targets))
            elif kind in _COLUMN_KINDS:
                for b in self._target_banks(command):
                    banks[b].last_col = now
                    if kind is CommandKind.WR:
                        banks[b].wr_recovery_until = now + t.t_wr
                    if command.auto_precharge:
                        ap_at = max(banks[b].act_time + t.t_ras, now + t.t_ccd)
                        ap_at = max(ap_at, banks[b].wr_recovery_until)
                        banks[b].open_row = None
                        banks[b].pre_done = ap_at + t.t_rp
                if kind in _TREE_FEED_KINDS:
                    last_tree_feed = now
                if kind in _DATA_KINDS:
                    data_free = now + t.t_aa + t.t_ccd
            elif kind in (CommandKind.GWRITE, CommandKind.READRES, CommandKind.READRES_BANK):
                data_free = now + t.t_aa + t.t_ccd
            elif kind in (CommandKind.MAC, CommandKind.MAC_ALL):
                last_tree_feed = now
            elif kind is CommandKind.PRE:
                banks[command.bank].open_row = None
                banks[command.bank].pre_done = now + t.t_rp
        return issues
