"""DRAM timing parameters (Table III) for the HBM2E-like configuration.

All values are in command-clock cycles at 1 GHz (1 cycle = 1 ns, see
:mod:`repro.utils.units`). Table III publishes tAA = 22-29 ns,
tRP = 14 ns, tRCD = 14 ns, tRAS = 33 ns and withholds the rest; the
withheld values here are chosen once, inside JEDEC-plausible ranges, so
that the paper's own Section III-F model lands at its published operating
point (o ~= 0.6 at 16 banks => ~10x over Ideal Non-PIM). They are never
tuned per experiment.

Two tFAW values exist: ``t_faw`` is the standard window, and
``t_faw_aim`` is Newton's aggressively reduced window obtained by
strengthening the internal LDO regulator and DC-DC pump drivers
(Section III-D / Figure 6). The ``aggressive_tfaw`` optimization flag
selects which one governs AiM activations.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingParams:
    """A complete set of command-level timing constraints (cycles)."""

    t_rcd: int = 14
    """ACT to column access delay (row to column delay)."""

    t_rp: int = 14
    """Precharge period: PRE to next ACT on the same bank."""

    t_ras: int = 33
    """Minimum ACT to PRE interval on a bank."""

    t_aa: int = 25
    """Column access latency: RD issue to data (Table III: 22-29 ns)."""

    t_ccd: int = 4
    """Column to column delay: one 256-bit column access every tCCD."""

    t_rrd: int = 4
    """ACT to ACT delay between different banks."""

    t_faw: int = 32
    """Four-activation window: standard DRAM value."""

    t_faw_aim: int = 16
    """Four-activation window with Newton's strengthened voltage
    generators (the 'aggressive tFAW' optimization)."""

    t_cmd: int = 4
    """Inter-command delay on the shared command bus (Section III-D:
    'DRAM commands must be separated by a specified delay (e.g., 4
    cycles)'). This is the resource the ganged/complex command
    optimizations conserve."""

    t_wr: int = 12
    """Write recovery: end of write burst to PRE."""

    t_refi: int = 3900
    """Average refresh interval (one REF command every tREFI)."""

    t_rfc: int = 350
    """Refresh cycle time (channel blocked while refreshing)."""

    t_tree_drain: int = 9
    """Adder-tree pipeline drain: last COMP's column access to the result
    latch holding the final accumulation (Section III-D issue (2): 'the
    adder tree takes more than 4 cycles to complete though there is
    pipelining'). Must exceed t_ccd for the paper's statement to hold."""

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigurationError(f"timing parameter {name} must be positive, got {value}")
        if self.t_ras < self.t_rcd:
            raise ConfigurationError("tRAS must cover at least tRCD")
        if self.t_faw < self.t_rrd:
            raise ConfigurationError("tFAW below tRRD is meaningless")
        if self.t_faw_aim > self.t_faw:
            raise ConfigurationError("the aggressive tFAW must not exceed the standard tFAW")
        if self.t_tree_drain <= self.t_ccd:
            raise ConfigurationError(
                "the adder tree drain must take longer than tCCD "
                "(the tree is pipelined but deeper than one column access)"
            )
        if self.t_refi <= self.t_rfc:
            raise ConfigurationError("tREFI must exceed tRFC")

    @property
    def t_rc(self) -> int:
        """Row cycle time (ACT to ACT on the same bank)."""
        return self.t_ras + self.t_rp

    def faw_window(self, aggressive: bool) -> int:
        """The tFAW window in force: aggressive (AiM) or standard."""
        return self.t_faw_aim if aggressive else self.t_faw

    def with_overrides(self, **kwargs: int) -> "TimingParams":
        """Return a copy with the given fields replaced (for sweeps)."""
        return replace(self, **kwargs)


def hbm2e_like_timing() -> TimingParams:
    """The Table III-compatible timing preset used throughout the paper
    reproduction. See the module docstring for the calibration stance."""
    return TimingParams()
