"""Command trace recording.

A :class:`CommandTrace` attached to a controller records every
:class:`~repro.dram.controller.IssueRecord` as it issues — the textual
equivalent of Figure 7's timing diagram. Traces are bounded (a ring of
the most recent records) so tracing a long run cannot exhaust memory.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterable, List, Optional

from repro.dram.commands import CommandKind
from repro.dram.controller import IssueRecord
from repro.errors import ConfigurationError


class CommandTrace:
    """A bounded recorder of issued commands."""

    def __init__(self, capacity: int = 100_000):
        if capacity <= 0:
            raise ConfigurationError("trace capacity must be positive")
        self.capacity = capacity
        self._records: Deque[IssueRecord] = deque(maxlen=capacity)
        self.total_recorded = 0

    def record(self, record: IssueRecord) -> None:
        """Append one issue record (oldest records roll off)."""
        self._records.append(record)
        self.total_recorded += 1

    def __len__(self) -> int:
        return len(self._records)

    @property
    def truncated(self) -> bool:
        """True when old records have rolled off the ring."""
        return self.total_recorded > len(self._records)

    def records(
        self,
        *,
        kinds: Optional[Iterable[CommandKind]] = None,
        since: int = 0,
        predicate: Optional[Callable[[IssueRecord], bool]] = None,
    ) -> List[IssueRecord]:
        """The recorded commands, optionally filtered.

        Args:
            kinds: restrict to these command kinds.
            since: drop records issued before this cycle.
            predicate: arbitrary extra filter.
        """
        kind_set = set(kinds) if kinds is not None else None
        out = []
        for rec in self._records:
            if rec.issue < since:
                continue
            if kind_set is not None and rec.command.kind not in kind_set:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def render(self, limit: int = 200) -> str:
        """A Figure 7-style text timing diagram of the last ``limit`` records."""
        lines = [f"{'cycle':>8}  command"]
        for rec in list(self._records)[-limit:]:
            lines.append(f"{rec.issue:>8}  {rec.command.describe()}")
        if self.truncated:
            lines.insert(1, f"{'...':>8}  ({self.total_recorded - len(self._records)} earlier records dropped)")
        return "\n".join(lines)

    def gaps(self, kind: CommandKind) -> List[int]:
        """Issue-to-issue gaps between consecutive commands of one kind
        (the quantity Figure 7 annotates: tFAW between G_ACTs, tCCD
        between COMPs)."""
        issues = [r.issue for r in self._records if r.command.kind is kind]
        return [b - a for a, b in zip(issues, issues[1:])]
