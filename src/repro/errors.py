"""Exception hierarchy for the Newton reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid DRAM/Newton configuration was supplied."""


class TimingViolationError(ReproError):
    """A command stream violated a DRAM timing constraint.

    The constraint-based controller normally *stalls* commands until they
    are legal; this error is reserved for states that can never become
    legal (e.g. reading a column of a bank with no open row).
    """


class LayoutError(ReproError):
    """A matrix/vector does not fit, or an address fell outside a layout."""


class CapacityError(ReproError):
    """The requested allocation exceeds the device's storage."""


class ProtocolError(ReproError):
    """A Newton command was used in a way the interface forbids.

    Examples: issuing ``COMP`` before the global buffer was loaded, or
    reading a result latch that was never written.
    """


class VerificationError(ReproError):
    """An execution violated a protocol invariant, or a trace could not
    be verified.

    Raised by the :mod:`repro.verify` layer: by the opt-in
    ``NEWTON_CHECK_INVARIANTS=1`` engine hook when the post-hoc trace
    validator finds a timing or semantic protocol violation, and by the
    verifier itself when a trace is unverifiable (e.g. its ring buffer
    overflowed and records were lost).
    """


class TelemetryError(ReproError):
    """A metrics record failed schema validation or internal accounting.

    Raised by :func:`repro.telemetry.validate_metrics` when an exported
    breakdown is malformed — e.g. its attributed cycles do not sum to
    the run's end cycle."""


class ServingError(ReproError):
    """The serving gateway was misconfigured or deadlocked.

    Raised by :mod:`repro.serving`: for invalid gateway/traffic
    configuration (bad trace specs, non-positive windows, unknown SLO
    classes) and by the virtual-time kernel when every task is blocked
    with no timer left to fire (a coordination bug in gateway code)."""


class WorkerError(ReproError):
    """A process-fleet worker failed or died mid-request.

    Raised in the parent by
    :class:`repro.cluster.process_pool.ProcessShardedCluster` with the
    worker's own traceback text attached, so the remote failure reads
    like a local one."""
