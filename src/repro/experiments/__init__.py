"""Experiment harnesses: one module per evaluation table/figure, plus
the extension studies DESIGN.md calls out.

Each module exposes ``run(...) -> <Figure>Result`` whose ``render()``
prints the same rows/series the paper reports. ``runner.main()`` (the
``newton-repro`` console script) regenerates everything.
"""

from repro.experiments import (
    area_budget,
    chunk_width_study,
    energy_efficiency,
    family_study,
    fig8_speedup,
    fig9_ablation,
    fig10_banks,
    fig11_batch_ideal,
    fig12_batch_gpu,
    fig13_power,
    latch_variant,
    mixed_traffic_study,
    model_validation,
    organization_study,
    scrub_overhead,
    sensitivity,
    serving_study,
)

__all__ = [
    "fig8_speedup",
    "fig9_ablation",
    "fig10_banks",
    "fig11_batch_ideal",
    "fig12_batch_gpu",
    "fig13_power",
    "model_validation",
    "latch_variant",
    "area_budget",
    "organization_study",
    "scrub_overhead",
    "mixed_traffic_study",
    "sensitivity",
    "family_study",
    "energy_efficiency",
    "serving_study",
    "chunk_width_study",
]
