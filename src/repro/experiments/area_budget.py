"""Extension: the area-feasibility table behind Section I's claim.

Newton "makes PIM feasible for the first time" because its datapath is
the *only* design point inside DRAM's area budget. This experiment
tabulates the per-channel area overhead of the shipped design, the
Section III-C four-latch variant, the Section III-B column-major
organization, the no-reuse variant's LUT cost, and a prior-work
full-core-per-bank PIM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.dram.area import AREA_BUDGET_FRACTION, AreaModel, AreaReport
from repro.experiments import common
from repro.utils.tables import render_table


@dataclass(frozen=True)
class AreaRow:
    """One design point's area accounting."""

    design: str
    report: AreaReport


@dataclass
class AreaBudgetResult:
    """The area-feasibility table."""

    rows: List[AreaRow] = field(default_factory=list)

    def row(self, design: str) -> AreaRow:
        """Look up one design point."""
        return next(r for r in self.rows if r.design == design)

    def render(self) -> str:
        """The table, with the 25% budget line."""
        table = render_table(
            ["design", "overhead vs bank array", "within 25% budget"],
            [
                (
                    r.design,
                    f"{r.report.overhead_fraction:.1%}",
                    "yes" if r.report.within_budget else "NO",
                )
                for r in self.rows
            ],
            title=(
                "Area feasibility (Section I/III-B): budget = "
                f"{AREA_BUDGET_FRACTION:.0%} of the bank array"
            ),
        )
        return table


def run(banks: int = common.EVAL_BANKS) -> AreaBudgetResult:
    """Build the feasibility table."""
    model = AreaModel(common.eval_config(banks=banks, channels=1))
    result = AreaBudgetResult()
    result.rows.append(AreaRow("Newton (adder tree, 1 latch)", model.newton()))
    result.rows.append(
        AreaRow("Newton + LUT (no-reuse variant)", model.newton(with_lut=True))
    )
    result.rows.append(
        AreaRow("four result latches (Section III-C)", model.newton(latches_per_bank=4))
    )
    result.rows.append(AreaRow("column-major MACs (Section III-B)", model.column_major()))
    result.rows.append(AreaRow("full core per bank (prior PIM)", model.full_core_pim()))
    return result
