"""Extension: the chunk-width tradeoff (Section III-C).

"The wider the chunk the lower the [output] traffic but the more the
input buffering whose cost is amortized over the entire channel by
employing a global buffer." Newton picks the widest possible chunk — a
full DRAM row — because the single shared buffer makes the area cost
negligible. This study sweeps hypothetical chunk widths and tabulates:

* input-buffer bits required (one buffer per channel),
* output-vector read traffic (one READRES per chunk-row per matrix row:
  narrower chunks mean more partial results crossing the interface),
* the buffer's share of the channel's area budget,

reproducing the asymmetry that justifies the DRAM-row-wide choice: the
output traffic falls hyperbolically with width while the buffer area
stays under a tenth of a percent of the channel even at full width.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.dram.area import AreaModel
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import layer_by_name

CHUNK_WIDTHS: Tuple[int, ...] = (32, 64, 128, 256, 512)
"""Hypothetical chunk widths in elements (512 = one DRAM row: Newton)."""


@dataclass(frozen=True)
class ChunkWidthRow:
    """One chunk width's costs for a reference layer."""

    chunk_elems: int
    buffer_bits: int
    output_reads: int
    buffer_area_fraction: float


@dataclass
class ChunkWidthResult:
    """The sweep."""

    layer_name: str = ""
    rows: List[ChunkWidthRow] = field(default_factory=list)

    def output_traffic_hyperbolic(self) -> bool:
        """Doubling the chunk width must halve the output reads."""
        for a, b in zip(self.rows, self.rows[1:]):
            if a.output_reads != 2 * b.output_reads:
                return False
        return True

    def buffer_always_negligible(self) -> bool:
        """Even the full-row buffer is a rounding error of channel area."""
        return all(r.buffer_area_fraction < 0.005 for r in self.rows)

    def render(self) -> str:
        """The sweep as a table."""
        return render_table(
            ["chunk (elems)", "buffer bits", "output reads / input", "buffer area"],
            [
                (
                    r.chunk_elems,
                    r.buffer_bits,
                    r.output_reads,
                    f"{r.buffer_area_fraction:.4%}",
                )
                for r in self.rows
            ],
            title=(
                f"Section III-C chunk-width tradeoff ({self.layer_name}, "
                "per channel)"
            ),
        )


def run(layer_name: str = "GNMTs1", banks: int = common.EVAL_BANKS) -> ChunkWidthResult:
    """Sweep chunk widths for one layer on a single channel's slice."""
    layer = layer_by_name(layer_name)
    config = common.eval_config(banks=banks, channels=1)
    area = AreaModel(config)
    bank_array = area.params.bank_array_units * banks
    result = ChunkWidthResult(layer_name=layer_name)
    for chunk in CHUNK_WIDTHS:
        chunks_per_row = -(-layer.n // chunk)
        # One partial result per (matrix row, chunk) crosses the host
        # interface; a READRES covers `banks` of them at once.
        output_reads = -(-layer.m // banks) * chunks_per_row
        buffer_bits = chunk * config.elem_bits
        buffer_area = buffer_bits * area.params.global_buffer_per_bit
        result.rows.append(
            ChunkWidthRow(
                chunk_elems=chunk,
                buffer_bits=buffer_bits,
                output_reads=output_reads,
                buffer_area_fraction=buffer_area / bank_array,
            )
        )
    return result
