"""Shared experiment plumbing: the paper's evaluation configuration.

Every figure uses the same 24-channel, 16-banks-per-channel HBM2E-like
system (Section V) unless the figure itself sweeps a parameter.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.gpu import GpuModel, titan_v_like
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.core.device import NewtonDevice
from repro.core.optimizations import FULL, OptimizationConfig
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.workloads.spec import BenchmarkLayer

EVAL_CHANNELS = 24
"""The paper's 24-channel evaluation system (Section V-A)."""

EVAL_BANKS = 16
"""Banks per channel in the default configuration (Table III)."""


def eval_config(
    banks: int = EVAL_BANKS, channels: int = EVAL_CHANNELS
) -> DRAMConfig:
    """The Section V evaluation DRAM configuration."""
    return hbm2e_like_config(num_channels=channels, banks_per_channel=banks)


def eval_timing() -> TimingParams:
    """The Table III-compatible timing preset."""
    return hbm2e_like_timing()


def make_device(
    opt: OptimizationConfig = FULL,
    *,
    banks: int = EVAL_BANKS,
    channels: int = EVAL_CHANNELS,
    functional: bool = False,
    refresh_enabled: bool = True,
    timing: Optional[TimingParams] = None,
) -> NewtonDevice:
    """A fresh Newton device in the evaluation configuration."""
    return NewtonDevice(
        eval_config(banks, channels),
        timing if timing is not None else eval_timing(),
        opt,
        functional=functional,
        refresh_enabled=refresh_enabled,
    )


def newton_layer_cycles(
    layer: BenchmarkLayer,
    opt: OptimizationConfig = FULL,
    *,
    banks: int = EVAL_BANKS,
    channels: int = EVAL_CHANNELS,
    refresh_enabled: bool = True,
) -> int:
    """Simulated cycles for one Table II layer on a fresh device."""
    device = make_device(
        opt, banks=banks, channels=channels, refresh_enabled=refresh_enabled
    )
    handle = device.load_matrix(m=layer.m, n=layer.n)
    return device.gemv(handle).cycles


def make_baselines(
    banks: int = EVAL_BANKS, channels: int = EVAL_CHANNELS
) -> "tuple[IdealNonPim, GpuModel]":
    """The two comparison baselines on the same memory system."""
    config = eval_config(banks, channels)
    timing = eval_timing()
    return IdealNonPim(config, timing), titan_v_like(config, timing)
