"""Shared experiment plumbing: the paper's evaluation configuration.

Every figure uses the same 24-channel, 16-banks-per-channel HBM2E-like
system (Section V) unless the figure itself sweeps a parameter.

The module also carries the process-wide :class:`ExperimentContext` —
the ``--backend`` / ``--devices`` / ``--replicas`` selection the
``newton-repro`` CLI propagates into every experiment. Experiments
consult it through :func:`get_context` (or implicitly through
:func:`newton_layer_cycles`, which routes per-layer timing through the
selected backend and device count); the default context reproduces the
paper's single-device cycle-accurate evaluation exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.baselines.gpu import GpuModel, titan_v_like
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.core.device import NewtonDevice
from repro.core.optimizations import FULL, OptimizationConfig
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.errors import ConfigurationError
from repro.workloads.spec import BenchmarkLayer

EVAL_CHANNELS = 24
"""The paper's 24-channel evaluation system (Section V-A)."""

EVAL_BANKS = 16
"""Banks per channel in the default configuration (Table III)."""


@dataclass(frozen=True)
class ExperimentContext:
    """The CLI-selected execution dimensions for an experiment run."""

    backend: str = "newton"
    """Registry name of the execution backend for the Newton side."""
    devices: int = 1
    """Row-shard each layer across this many devices (tensor parallel)."""
    replicas: int = 1
    """Serving-replica count (the serving study's M/D/c fleet size)."""
    workers: str = "inline"
    """Multi-device execution style: ``inline`` composes device
    backends in-process; ``process`` spawns one worker process per
    device (see :mod:`repro.cluster.process_pool`)."""
    placement: str = "auto"
    """Hybrid placement policy for the ``hetero`` backend (``auto`` /
    ``all-newton`` / ``all-gpu``; ignored by the other backends)."""
    gpu_overrides: Tuple[Tuple[str, float], ...] = ()
    """GPU roofline parameter overrides as (name, value) pairs — the
    frozen-dataclass form of the CLI's ``--gpu-*`` knobs (see
    :data:`repro.baselines.gpu.GPU_TUNABLE_FIELDS`)."""

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ConfigurationError("devices must be at least 1")
        if self.replicas < 1:
            raise ConfigurationError("replicas must be at least 1")
        if self.workers not in ("inline", "process"):
            raise ConfigurationError(
                f"workers must be 'inline' or 'process', got {self.workers!r}"
            )
        if self.placement not in ("auto", "all-newton", "all-gpu"):
            raise ConfigurationError(
                "placement must be 'auto', 'all-newton', or 'all-gpu', "
                f"got {self.placement!r}"
            )
        from repro.baselines.gpu import GPU_TUNABLE_FIELDS

        for name, _value in self.gpu_overrides:
            if name not in GPU_TUNABLE_FIELDS:
                raise ConfigurationError(
                    f"unknown GPU override {name!r}; choose from "
                    f"{GPU_TUNABLE_FIELDS}"
                )

    @property
    def is_default(self) -> bool:
        """Whether this is the paper's exact single-device evaluation."""
        return self == ExperimentContext()


_context = ExperimentContext()


def get_context() -> ExperimentContext:
    """The active experiment context (default: the paper's evaluation)."""
    return _context


def set_context(context: Optional[ExperimentContext]) -> ExperimentContext:
    """Install the experiment context (``None`` restores the default).

    Set once per process by the ``newton-repro`` runner (including in
    ``--jobs`` worker processes) before experiments execute.
    """
    global _context
    _context = context if context is not None else ExperimentContext()
    return _context


def context_overrides(
    backend: Optional[str] = None,
    devices: Optional[int] = None,
    replicas: Optional[int] = None,
) -> ExperimentContext:
    """The active context with any explicit per-call overrides applied."""
    context = get_context()
    updates = {}
    if backend is not None:
        updates["backend"] = backend
    if devices is not None:
        updates["devices"] = devices
    if replicas is not None:
        updates["replicas"] = replicas
    return replace(context, **updates) if updates else context


def backend_extra_kwargs(context: ExperimentContext) -> dict:
    """The context's backend-specific registry knobs.

    Only knobs the selected backend understands are forwarded (the
    cycle-accurate backend rejects unknown keywords by design): GPU
    roofline overrides reach ``gpu`` and ``hetero``; the placement
    policy reaches ``hetero``.
    """
    extra: dict = {}
    if context.backend in ("gpu", "hetero") and context.gpu_overrides:
        extra["gpu_overrides"] = dict(context.gpu_overrides)
    if context.backend == "hetero":
        extra["placement"] = context.placement
    return extra


def eval_config(
    banks: int = EVAL_BANKS, channels: int = EVAL_CHANNELS
) -> DRAMConfig:
    """The Section V evaluation DRAM configuration."""
    return hbm2e_like_config(num_channels=channels, banks_per_channel=banks)


def eval_timing() -> TimingParams:
    """The Table III-compatible timing preset."""
    return hbm2e_like_timing()


def make_device(
    opt: OptimizationConfig = FULL,
    *,
    banks: int = EVAL_BANKS,
    channels: int = EVAL_CHANNELS,
    functional: bool = False,
    refresh_enabled: bool = True,
    timing: Optional[TimingParams] = None,
) -> NewtonDevice:
    """A fresh Newton device in the evaluation configuration."""
    return NewtonDevice(
        eval_config(banks, channels),
        timing if timing is not None else eval_timing(),
        opt,
        functional=functional,
        refresh_enabled=refresh_enabled,
    )


def newton_layer_cycles(
    layer: BenchmarkLayer,
    opt: OptimizationConfig = FULL,
    *,
    banks: int = EVAL_BANKS,
    channels: int = EVAL_CHANNELS,
    refresh_enabled: bool = True,
    backend: Optional[str] = None,
    devices: Optional[int] = None,
) -> float:
    """Cycles for one Table II layer on the selected execution backend.

    ``backend``/``devices`` default from the active
    :class:`ExperimentContext`; the default (cycle-accurate ``newton``
    on one device) reproduces the paper's numbers exactly and returns
    the device's integer cycle count.
    """
    context = context_overrides(backend=backend, devices=devices)
    if context.backend == "newton" and context.devices == 1:
        device = make_device(
            opt, banks=banks, channels=channels, refresh_enabled=refresh_enabled
        )
        handle = device.load_matrix(m=layer.m, n=layer.n)
        return device.gemv(handle).cycles
    from repro.backends import make_backend
    from repro.cluster import make_cluster

    kwargs = dict(
        config=eval_config(banks, channels),
        timing=eval_timing(),
        opt=opt,
        functional=False,
        refresh_enabled=refresh_enabled,
        **backend_extra_kwargs(context),
    )
    if context.devices == 1:
        engine = make_backend(context.backend, **kwargs)
    else:
        engine = make_cluster(
            context.backend,
            context.devices,
            workers=context.workers,
            **kwargs,
        )
    handle = engine.load_matrix(m=layer.m, n=layer.n)
    try:
        return engine.service_cycles(handle)
    finally:
        if context.devices > 1 and context.workers == "process":
            engine.close()


def make_baselines(
    banks: int = EVAL_BANKS, channels: int = EVAL_CHANNELS
) -> "tuple[IdealNonPim, GpuModel]":
    """The two comparison baselines on the same memory system."""
    config = eval_config(banks, channels)
    timing = eval_timing()
    return IdealNonPim(config, timing), titan_v_like(config, timing)
