"""The design-space exploration study (``newton-repro design-space``).

Runs the :func:`~repro.explore.space.smoke_space` sweep in-process —
every command family, both bank counts, both shard counts — and renders
the per-workload (cycles x area x power) Pareto fronts. The full
committed sweep lives at ``reports/design-space-canonical.json``
(regenerate with ``newton-repro explore --space canonical --report
reports/design-space-canonical.json``); this experiment is the quick
table-of-record view of the same machinery. See
``docs/design-space-explorer.md``.
"""

from __future__ import annotations

from repro.explore import ExploreOutcome, explore, smoke_space

CANONICAL_REPORT_PATH = "reports/design-space-canonical.json"
"""Repo-relative location of the committed canonical sweep report."""


def run() -> ExploreOutcome:
    """Run the smoke sweep (seconds) and return its outcome."""
    return explore(smoke_space(), jobs=1, seed=0)
