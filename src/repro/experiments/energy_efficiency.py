"""Extension: energy per inference — the Section V-E efficiency claim.

"Newton, which achieves 10x speedup over any non-PIM system, consumes
only 2.8x more power on average ... which illustrates Newton's energy
efficiency." Power x time: Newton's energy per inference is the product
of its (higher) average power and its (much shorter) runtime, against
Ideal Non-PIM streaming the matrix at conventional-DRAM power — while,
as in the paper, the non-PIM side's *compute* and *external transfer*
energy are charged at zero (an advantage for Ideal Non-PIM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.baselines.ideal_nonpim import IdealNonPim
from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.stats import geometric_mean
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


@dataclass(frozen=True)
class EnergyRow:
    """One layer's energy comparison (normalized power x cycles)."""

    layer: str
    newton_energy: float
    ideal_energy: float

    @property
    def efficiency_gain(self) -> float:
        """Ideal Non-PIM energy over Newton energy (>1 = Newton wins)."""
        return self.ideal_energy / self.newton_energy


@dataclass
class EnergyResult:
    """The per-layer energy table."""

    rows: List[EnergyRow] = field(default_factory=list)

    @property
    def gmean_gain(self) -> float:
        """Geometric-mean efficiency gain (paper: speedup/power ~ 3.6x)."""
        return geometric_mean(
            [r.efficiency_gain for r in self.rows], empty=float("nan")
        )

    def render(self) -> str:
        """The table."""
        return render_table(
            ["layer", "Newton energy", "Ideal Non-PIM energy", "Newton gain"],
            [
                (r.layer, round(r.newton_energy), round(r.ideal_energy), r.efficiency_gain)
                for r in self.rows
            ]
            + [("gmean", "", "", self.gmean_gain)],
            title=(
                "Section V-E: energy per inference "
                "(normalized power x cycles, per channel)"
            ),
        )


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> EnergyResult:
    """Compare per-inference energy, Newton vs Ideal Non-PIM."""
    ideal = IdealNonPim(common.eval_config(banks, channels), common.eval_timing())
    result = EnergyResult()
    for layer in TABLE_II_LAYERS:
        device = common.make_device(FULL, banks=banks, channels=channels)
        handle = device.load_matrix(m=layer.m, n=layer.n)
        run_record = device.gemv(handle)
        report = device.power_report()
        conventional = device.conventional_dram_power()
        newton_energy = report.average_power * run_record.cycles
        # Ideal Non-PIM: every channel streams at conventional-DRAM power
        # for the bandwidth-bound runtime; compute/PHY energy charged at
        # zero (an advantage for the baseline). Both sides are
        # per-channel energies over their respective runtimes.
        ideal_energy = conventional * ideal.gemv_cycles(layer.m, layer.n)
        result.rows.append(
            EnergyRow(
                layer=layer.name,
                newton_energy=newton_energy,
                ideal_energy=ideal_energy,
            )
        )
    return result
