"""Extension: Newton across DRAM families (Conclusion / Section III-E).

The paper closes by noting Newton applies "to other DRAMs, including
DDR, LPDDR, and GDDR families" with the MAC count re-rate-matched to
each family's column I/O. This study runs the same layer on every
family preset and reports Newton's speedup over that family's own Ideal
Non-PIM (each family's external bandwidth differs, so the within-family
ratio is the meaningful comparison) alongside the Section III-F model's
prediction for that family's timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.baselines.analytical import AnalyticalModel
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.core.device import NewtonDevice
from repro.core.optimizations import FULL
from repro.dram.families import FAMILIES, FamilyPreset
from repro.utils.tables import render_table
from repro.workloads.catalog import layer_by_name


@dataclass(frozen=True)
class FamilyRow:
    """One family's measurement."""

    family: str
    banks: int
    macs_per_bank: int
    newton_cycles: int
    speedup_vs_ideal: float
    model_prediction: float


@dataclass
class FamilyStudyResult:
    """The cross-family table."""

    layer_name: str = ""
    rows: List[FamilyRow] = field(default_factory=list)

    def every_family_benefits(self) -> bool:
        """Newton must beat the bandwidth bound in every family."""
        return all(r.speedup_vs_ideal > 2.0 for r in self.rows)

    def render(self) -> str:
        """The table."""
        return render_table(
            ["family", "banks", "MACs/bank", "Newton cycles", "vs Ideal", "model"],
            [
                (
                    r.family,
                    r.banks,
                    r.macs_per_bank,
                    r.newton_cycles,
                    r.speedup_vs_ideal,
                    r.model_prediction,
                )
                for r in self.rows
            ],
            title=f"Newton across DRAM families ({self.layer_name})",
        )


def _measure(preset: FamilyPreset, m: int, n: int) -> FamilyRow:
    device = NewtonDevice(preset.config, preset.timing, FULL, functional=False)
    handle = device.load_matrix(m=m, n=n)
    cycles = device.gemv(handle).cycles
    ideal = IdealNonPim(preset.config, preset.timing)
    model = AnalyticalModel(preset.config, preset.timing)
    return FamilyRow(
        family=preset.name,
        banks=preset.config.banks_per_channel,
        macs_per_bank=preset.config.mults_per_bank,
        newton_cycles=cycles,
        speedup_vs_ideal=ideal.gemv_cycles(m, n) / cycles,
        model_prediction=model.predicted_speedup(),
    )


def run(layer_name: str = "GNMTs1") -> FamilyStudyResult:
    """Run the same layer on every family preset."""
    layer = layer_by_name(layer_name)
    result = FamilyStudyResult(layer_name=layer_name)
    for builder in FAMILIES.values():
        result.rows.append(_measure(builder(), layer.m, layer.n))
    return result
