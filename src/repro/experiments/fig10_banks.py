"""Figure 10: sensitivity to the number of banks per channel.

Compute bandwidth scales linearly with banks, but the activation
overheads (``o`` in Section III-F) grow too, so the speedup is sublinear:
the paper reports 28x / 54x / 96x at 8 / 16 / 32 banks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.stats import geometric_mean
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS

BANK_SWEEP: Tuple[int, ...] = (8, 16, 32)


@dataclass
class Fig10Result:
    """Per-layer speedups over the GPU at each bank count."""

    speedups: Dict[int, List[Tuple[str, float]]] = field(default_factory=dict)

    def gmean(self, banks: int) -> float:
        """Geometric-mean speedup at a bank count."""
        return geometric_mean(
            [s for _, s in self.speedups[banks]], empty=float("nan")
        )

    def sublinear(self) -> bool:
        """Doubling banks should help, but by less than 2x (Amdahl)."""
        gains = [self.gmean(b) for b in sorted(self.speedups)]
        return all(
            later > earlier and later < 2.0 * earlier
            for earlier, later in zip(gains, gains[1:])
        )

    def render(self) -> str:
        """Figure 10 as a paper-style table."""
        banks = sorted(self.speedups)
        names = [name for name, _ in self.speedups[banks[0]]]
        rows = []
        for i, name in enumerate(names):
            rows.append([name] + [self.speedups[b][i][1] for b in banks])
        rows.append(["gmean"] + [self.gmean(b) for b in banks])
        return render_table(
            ["layer"] + [f"{b} banks" for b in banks],
            rows,
            title="Figure 10: speedup over GPU vs banks per channel",
        )


def run(channels: int = common.EVAL_CHANNELS) -> Fig10Result:
    """Regenerate Figure 10."""
    result = Fig10Result()
    for banks in BANK_SWEEP:
        _, gpu = common.make_baselines(banks, channels)
        rows = []
        for layer in TABLE_II_LAYERS:
            newton = common.newton_layer_cycles(
                layer, FULL, banks=banks, channels=channels
            )
            rows.append((layer.name, gpu.gemv_cycles(layer.m, layer.n) / newton))
        result.speedups[banks] = rows
    return result
