"""Figure 11: sensitivity to batch size — Newton vs Ideal Non-PIM.

Performance is normalized to the Titan-V-like GPU at batch 1. Newton's
per-input time is constant (its compute cannot exploit batch reuse);
Ideal Non-PIM amortizes the matrix transfer over the batch, so it nearly
catches Newton at k = 8 and is ~1.6x faster at k = 16 — the paper's
crossover, an artifact of its infinite compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS

BATCH_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class BatchRow:
    """Normalized performance (higher is better) at each batch size."""

    layer: str
    newton: Dict[int, float]
    ideal: Dict[int, float]


@dataclass
class Fig11Result:
    """The Figure 11 dataset."""

    rows: List[BatchRow] = field(default_factory=list)
    batches: Tuple[int, ...] = BATCH_SWEEP

    def crossover_batch(self, layer: str) -> int:
        """Smallest batch at which Ideal Non-PIM beats Newton (paper: ~16)."""
        row = next(r for r in self.rows if r.layer == layer)
        for k in self.batches:
            if row.ideal[k] > row.newton[k]:
                return k
        return 0

    def render(self) -> str:
        """Figure 11 as a paper-style table."""
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [f"{row.layer} Newton"] + [row.newton[k] for k in self.batches]
            )
            table_rows.append(
                [f"{row.layer} Ideal"] + [row.ideal[k] for k in self.batches]
            )
        return render_table(
            ["system"] + [f"k={k}" for k in self.batches],
            table_rows,
            title=(
                "Figure 11: per-input performance vs batch size "
                "(normalized to GPU @ k=1)"
            ),
        )


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> Fig11Result:
    """Regenerate Figure 11."""
    ideal, gpu = common.make_baselines(banks, channels)
    result = Fig11Result()
    for layer in TABLE_II_LAYERS:
        gpu_base = gpu.gemv_cycles_per_input(layer.m, layer.n, batch=1)
        newton_cycles = common.newton_layer_cycles(
            layer, FULL, banks=banks, channels=channels
        )
        newton = {}
        ideal_perf = {}
        for k in BATCH_SWEEP:
            # Newton runs the batch back to back: per-input time constant.
            newton[k] = gpu_base / newton_cycles
            ideal_perf[k] = gpu_base / ideal.gemv_cycles_per_input(
                layer.m, layer.n, batch=k
            )
        result.rows.append(
            BatchRow(layer=layer.name, newton=newton, ideal=ideal_perf)
        )
    return result
