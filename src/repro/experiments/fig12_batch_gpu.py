"""Figure 12: sensitivity to batch size — Newton vs the realistic GPU.

Same normalization as Figure 11 (GPU at batch 1 = 1.0). Against the
*realistic* GPU — rather than the infinite-compute ideal — a much larger
batch is needed before caching overtakes Newton: the paper reports the
crossover at batch ≈ 64, and argues batch-8-and-below (edge inference) is
where Newton matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS

BATCH_SWEEP: Tuple[int, ...] = (1, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class BatchRow:
    """Normalized performance (higher is better) at each batch size."""

    layer: str
    newton: Dict[int, float]
    gpu: Dict[int, float]


@dataclass
class Fig12Result:
    """The Figure 12 dataset."""

    rows: List[BatchRow] = field(default_factory=list)
    batches: Tuple[int, ...] = BATCH_SWEEP

    def crossover_batch(self, layer: str) -> int:
        """Smallest batch at which the GPU beats Newton (paper: ~64)."""
        row = next(r for r in self.rows if r.layer == layer)
        for k in self.batches:
            if row.gpu[k] > row.newton[k]:
                return k
        return 0

    def newton_wins_small_batches(self, layer: str, up_to: int = 8) -> bool:
        """Newton should dominate at edge-sized batches (paper's argument)."""
        row = next(r for r in self.rows if r.layer == layer)
        return all(
            row.newton[k] > row.gpu[k] for k in self.batches if k <= up_to
        )

    def render(self) -> str:
        """Figure 12 as a paper-style table."""
        table_rows = []
        for row in self.rows:
            table_rows.append(
                [f"{row.layer} Newton"] + [row.newton[k] for k in self.batches]
            )
            table_rows.append(
                [f"{row.layer} GPU"] + [row.gpu[k] for k in self.batches]
            )
        return render_table(
            ["system"] + [f"k={k}" for k in self.batches],
            table_rows,
            title=(
                "Figure 12: per-input performance vs batch size "
                "(normalized to GPU @ k=1)"
            ),
        )


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> Fig12Result:
    """Regenerate Figure 12."""
    _, gpu = common.make_baselines(banks, channels)
    result = Fig12Result()
    for layer in TABLE_II_LAYERS:
        gpu_base = gpu.gemv_cycles_per_input(layer.m, layer.n, batch=1)
        newton_cycles = common.newton_layer_cycles(
            layer, FULL, banks=banks, channels=channels
        )
        newton = {}
        gpu_perf = {}
        for k in BATCH_SWEEP:
            newton[k] = gpu_base / newton_cycles
            gpu_perf[k] = gpu_base / gpu.gemv_cycles_per_input(
                layer.m, layer.n, batch=k
            )
        result.rows.append(BatchRow(layer=layer.name, newton=newton, gpu=gpu_perf))
    return result
