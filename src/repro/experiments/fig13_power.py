"""Figure 13: average power, normalized to conventional DRAM.

Newton's per-channel average power over each benchmark, divided by the
power of conventional DRAM streaming reads at peak bandwidth (the paper's
normalization). Paper anchors: ~2.8x mean, with all-bank COMP phases
burning ~4x peak-read power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.optimizations import FULL
from repro.dram.power import PowerReport
from repro.experiments import common
from repro.utils.stats import geometric_mean
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


@dataclass(frozen=True)
class PowerRow:
    """One benchmark's normalized average power."""

    layer: str
    normalized_power: float
    report: PowerReport


@dataclass
class Fig13Result:
    """The Figure 13 dataset."""

    rows: List[PowerRow] = field(default_factory=list)

    @property
    def mean_power(self) -> float:
        """Mean normalized power across benchmarks (paper: ~2.8x)."""
        return geometric_mean(
            [r.normalized_power for r in self.rows], empty=float("nan")
        )

    def render(self) -> str:
        """Figure 13 as a paper-style table."""
        return render_table(
            ["layer", "Newton avg power / conventional DRAM"],
            [(r.layer, r.normalized_power) for r in self.rows]
            + [("mean", self.mean_power)],
            title="Figure 13: average power normalized to conventional DRAM",
        )


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> Fig13Result:
    """Regenerate Figure 13."""
    result = Fig13Result()
    for layer in TABLE_II_LAYERS:
        device = common.make_device(FULL, banks=banks, channels=channels)
        handle = device.load_matrix(m=layer.m, n=layer.n)
        device.gemv(handle)
        report = device.power_report()
        baseline = device.conventional_dram_power()
        result.rows.append(
            PowerRow(
                layer=layer.name,
                normalized_power=report.average_power / baseline,
                report=report,
            )
        )
    return result
