"""Figure 8: speedup over the Titan-V-like GPU.

Left section: each Table II layer, with three systems — full Newton,
Non-opt-Newton, and Ideal Non-PIM — plus the geometric mean. Right
section: the four end-to-end models (GNMT, BERT, AlexNet, DLRM).

Paper anchors: Newton 54x gmean (layers), Non-opt-Newton 1.48x, Ideal
Non-PIM 5.4x; Newton is 10x over Ideal Non-PIM; key-target (GNMT, BERT,
DLRM) end-to-end mean 49x; AlexNet end-to-end only 1.2x (conv-bound);
DLRM drops from 70x (single layer, inside the refresh window) to 47x
end-to-end (refresh intervenes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.baselines.gpu import GpuModel
from repro.core.optimizations import FULL, NON_OPT
from repro.experiments import common
from repro.host.pipeline import PipelineModel
from repro.host.runtime import NewtonRuntime
from repro.utils.stats import geometric_mean
from repro.utils.tables import render_table
from repro.workloads.catalog import KEY_TARGET_WORKLOADS, TABLE_II_LAYERS
from repro.workloads.models import END_TO_END_MODELS
from repro.workloads.spec import ModelSpec


@dataclass(frozen=True)
class LayerRow:
    """One Figure 8 layer bar group (speedups over the GPU)."""

    name: str
    newton: float
    non_opt: float
    ideal: float


@dataclass(frozen=True)
class ModelRow:
    """One Figure 8 end-to-end bar (speedup over the GPU)."""

    name: str
    newton: float


@dataclass
class Fig8Result:
    """The full Figure 8 dataset."""

    layer_rows: List[LayerRow] = field(default_factory=list)
    model_rows: List[ModelRow] = field(default_factory=list)

    @property
    def gmean_newton(self) -> float:
        """Per-layer geometric-mean Newton speedup (paper: 54x)."""
        return geometric_mean(
            [r.newton for r in self.layer_rows], empty=float("nan")
        )

    @property
    def gmean_non_opt(self) -> float:
        """Per-layer geometric-mean Non-opt-Newton speedup (paper: 1.48x)."""
        return geometric_mean(
            [r.non_opt for r in self.layer_rows], empty=float("nan")
        )

    @property
    def gmean_ideal(self) -> float:
        """Per-layer geometric-mean Ideal Non-PIM speedup (paper: 5.4x)."""
        return geometric_mean(
            [r.ideal for r in self.layer_rows], empty=float("nan")
        )

    @property
    def newton_over_ideal(self) -> float:
        """Newton's gmean advantage over Ideal Non-PIM (paper: 10x)."""
        return self.gmean_newton / self.gmean_ideal

    @property
    def key_target_mean(self) -> float:
        """End-to-end gmean over GNMT/BERT/DLRM (paper: 49x)."""
        vals = [r.newton for r in self.model_rows if r.name in KEY_TARGET_WORKLOADS]
        return geometric_mean(vals, empty=float("nan"))

    def render(self) -> str:
        """Figure 8 as two paper-style tables."""
        layer_table = render_table(
            ["layer", "Newton", "Non-opt-Newton", "Ideal Non-PIM"],
            [
                (r.name, r.newton, r.non_opt, r.ideal)
                for r in self.layer_rows
            ]
            + [
                ("gmean", self.gmean_newton, self.gmean_non_opt, self.gmean_ideal)
            ],
            title="Figure 8 (left): speedup over Titan-V-like GPU, single layers",
        )
        model_table = render_table(
            ["model", "Newton end-to-end"],
            [(r.name, r.newton) for r in self.model_rows]
            + [("key-target mean", self.key_target_mean)],
            title="Figure 8 (right): end-to-end speedup over the GPU",
        )
        return layer_table + "\n\n" + model_table


def _gpu_model_cycles(spec: ModelSpec, gpu: GpuModel) -> float:
    """GPU end-to-end time: every layer on the GPU."""
    total = 0.0
    for layer in spec.layers:
        if layer.on_newton:
            total += gpu.gemv_cycles(layer.m, layer.n)
        else:
            total += gpu.host_op_cycles(layer.host_flops, layer.host_bytes)
    return total


def run(banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS) -> Fig8Result:
    """Regenerate Figure 8."""
    ideal, gpu = common.make_baselines(banks, channels)
    result = Fig8Result()

    for layer in TABLE_II_LAYERS:
        gpu_cycles = gpu.gemv_cycles(layer.m, layer.n)
        newton = common.newton_layer_cycles(layer, FULL, banks=banks, channels=channels)
        non_opt = common.newton_layer_cycles(layer, NON_OPT, banks=banks, channels=channels)
        ideal_cycles = ideal.gemv_cycles(layer.m, layer.n)
        result.layer_rows.append(
            LayerRow(
                name=layer.name,
                newton=gpu_cycles / newton,
                non_opt=gpu_cycles / non_opt,
                ideal=gpu_cycles / ideal_cycles,
            )
        )

    for name, spec in END_TO_END_MODELS.items():
        device = common.make_device(FULL, banks=banks, channels=channels)
        runtime = NewtonRuntime(
            device, gpu, PipelineModel(device.config, device.timing)
        )
        loaded = runtime.load_model(spec)
        run_record = runtime.run(loaded)
        gpu_total = _gpu_model_cycles(spec, gpu)
        result.model_rows.append(
            ModelRow(name=name, newton=gpu_total / run_record.total_cycles)
        )
    return result
