"""Figure 9: isolating Newton's optimizations.

Starting from Non-opt-Newton, the optimizations are added progressively —
all-bank ganged compute, complex commands, reuse (interleaved layout +
tiling), four-bank ganged activation, aggressive tFAW — and the
geometric-mean speedup over the GPU is reported at every step.

Paper anchors: 1.48x without any optimization; ganging yields the largest
jump (16x command-bandwidth reduction); complex commands a further 3x
command-bandwidth reduction; the ladder ends at the full design's 54x.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.optimizations import figure9_ladder
from repro.experiments import common
from repro.utils.stats import geometric_mean
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


@dataclass(frozen=True)
class LadderRow:
    """One ablation step."""

    step: str
    gmean_speedup: float
    per_layer: "tuple[float, ...]"


@dataclass
class Fig9Result:
    """The Figure 9 ladder."""

    rows: List[LadderRow] = field(default_factory=list)

    def render(self) -> str:
        """Figure 9 as a paper-style table."""
        return render_table(
            ["optimization step", "gmean speedup vs GPU"],
            [(r.step, r.gmean_speedup) for r in self.rows],
            title="Figure 9: isolating Newton's optimizations",
        )

    def monotonically_improves(self) -> bool:
        """Every added optimization should help (the paper's claim)."""
        speeds = [r.gmean_speedup for r in self.rows]
        return all(b >= a for a, b in zip(speeds, speeds[1:]))


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> Fig9Result:
    """Regenerate Figure 9."""
    _, gpu = common.make_baselines(banks, channels)
    result = Fig9Result()
    for step_name, opt in figure9_ladder():
        speedups = []
        for layer in TABLE_II_LAYERS:
            newton = common.newton_layer_cycles(
                layer, opt, banks=banks, channels=channels
            )
            speedups.append(gpu.gemv_cycles(layer.m, layer.n) / newton)
        result.rows.append(
            LadderRow(
                step=step_name,
                gmean_speedup=geometric_mean(speedups, empty=float("nan")),
                per_layer=tuple(speedups),
            )
        )
    return result
