"""Extension: fused-layer execution — what the skipped GWRITEs buy.

When a layer's input vector is already device-resident (the previous
layer's output chained through streaming transforms, a sibling's
identical input still in the global buffer, or the raw result latches),
the session executor (:mod:`repro.host.graph_runtime`) lowers the GEMV
without the host GWRITE round trip: the command stream loses its
``cols / elems_per_col`` GWRITE commands while the functional payloads —
and therefore the outputs — stay bit-identical.

Two regimes, both reported, because the cycle story differs:

* **refresh off** — the command-bus saving is fully visible: fused
  steady-state runs are cheaper by roughly the per-chunk GWRITE command
  cost, per layer.
* **refresh on (default)** — the saving depends on refresh-window
  alignment: when the steady-state run length is pinned to the refresh
  cadence (REF is the long pole), fused and unfused coincide; when the
  shorter fused stream crosses fewer refresh windows, the saving
  *compounds*. Fused is never slower.

The per-shape sweep runs BERT-large's three block shapes on the
cycle-accurate device; the model sweep opens fused and unfused sessions
over whole graphs (a BERT-large slice plus the decode/LoRA scenarios)
and compares end-to-end Newton cycles with refresh off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.experiments import common
from repro.utils.tables import render_table

BLOCK_SHAPES: Tuple[Tuple[str, int, int], ...] = (
    ("BERT qkv/out", 1024, 1024),
    ("BERT ffn-up", 4096, 1024),
    ("BERT ffn-down", 1024, 4096),
)
"""The three GEMV shapes of one BERT-large encoder block."""


@dataclass(frozen=True)
class FusedShapeRow:
    """One shape's steady-state run cycles, fused vs round-trip."""

    name: str
    m: int
    n: int
    unfused_on: float
    fused_on: float
    unfused_off: float
    fused_off: float

    @property
    def saved_off(self) -> float:
        """Cycles the fused lowering saves with refresh off."""
        return self.unfused_off - self.fused_off


@dataclass(frozen=True)
class FusedModelRow:
    """One model graph end-to-end, fused vs unfused sessions."""

    name: str
    steps: int
    fused_gemvs: int
    gemvs: int
    unfused_cycles: float
    fused_cycles: float

    @property
    def saved_fraction(self) -> float:
        if self.unfused_cycles <= 0:
            return 0.0
        return 1.0 - self.fused_cycles / self.unfused_cycles


@dataclass
class FusedLayerResult:
    """Both sweeps."""

    shape_rows: List[FusedShapeRow] = field(default_factory=list)
    model_rows: List[FusedModelRow] = field(default_factory=list)

    def fused_never_slower(self) -> bool:
        """Fused steady state never loses, in either refresh regime."""
        return all(
            r.fused_on <= r.unfused_on and r.fused_off <= r.unfused_off
            for r in self.shape_rows
        )

    def fused_wins_without_refresh(self) -> bool:
        """With refresh off, every shape's fused run is strictly cheaper."""
        return all(r.saved_off > 0 for r in self.shape_rows)

    def render(self) -> str:
        shape_table = render_table(
            [
                "shape",
                "m x n",
                "refresh on: rt / fused",
                "refresh off: rt / fused",
                "saved (off)",
            ],
            [
                (
                    r.name,
                    f"{r.m}x{r.n}",
                    f"{r.unfused_on:,.0f} / {r.fused_on:,.0f}",
                    f"{r.unfused_off:,.0f} / {r.fused_off:,.0f}",
                    f"{r.saved_off:,.0f}",
                )
                for r in self.shape_rows
            ],
            title="Fused GEMV steady state (rt = host round-trip GWRITE)",
        )
        model_table = render_table(
            ["model", "steps", "fused GEMVs", "rt cycles", "fused cycles", "saved"],
            [
                (
                    r.name,
                    r.steps,
                    f"{r.fused_gemvs}/{r.gemvs}",
                    f"{r.unfused_cycles:,.0f}",
                    f"{r.fused_cycles:,.0f}",
                    f"{r.saved_fraction:.2%}",
                )
                for r in self.model_rows
            ],
            title="Session graphs end-to-end (refresh off, bit-identical outputs)",
        )
        notes = (
            f"fused never slower: {self.fused_never_slower()}; "
            "fused strictly cheaper with refresh off: "
            f"{self.fused_wins_without_refresh()}"
        )
        return shape_table + "\n\n" + model_table + "\n" + notes


def _steady_cycles(refresh_enabled: bool, m: int, n: int) -> Tuple[float, float]:
    """(unfused, fused) steady-state run cycles for one shape.

    Each mode gets its own engine (fresh device clock) and is measured
    on its second run — comparing like-for-like steady states rather
    than two refresh phases of one shared clock.
    """
    from repro.backends import make_backend

    cycles = []
    for fused in (False, True):
        engine = make_backend(
            "newton",
            config=common.eval_config(),
            timing=common.eval_timing(),
            functional=False,
            refresh_enabled=refresh_enabled,
        )
        handle = engine.load_matrix(m=m, n=n)
        engine.gemv(handle, fused_input=fused)  # cold: caches warm up
        cycles.append(float(engine.gemv(handle, fused_input=fused).cycles))
        engine.close()
    return cycles[0], cycles[1]


def _session_cycles(spec, steps: int, fused: bool) -> Tuple[float, int, int]:
    """(newton cycles, fused gemvs, gemvs) of one session run."""
    from repro.backends import make_backend

    engine = make_backend(
        "newton",
        config=common.eval_config(),
        timing=common.eval_timing(),
        functional=True,
        refresh_enabled=False,
    )
    session = engine.open_session(spec, fused=fused, seed=0)
    try:
        results = session.run_steps(steps)
    finally:
        session.close()
        engine.close()
    return (
        float(sum(r.newton_cycles for r in results)),
        sum(r.fused_gemvs for r in results),
        sum(r.gemvs for r in results),
    )


def run() -> FusedLayerResult:
    """Both sweeps (single-device; the study is about stream lowering)."""
    from repro.workloads.models import bert_large_model
    from repro.workloads.scenarios import scenario_model

    result = FusedLayerResult()
    for name, m, n in BLOCK_SHAPES:
        unfused_on, fused_on = _steady_cycles(True, m, n)
        unfused_off, fused_off = _steady_cycles(False, m, n)
        result.shape_rows.append(
            FusedShapeRow(
                name=name,
                m=m,
                n=n,
                unfused_on=unfused_on,
                fused_on=fused_on,
                unfused_off=unfused_off,
                fused_off=fused_off,
            )
        )
    models = (
        ("BERT-large (2 blocks)", bert_large_model(blocks=2), 1),
        ("decode (8 tokens)", scenario_model("decode", window=8), 8),
        ("lora (4 steps)", scenario_model("lora"), 4),
    )
    for name, spec, steps in models:
        unfused_cycles, _, gemvs = _session_cycles(spec, steps, False)
        fused_cycles, fused_gemvs, _ = _session_cycles(spec, steps, True)
        result.model_rows.append(
            FusedModelRow(
                name=name,
                steps=steps,
                fused_gemvs=fused_gemvs,
                gemvs=gemvs,
                unfused_cycles=unfused_cycles,
                fused_cycles=fused_cycles,
            )
        )
    return result
