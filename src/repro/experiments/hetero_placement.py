"""Heterogeneous placement on a mixed decode+batch workload (ROADMAP 4).

The headline for the PIM + GPU hybrid: a pipeline interleaving
latency-critical batch-1 decode projections with large batched bulk FFN
stages is run under all three placement policies. ``all-newton`` wins
the decode stages but pays Newton's no-batch-reuse tax on the bulk ones;
``all-gpu`` wins bulk but is bandwidth-starved at batch 1 (the paper's
core argument); ``auto`` — the calibrated cost model plus the placement
DP over measured per-layout costs — takes each stage's better side,
pays its boundary crossings through the double-buffered overlap model,
and ends at or below the best fixed placement *by construction* (the
fixed plans are points in the DP's search space).

The experiment also re-checks the hybrid's functional contract: a
``hetero``-backed session's outputs are bit-identical to an all-Newton
run (the GPU side contributes cycles, never data), and the calibration
residuals on the Table II layers stay within the 15% budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import numpy as np

from repro.experiments.common import eval_config, eval_timing, get_context
from repro.host.hetero import (
    PLACEMENT_POLICIES,
    CalibrationReport,
    CostModel,
    PlacementPlan,
    TransferModel,
    mixed_decode_batch_stages,
    placement_metrics,
    plan_placement,
)
from repro.utils.tables import render_table

BIT_IDENTITY_SHAPE = (64, 48)
"""Matrix shape of the functional bit-identity spot check (small on
purpose: the differential runs a real functional device twice)."""


def check_bit_identity(seed: int = 7, steps: int = 3) -> bool:
    """A hetero-auto GEMV chain produces the same bits as all-Newton.

    Runs the same seeded chain — alternating batch-1 and batched
    dispatches so the auto policy actually exercises both sides —
    through ``hetero``/``auto`` and plain ``newton``, comparing every
    output bit-for-bit.
    """
    from repro.backends import make_backend

    m, n = BIT_IDENTITY_SHAPE
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((m, n)).astype(np.float32)
    vectors = rng.standard_normal((steps, 4, n)).astype(np.float32)

    def outputs(name: str, **kwargs) -> list:
        backend = make_backend(name, functional=True, **kwargs)
        handle = backend.load_matrix(matrix)
        outs = []
        for step in range(steps):
            outs.append(backend.gemv(handle, vectors[step, 0]).output)
            outs.extend(
                run.output
                for run in backend.gemv_batch(handle, vectors[step])
            )
        backend.close()
        return outs

    ours = outputs("hetero", placement="auto")
    reference = outputs("newton")
    return all(
        np.array_equal(a, b) for a, b in zip(ours, reference)
    ) and len(ours) == len(reference)


@dataclass
class HeteroPlacementResult:
    """All three placement plans plus the hybrid's contract checks."""

    calibration: CalibrationReport
    plans: Dict[str, PlacementPlan] = field(default_factory=dict)
    bit_identical: bool = False

    @property
    def auto_not_worse(self) -> bool:
        fixed = min(
            self.plans["all-newton"].total_cycles,
            self.plans["all-gpu"].total_cycles,
        )
        return self.plans["auto"].total_cycles <= fixed + 1e-9

    @property
    def speedup_vs_best_fixed(self) -> float:
        fixed = min(
            self.plans["all-newton"].total_cycles,
            self.plans["all-gpu"].total_cycles,
        )
        return fixed / self.plans["auto"].total_cycles

    def to_metrics(self) -> dict:
        """The ``newton-telemetry/v1`` placement export."""
        record = placement_metrics(self.plans, self.calibration)
        record["bit_identical_vs_all_newton"] = self.bit_identical
        return record

    def render(self) -> str:
        auto = self.plans["auto"]
        stage_rows = [
            (
                p.stage.name,
                f"{p.stage.m}x{p.stage.n}",
                f"{p.stage.batch}",
                p.backend,
                f"{p.compute_cycles:,.0f}",
                f"{p.exposed_transfer_cycles:,.0f}",
                f"{p.prediction_error_pct:.1f}%",
            )
            for p in auto.placements
        ]
        policy_rows = [
            (
                name,
                "+".join(plan.backends_used),
                f"{plan.crossings}",
                f"{plan.total_cycles:,.0f}",
                f"{self.plans['auto'].total_cycles / plan.total_cycles:.3f}x"
                if name != "auto"
                else "1.000x",
            )
            for name, plan in sorted(self.plans.items())
        ]
        calib_rows = [
            (
                row.name,
                f"{row.m}x{row.n}",
                f"{row.measured_cycles:,.0f}",
                f"{row.predicted_cycles:,.0f}",
                f"{row.error_pct:.2f}%",
            )
            for row in self.calibration.rows
        ]
        parts = [
            render_table(
                ["stage", "shape", "batch", "placed", "compute (cyc)",
                 "exposed xfer", "pred err"],
                stage_rows,
                title="Auto placement on the mixed decode+batch pipeline",
            ),
            "",
            render_table(
                ["policy", "backends", "crossings", "total (cyc)",
                 "auto/total"],
                policy_rows,
                title="End-to-end cycles per placement policy",
            ),
            "",
            render_table(
                ["layer", "shape", "measured", "predicted", "error"],
                calib_rows,
                title=(
                    f"Cost-model calibration (scale "
                    f"{self.calibration.scale:.4f}, Table II)"
                ),
            ),
            "",
            (
                f"auto beats best fixed placement by "
                f"{self.speedup_vs_best_fixed:.2f}x "
                f"({'<=' if self.auto_not_worse else 'VIOLATED:'} "
                f"min(all-newton, all-gpu)); calibration max error "
                f"{self.calibration.max_error_pct:.2f}% "
                f"(budget 15%); hetero outputs bit-identical to "
                f"all-newton: {self.bit_identical}"
            ),
        ]
        return "\n".join(parts)


def run() -> HeteroPlacementResult:
    """The ``hetero-placement`` experiment (honors ``--gpu-*`` knobs)."""
    from repro.baselines.gpu import titan_v_like

    context = get_context()
    config = eval_config()
    timing = eval_timing()
    overrides = dict(context.gpu_overrides)
    cost = CostModel(
        config,
        timing,
        gpu_model=(
            titan_v_like(config, timing, **overrides) if overrides else None
        ),
    )
    calibration = cost.calibrate()
    transfer = TransferModel(config, timing)
    stages = mixed_decode_batch_stages()
    plans = {
        policy: plan_placement(stages, cost, transfer, policy=policy)
        for policy in PLACEMENT_POLICIES
    }
    return HeteroPlacementResult(
        calibration=calibration,
        plans=plans,
        bit_identical=check_bit_identity(),
    )
