"""Section III-C's rejected option: four result latches per bank.

The paper explored a middle ground between full input reuse and none:
re-use the buffered input chunk across four matrix rows per bank (four
result latches) with a row-major traversal — avoiding the per-DRAM-row
output traffic while refetching input once every four matrix rows. It
found the full-reuse design "performs virtually similarly ... while
avoiding the latter's extra result latches", and dropped the option.

This extension experiment reproduces that comparison (and includes the
1-latch row-major Newton-no-reuse for scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


@dataclass(frozen=True)
class VariantRow:
    """Cycles per variant for one layer."""

    layer: str
    full_reuse: int
    four_latches: int
    no_reuse: int

    @property
    def four_latch_ratio(self) -> float:
        """Four-latch time over full-reuse time (paper: ~1.0)."""
        return self.four_latches / self.full_reuse


@dataclass
class LatchVariantResult:
    """The latch-variant comparison."""

    rows: List[VariantRow] = field(default_factory=list)

    def render(self) -> str:
        """The comparison table."""
        return render_table(
            ["layer", "full reuse", "4 latches", "no reuse", "4-latch / full"],
            [
                (r.layer, r.full_reuse, r.four_latches, r.no_reuse, r.four_latch_ratio)
                for r in self.rows
            ],
            title="Section III-C: result-latch variants (cycles, lower is better)",
        )


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> LatchVariantResult:
    """Run the three-variant comparison."""
    four_latch = FULL.evolve(interleaved_reuse=False, result_latches=4)
    no_reuse = FULL.evolve(interleaved_reuse=False)
    result = LatchVariantResult()
    for layer in TABLE_II_LAYERS:
        result.rows.append(
            VariantRow(
                layer=layer.name,
                full_reuse=common.newton_layer_cycles(
                    layer, FULL, banks=banks, channels=channels
                ),
                four_latches=common.newton_layer_cycles(
                    layer, four_latch, banks=banks, channels=channels
                ),
                no_reuse=common.newton_layer_cycles(
                    layer, no_reuse, banks=banks, channels=channels
                ),
            )
        )
    return result
