"""Extension: AiM slowdown under interleaved ordinary traffic (§III-D).

"AiM memory can be used as normal memory." This experiment sweeps the
host's mixing ratio — ordinary reads interleaved per tile boundary — and
measures the AiM layer's slowdown, quantifying the cost of treating a
Newton channel as general-purpose memory while it computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.engine import NewtonChannelEngine
from repro.core.layout import partition_rows
from repro.core.optimizations import FULL
from repro.experiments import common
from repro.host.mixed_traffic import NonAimRequest, NonAimTrafficSource
from repro.utils.tables import render_table

MIX_RATIOS: Tuple[int, ...] = (0, 1, 2, 4)
"""Ordinary requests interleaved per tile boundary."""


@dataclass(frozen=True)
class MixRow:
    """One mixing ratio's outcome."""

    per_boundary: int
    aim_cycles: int
    slowdown: float
    non_aim_served: int
    non_aim_worst_latency: int = 0
    """Worst ordinary-read latency (queueing behind AiM tiles included)."""


@dataclass
class MixedTrafficResult:
    """The mixing-ratio sweep for one layer."""

    layer_name: str = ""
    devices: int = 1
    """Device count the layer's rows were sharded across."""
    rows: List[MixRow] = field(default_factory=list)

    def slowdown_monotone(self) -> bool:
        """More interleaved traffic can only slow AiM down."""
        slows = [r.slowdown for r in self.rows]
        return all(b >= a for a, b in zip(slows, slows[1:]))

    def render(self) -> str:
        """The sweep as a table."""
        return render_table(
            [
                "reads per tile boundary",
                "AiM cycles",
                "slowdown",
                "reads served",
                "worst read latency",
            ],
            [
                (
                    r.per_boundary,
                    r.aim_cycles,
                    r.slowdown,
                    r.non_aim_served,
                    r.non_aim_worst_latency,
                )
                for r in self.rows
            ],
            title=(
                f"Section III-D: {self.layer_name} under interleaved "
                "non-AiM traffic"
                + (
                    f" ({self.devices} devices, row-sharded)"
                    if self.devices > 1
                    else ""
                )
            ),
        )


def _run_shard(
    config, timing, m: int, n: int, ratio: int
) -> "Tuple[int, int, int]":
    """One device's shard under the given mixing ratio.

    Returns (aim cycles, ordinary reads served, worst read latency).
    """
    engine = NewtonChannelEngine(
        config, timing, FULL, functional=False, refresh_enabled=True
    )
    layout = engine.add_matrix(m, n)
    traffic = None
    if ratio:
        boundaries = layout.num_chunks * layout.tiles
        # Arrivals paced to the tile cadence (one batch per boundary)
        # so the reported latency is per-request queueing, not the
        # drain time of a single burst.
        tile_cycles = 204
        requests = [
            NonAimRequest(
                bank=i % config.banks_per_channel,
                row=config.rows_per_bank - 1 - (i % 64),
                col=i % config.cols_per_row,
                arrival=(i // ratio) * tile_cycles,
            )
            for i in range(boundaries * ratio)
        ]
        traffic = NonAimTrafficSource(requests, per_boundary=ratio)
    run_record = engine.run_gemv(layout, background=traffic)
    served = traffic.issued if traffic else 0
    worst = max(traffic.latencies) if traffic and traffic.latencies else 0
    return run_record.cycles, served, worst


def run(
    banks: int = common.EVAL_BANKS,
    m: int = 1024,
    n: int = 1024,
    devices: "int | None" = None,
) -> MixedTrafficResult:
    """Sweep the mixing ratio on a BERTs1-shaped layer (single channel,
    where the contention is; other channels behave identically).

    With ``devices > 1`` (defaulted from the CLI context) the layer's
    rows are sharded across that many devices, each fighting its own
    interleaved traffic: AiM time is the slowest shard, reads served are
    summed, and the worst read latency is the fleet-wide maximum.
    """
    devices = common.context_overrides(devices=devices).devices
    config = common.eval_config(banks=banks, channels=1)
    timing = common.eval_timing()
    result = MixedTrafficResult(layer_name=f"{m}x{n}", devices=devices)
    baseline = None
    shards = [(lo, hi) for lo, hi in partition_rows(m, devices) if hi > lo]
    for ratio in MIX_RATIOS:
        per_shard = [
            _run_shard(config, timing, hi - lo, n, ratio) for lo, hi in shards
        ]
        aim_cycles = max(cycles for cycles, _, _ in per_shard)
        if baseline is None:
            baseline = aim_cycles
        result.rows.append(
            MixRow(
                per_boundary=ratio,
                aim_cycles=aim_cycles,
                slowdown=aim_cycles / baseline,
                non_aim_served=sum(served for _, served, _ in per_shard),
                non_aim_worst_latency=max(worst for _, _, worst in per_shard),
            )
        )
    return result
