"""Extension: AiM slowdown under interleaved ordinary traffic (§III-D).

"AiM memory can be used as normal memory." This experiment sweeps the
host's mixing ratio — ordinary reads interleaved per tile boundary — and
measures the AiM layer's slowdown, quantifying the cost of treating a
Newton channel as general-purpose memory while it computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.engine import NewtonChannelEngine
from repro.core.optimizations import FULL
from repro.experiments import common
from repro.host.mixed_traffic import NonAimRequest, NonAimTrafficSource
from repro.utils.tables import render_table

MIX_RATIOS: Tuple[int, ...] = (0, 1, 2, 4)
"""Ordinary requests interleaved per tile boundary."""


@dataclass(frozen=True)
class MixRow:
    """One mixing ratio's outcome."""

    per_boundary: int
    aim_cycles: int
    slowdown: float
    non_aim_served: int
    non_aim_worst_latency: int = 0
    """Worst ordinary-read latency (queueing behind AiM tiles included)."""


@dataclass
class MixedTrafficResult:
    """The mixing-ratio sweep for one layer."""

    layer_name: str = ""
    rows: List[MixRow] = field(default_factory=list)

    def slowdown_monotone(self) -> bool:
        """More interleaved traffic can only slow AiM down."""
        slows = [r.slowdown for r in self.rows]
        return all(b >= a for a, b in zip(slows, slows[1:]))

    def render(self) -> str:
        """The sweep as a table."""
        return render_table(
            [
                "reads per tile boundary",
                "AiM cycles",
                "slowdown",
                "reads served",
                "worst read latency",
            ],
            [
                (
                    r.per_boundary,
                    r.aim_cycles,
                    r.slowdown,
                    r.non_aim_served,
                    r.non_aim_worst_latency,
                )
                for r in self.rows
            ],
            title=(
                f"Section III-D: {self.layer_name} under interleaved "
                "non-AiM traffic"
            ),
        )


def run(banks: int = common.EVAL_BANKS, m: int = 1024, n: int = 1024) -> MixedTrafficResult:
    """Sweep the mixing ratio on a BERTs1-shaped layer (single channel,
    where the contention is; other channels behave identically)."""
    config = common.eval_config(banks=banks, channels=1)
    timing = common.eval_timing()
    result = MixedTrafficResult(layer_name=f"{m}x{n}")
    baseline = None
    for ratio in MIX_RATIOS:
        engine = NewtonChannelEngine(
            config, timing, FULL, functional=False, refresh_enabled=True
        )
        layout = engine.add_matrix(m, n)
        traffic = None
        if ratio:
            boundaries = layout.num_chunks * layout.tiles
            # Arrivals paced to the tile cadence (one batch per boundary)
            # so the reported latency is per-request queueing, not the
            # drain time of a single burst.
            tile_cycles = 204
            requests = [
                NonAimRequest(
                    bank=i % config.banks_per_channel,
                    row=config.rows_per_bank - 1 - (i % 64),
                    col=i % config.cols_per_row,
                    arrival=(i // ratio) * tile_cycles,
                )
                for i in range(boundaries * ratio)
            ]
            traffic = NonAimTrafficSource(requests, per_boundary=ratio)
        run_record = engine.run_gemv(layout, background=traffic)
        if baseline is None:
            baseline = run_record.cycles
        result.rows.append(
            MixRow(
                per_boundary=ratio,
                aim_cycles=run_record.cycles,
                slowdown=run_record.cycles / baseline,
                non_aim_served=traffic.issued if traffic else 0,
                non_aim_worst_latency=(
                    max(traffic.latencies) if traffic and traffic.latencies else 0
                ),
            )
        )
    return result
