"""Section V-A: validating the simple performance model (Section III-F).

The paper plugs Newton's parameters into the closed-form model and finds
the predicted 9.8x speedup over Ideal Non-PIM within 2% of the measured
10x (the residual being refresh, which the model ignores and the
simulator captures). This experiment repeats that comparison: analytical
prediction vs simulated Newton-over-Ideal speedup, per layer and at the
geometric mean, with refresh both on and off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.baselines.analytical import AnalyticalModel
from repro.core.optimizations import FULL
from repro.experiments import common
from repro.utils.stats import geometric_mean
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


@dataclass(frozen=True)
class ValidationRow:
    """Predicted vs measured speedup over Ideal Non-PIM for one layer."""

    layer: str
    predicted: float
    measured: float
    measured_no_refresh: float

    @property
    def error(self) -> float:
        """Relative model error against the refresh-free measurement."""
        return abs(self.predicted - self.measured_no_refresh) / self.measured_no_refresh


@dataclass
class ValidationResult:
    """The model-validation dataset."""

    rows: List[ValidationRow] = field(default_factory=list)
    predicted_gmean: float = 0.0

    @property
    def measured_gmean(self) -> float:
        """Simulated gmean speedup over Ideal Non-PIM (paper: 10x)."""
        return geometric_mean(
            [r.measured for r in self.rows], empty=float("nan")
        )

    @property
    def measured_no_refresh_gmean(self) -> float:
        """Simulated gmean with refresh disabled (the model's world)."""
        return geometric_mean(
            [r.measured_no_refresh for r in self.rows], empty=float("nan")
        )

    def render(self) -> str:
        """The validation table."""
        body = render_table(
            ["layer", "model", "sim", "sim (no refresh)", "error vs no-refresh"],
            [
                (r.layer, r.predicted, r.measured, r.measured_no_refresh, r.error)
                for r in self.rows
            ],
            title=(
                "Section V-A: analytical model vs simulation "
                "(speedup over Ideal Non-PIM)"
            ),
        )
        summary = (
            f"\npredicted (model, one row steady state): {self.predicted_gmean:.2f}x"
            f"\nmeasured gmean: {self.measured_gmean:.2f}x"
            f"\nmeasured gmean without refresh: {self.measured_no_refresh_gmean:.2f}x"
        )
        return body + summary


def run(
    banks: int = common.EVAL_BANKS, channels: int = common.EVAL_CHANNELS
) -> ValidationResult:
    """Run the model-vs-simulation comparison."""
    config = common.eval_config(banks, channels)
    timing = common.eval_timing()
    model = AnalyticalModel(config, timing, aggressive_tfaw=True)
    ideal, _ = common.make_baselines(banks, channels)
    ideal_no_refresh = type(ideal)(config, timing, refresh_enabled=False)

    result = ValidationResult(predicted_gmean=model.predicted_speedup(banks))
    for layer in TABLE_II_LAYERS:
        newton = common.newton_layer_cycles(layer, FULL, banks=banks, channels=channels)
        newton_nr = common.newton_layer_cycles(
            layer, FULL, banks=banks, channels=channels, refresh_enabled=False
        )
        predicted_cycles = model.predicted_layer_cycles(
            layer.m, layer.n, channels=channels
        )
        result.rows.append(
            ValidationRow(
                layer=layer.name,
                predicted=ideal_no_refresh.gemv_cycles(layer.m, layer.n)
                / predicted_cycles,
                measured=ideal.gemv_cycles(layer.m, layer.n) / newton,
                measured_no_refresh=ideal_no_refresh.gemv_cycles(layer.m, layer.n)
                / newton_nr,
            )
        )
    return result
