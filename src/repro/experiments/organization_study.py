"""Extension: adder-tree vs column-major utilization (Section III-B).

Sweeps matrix heights over the Table II range and reports each
organization's multiplier utilization on the paper's aggressive
24-channel system — the quantitative form of the argument that typical
matrix heights (512+) exceed total banks (256-384) but not total lanes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.organization import MacOrganization, OrganizationModel
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS

EXTRA_HEIGHTS: Tuple[int, ...] = (128, 256, 384, 768, 6144)
"""Synthetic heights bracketing the tree/column-major grain sizes."""


@dataclass(frozen=True)
class UtilizationRow:
    """Utilization of both organizations for one matrix height."""

    label: str
    m: int
    tree: float
    column_major: float


@dataclass
class OrganizationResult:
    """The utilization sweep."""

    rows: List[UtilizationRow] = field(default_factory=list)
    total_banks: int = 0
    total_lanes: int = 0

    def tree_always_at_least_as_good(self) -> bool:
        """The Section III-B conclusion over the whole sweep."""
        return all(r.tree >= r.column_major for r in self.rows)

    def render(self) -> str:
        """The sweep as a table."""
        body = render_table(
            ["workload", "matrix rows", "tree util", "column-major util"],
            [(r.label, r.m, r.tree, r.column_major) for r in self.rows],
            title=(
                "Section III-B: multiplier utilization "
                f"({self.total_banks} banks / {self.total_lanes} lanes total)"
            ),
        )
        return body


def run(channels: int = common.EVAL_CHANNELS) -> OrganizationResult:
    """Run the utilization sweep."""
    model = OrganizationModel(common.eval_config(channels=channels))
    result = OrganizationResult(
        total_banks=model.total_banks, total_lanes=model.total_lanes
    )
    for layer in TABLE_II_LAYERS:
        result.rows.append(
            UtilizationRow(
                label=layer.name,
                m=layer.m,
                tree=model.utilization(layer.m, MacOrganization.ADDER_TREE),
                column_major=model.utilization(layer.m, MacOrganization.COLUMN_MAJOR),
            )
        )
    for m in EXTRA_HEIGHTS:
        result.rows.append(
            UtilizationRow(
                label=f"synthetic {m}",
                m=m,
                tree=model.utilization(m, MacOrganization.ADDER_TREE),
                column_major=model.utilization(m, MacOrganization.COLUMN_MAJOR),
            )
        )
    return result
