"""Regenerate every table and figure: the ``newton-repro`` console script."""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.backends import available_backends
from repro.experiments.common import ExperimentContext, set_context
from repro.experiments import (
    area_budget,
    chunk_width_study,
    design_space,
    energy_efficiency,
    family_study,
    fig8_speedup,
    fig9_ablation,
    fig10_banks,
    fig11_batch_ideal,
    fig12_batch_gpu,
    fig13_power,
    fused_layer_study,
    hetero_placement,
    latch_variant,
    mixed_traffic_study,
    model_validation,
    organization_study,
    scrub_overhead,
    sensitivity,
    serving_study,
)

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig8": fig8_speedup.run,
    "fig9": fig9_ablation.run,
    "fig10": fig10_banks.run,
    "fig11": fig11_batch_ideal.run,
    "fig12": fig12_batch_gpu.run,
    "fig13": fig13_power.run,
    "model-validation": model_validation.run,
    "latch-variant": latch_variant.run,
    "area-budget": area_budget.run,
    "organization": organization_study.run,
    "scrub-overhead": scrub_overhead.run,
    "mixed-traffic": mixed_traffic_study.run,
    "sensitivity": sensitivity.run,
    "families": family_study.run,
    "energy": energy_efficiency.run,
    "serving": serving_study.run,
    "serving-gateway": serving_study.run_gateway,
    "chunk-width": chunk_width_study.run,
    "fused-layers": fused_layer_study.run,
    "hetero-placement": hetero_placement.run,
    "design-space": design_space.run,
}


@dataclass
class ExperimentOutcome:
    """One experiment's rendered result (or its failure)."""

    name: str
    elapsed: float
    body: Optional[str] = None
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def render(self) -> str:
        header = (
            f"=== {self.name} ({self.elapsed:.1f}s"
            + (", FAILED" if self.failed else "")
            + ") "
            + "=" * max(0, 50 - len(self.name))
        )
        body = self.body if self.body is not None else self.error
        return header + "\n" + (body or "")


def run_experiment(
    name: str, context: Optional[ExperimentContext] = None
) -> ExperimentOutcome:
    """Run one experiment, capturing any failure instead of raising.

    A single broken figure must not abort a multi-hour ``newton-repro
    all`` sweep: the failure is rendered (with its traceback) in the
    experiment's slot and surfaced through the exit code instead.

    ``context`` (the CLI's ``--backend``/``--devices``/``--replicas``
    selection) is installed process-wide before the experiment executes,
    which is what carries it into ``--jobs`` worker processes.

    Module-level by design so ``--jobs`` can ship it to worker processes.
    """
    started = time.time()
    set_context(context)
    try:
        result = EXPERIMENTS[name]()
        body = result.render()
    except Exception:  # noqa: BLE001 - the whole point is to keep going
        return ExperimentOutcome(
            name=name, elapsed=time.time() - started, error=traceback.format_exc()
        )
    return ExperimentOutcome(name=name, elapsed=time.time() - started, body=body)


PROBE_M, PROBE_N = 256, 2048
"""Shape of the telemetry probe GEMV (one full channel slice, refresh on)."""


def _telemetry_probe() -> dict:
    """One instrumented GEMV whose breakdown anchors the metrics export.

    Experiments run in worker processes and render text tables; the
    probe gives every ``--metrics`` export a schema-validated
    cycle-attribution record (full Newton optimizations, refresh on)
    regardless of which experiments were selected.
    """
    from repro.core.engine import NewtonChannelEngine
    from repro.core.optimizations import FULL
    from repro.dram.config import hbm2e_like_config
    from repro.dram.timing import hbm2e_like_timing
    from repro.telemetry import validate_metrics

    engine = NewtonChannelEngine(
        hbm2e_like_config(), hbm2e_like_timing(), FULL, functional=False
    )
    layout = engine.add_matrix(PROBE_M, PROBE_N)
    result = engine.run_gemv(layout)
    record = engine.collect_metrics(end=result.end_cycle)
    record["probe_shape"] = {"m": PROBE_M, "n": PROBE_N}
    return validate_metrics(record)


def write_metrics(
    outcomes: "List[ExperimentOutcome]",
    path: str,
    context: Optional[ExperimentContext] = None,
) -> None:
    """Export the run's metrics registry (plus the probe) as JSON."""
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    for outcome in outcomes:
        registry.counter("runner.experiments").inc()
        if outcome.failed:
            registry.counter("runner.failed").inc()
        registry.gauge(f"runner.elapsed_s.{outcome.name}").set(outcome.elapsed)
    if context is None:
        context = ExperimentContext()
    registry.section(
        "context",
        {
            "backend": context.backend,
            "devices": context.devices,
            "replicas": context.replicas,
            "workers": context.workers,
        },
    )
    registry.section("probe", _telemetry_probe())
    registry.write_json(path)


def run_verify(count: int, seed: int, report_path: Optional[str]) -> int:
    """The ``newton-repro verify`` subcommand: a differential fuzz campaign.

    Runs ``count`` seeded random cases through every execution tier
    (per-command, burst, fast-path replay, multi-device shard), checks
    each trace against the protocol-invariant catalog and the
    independent cycle oracle, and shrinks any failure to a near-minimal
    reproducer (see :mod:`repro.verify.fuzz`). Exit code 0 iff every
    case passed.
    """
    import json

    from repro.verify.fuzz import fuzz as run_fuzz

    def progress(result) -> None:
        status = "ok" if result.ok else "FAIL"
        print(
            f"[{result.case.index + 1:>3}/{count}] {status}  "
            f"{result.commands} commands, {result.checks} checks  "
            f"({result.case.opt().label}, devices={result.case.devices}"
            + (
                f", graph={result.case.graph}"
                if result.case.graph != "none"
                else ""
            )
            + ")",
            file=sys.stderr,
        )

    report = run_fuzz(count, seed, progress=progress)
    print(report.render())
    if report_path:
        with open(report_path, "w", encoding="utf-8") as f:
            json.dump(report.to_dict(), f, indent=2)
        print(f"wrote fuzz report to {report_path}", file=sys.stderr)
    return 0 if report.ok else 1


def run_explore(args) -> int:
    """The ``newton-repro explore`` subcommand: design-space exploration.

    Enumerates the requested sweep space (a named preset or a JSON spec
    file), prunes invalid points through the config layer's own rules,
    evaluates every valid point on the fast/burst tier across ``--jobs``
    worker processes, and prints the per-workload (cycles x area x
    power) Pareto fronts. ``--report`` writes the ``newton-dse/v1``
    JSON document, which is byte-identical for a fixed space and seed
    regardless of the job count. See ``docs/design-space-explorer.md``.
    """
    from repro.errors import ConfigurationError
    from repro.explore import (
        explore,
        render_cache_stats,
        resolve_space,
        write_report,
    )

    try:
        space = resolve_space(args.space)
    except ConfigurationError as error:
        print(f"explore: {error}", file=sys.stderr)
        return 2
    outcome = explore(space, jobs=args.jobs, seed=args.seed)
    print(outcome.render())
    print(render_cache_stats(outcome.cache_stats), file=sys.stderr)
    if args.report:
        write_report(outcome, args.report)
        print(f"wrote DSE report to {args.report}", file=sys.stderr)
    return 0 if outcome.ok else 1


def run_serve(args, context: ExperimentContext) -> int:
    """The ``newton-repro serve`` subcommand: the live serving gateway.

    Serves the requested traffic trace (an inline ``kind:key=value``
    spec or a ``newton-trace/v1`` JSON file) through a fleet of backend
    replicas with admission control, continuous batching, and — when
    ``--max-replicas`` exceeds ``--replicas`` — SLO-aware autoscaling.
    Prints the per-class latency/goodput report; ``--metrics`` writes
    the full ``newton-telemetry/v1`` export. See
    ``docs/serving-gateway.md``.
    """
    from repro.serving import (
        GatewayConfig,
        ServingGateway,
        backend_replica_factory,
        default_classes,
        resolve_trace_argument,
    )
    from repro.telemetry import MetricsRegistry
    from repro.workloads.catalog import layer_by_name

    from repro.experiments.common import backend_extra_kwargs

    layer = layer_by_name(args.layer)
    factory = backend_replica_factory(
        context.backend,
        devices=context.devices,
        workers=context.workers,
        m=layer.m,
        n=layer.n,
        functional=False,
        **backend_extra_kwargs(context),
    )
    probe = factory()
    service = probe.service_cycles
    probe.close()
    trace = resolve_trace_argument(args.trace, service, context.replicas)
    config = GatewayConfig(
        window_cycles=args.window * service,
        max_batch=args.max_batch,
        queue_depth=args.queue_depth,
        min_replicas=context.replicas,
        max_replicas=max(args.max_replicas or 0, context.replicas),
        classes=default_classes(service, args.slo),
    )
    registry = MetricsRegistry() if args.metrics else None
    gateway = ServingGateway(factory, config, metrics=registry)
    try:
        result = gateway.run(trace)
    finally:
        gateway.close()
    print(result.render())
    if args.metrics:
        registry.section(
            "context",
            {
                "backend": context.backend,
                "devices": context.devices,
                "replicas": context.replicas,
                "workers": context.workers,
                "layer": args.layer,
                "service_cycles": service,
            },
        )
        registry.write_json(args.metrics)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    return 0


def run_scenario(args, context: ExperimentContext) -> int:
    """The ``newton-repro --scenario`` subcommand: session-based graphs.

    Opens a :class:`~repro.host.graph_runtime.GraphSession` over the
    selected backend (or cluster) for one of the LLM-serving scenario
    graphs — ``decode`` (bank-resident KV-cache), ``moe`` (routed
    experts), ``lora`` (low-rank adapters) — and decodes ``--seq-len``
    steps. The fused run is always differentially checked against an
    unfused twin (bit-identity is the contract, not a hope), and decode
    additionally replays the measured per-step service time through the
    serving gateway as a multi-step session traffic class, reporting
    per-step p50/p99. See ``docs/model-graphs.md``.
    """
    import numpy as np

    from repro.backends import make_backend
    from repro.cluster import make_cluster
    from repro.serving import (
        GatewayConfig,
        ServingGateway,
        SLOClass,
        decode_sessions,
    )
    from repro.serving.gateway import FixedServiceReplica
    from repro.serving.traffic import Trace
    from repro.telemetry import MetricsRegistry
    from repro.utils.tables import render_table
    from repro.workloads.scenarios import scenario_model

    kwargs = {"window": args.seq_len} if args.scenario == "decode" else {}
    spec = scenario_model(args.scenario, **kwargs)

    from repro.experiments.common import backend_extra_kwargs

    extra = backend_extra_kwargs(context)

    def build_backend():
        if context.devices > 1:
            return make_cluster(
                context.backend,
                context.devices,
                workers=context.workers,
                functional=True,
                **extra,
            )
        return make_backend(context.backend, functional=True, **extra)

    engine = build_backend()
    session = engine.open_session(spec, fused=args.fused, seed=args.seed)
    placement_record = None
    try:
        results = session.run_steps(args.seq_len)
        kv_bytes_saved = session.kv_bytes_saved
        kv_tokens = session.kv_tokens
        if context.backend == "hetero" and context.devices == 1:
            # The hybrid's placement decisions and prediction errors,
            # captured before the engine is torn down.
            placement_record = engine.collect_metrics()
    finally:
        session.close()
        engine.close()

    # Differential twin with the opposite fusion setting: outputs must
    # be bit-identical (fusion only elides command-bus work).
    twin_engine = build_backend()
    twin = twin_engine.open_session(
        spec, fused=not args.fused, seed=args.seed
    )
    try:
        twin_results = twin.run_steps(args.seq_len)
    finally:
        twin.close()
        twin_engine.close()
    for ours, theirs in zip(results, twin_results):
        if not np.array_equal(ours.output, theirs.output):
            print(
                f"FUSION MISMATCH at step {ours.step_index}: fused and "
                "unfused outputs differ",
                file=sys.stderr,
            )
            return 1

    rows = [
        (
            f"{r.step_index}",
            f"{r.newton_cycles:,.0f}",
            f"{r.host_cycles + r.exposed_pipeline_cycles:,.0f}",
            f"{r.fused_gemvs}/{r.gemvs}",
        )
        for r in results
    ]
    mode = "fused" if args.fused else "unfused"
    print(
        render_table(
            ["step", "newton (cyc)", "host (cyc)", "fused GEMVs"],
            rows,
            title=(
                f"Scenario {args.scenario!r} ({mode}), "
                f"{args.seq_len} steps on {context.backend}"
                + (f" x{context.devices}" if context.devices > 1 else "")
            ),
        )
    )
    total = sum(r.total_cycles for r in results)
    fused_total = sum(r.fused_gemvs for r in results)
    gemv_total = sum(r.gemvs for r in results)
    print(
        f"\ntotal {total:,.0f} cycles; {fused_total}/{gemv_total} GEMVs "
        f"ran with buffer-resident inputs; fused==unfused outputs "
        f"bit-identical over {args.seq_len} steps"
        + (
            f"; KV-cache kept {kv_bytes_saved:,} bytes off the host "
            f"interface ({kv_tokens})"
            if kv_tokens
            else ""
        )
    )

    registry = MetricsRegistry() if args.metrics else None
    gateway_result = None
    if args.scenario == "decode":
        # Per-step latency through the live gateway: sessions are the
        # decode traffic class, each step's deadline its class budget.
        step_cycles = float(
            np.mean([r.total_cycles for r in results])
        )
        config = GatewayConfig(
            max_batch=4,
            min_replicas=context.replicas,
            classes=(
                SLOClass("decode", priority=2, p99_budget=args.slo * step_cycles),
            ),
        )
        gateway = ServingGateway(
            lambda: FixedServiceReplica(step_cycles), config,
            metrics=registry,
        )
        try:
            gateway_result = gateway.run(
                Trace(
                    kind="sessions", seed=args.seed,
                    mean_interarrival=0.0, requests=(),
                ),
                decode_sessions(
                    max(2 * context.replicas, 4),
                    steps=args.seq_len,
                    interarrival=2.0 * step_cycles,
                ),
            )
        finally:
            gateway.close()
        print()
        print(gateway_result.render())
    if registry is not None:
        registry.section(
            "scenario",
            {
                "name": args.scenario,
                "fused": args.fused,
                "seq_len": args.seq_len,
                "backend": context.backend,
                "devices": context.devices,
                "total_cycles": total,
                "fused_gemvs": fused_total,
                "gemvs": gemv_total,
                "kv_bytes_saved": kv_bytes_saved,
            },
        )
        if placement_record is not None:
            registry.section("hetero", placement_record)
        registry.write_json(args.metrics)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    return 0


def main(argv: "list[str] | None" = None) -> int:
    """Run the requested experiments (default: all) and print the tables."""
    parser = argparse.ArgumentParser(
        prog="newton-repro",
        description="Regenerate the Newton paper's evaluation tables/figures.",
        epilog=(
            "environment toggles (boolean: 1/true/yes/on vs 0/false/no/off, "
            "case-insensitive): NEWTON_NO_FASTPATH=1 forces per-command "
            "issue everywhere; NEWTON_TELEMETRY=0 disables cycle-"
            "attribution accounting; NEWTON_CHECK_INVARIANTS=1 validates "
            "every run against the protocol-invariant checker (slow: "
            "forces per-command issue; see docs/verification.md)."
        ),
    )
    # NB: argparse rejects an empty nargs="*" positional when `choices`
    # is set (bpo-27227), so validity is checked by hand below.
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all); one of: "
        f"{', '.join([*EXPERIMENTS, 'all'])} — or a standalone "
        "subcommand: 'verify' (protocol-invariant differential fuzzing; "
        "see --fuzz/--seed/--report and docs/verification.md), "
        "'serve' (the live serving gateway; see --trace/--slo and "
        "docs/serving-gateway.md), or 'explore' (design-space "
        "exploration; see --space/--jobs/--report and "
        "docs/design-space-explorer.md)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also append the rendered tables to this file",
    )
    parser.add_argument(
        "--fuzz",
        type=int,
        default=25,
        metavar="N",
        help="(verify only) number of differential fuzz cases to run "
        "(default 25)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="(verify/explore) base seed: verify derives every fuzz case "
        "from (seed, index) alone; explore stamps the seed into the DSE "
        "report (default 0)",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="(verify/explore) write the run's JSON report: "
        "newton-verify/v1 for verify (the nightly CI artifact), "
        "newton-dse/v1 for explore (byte-identical across --jobs)",
    )
    parser.add_argument(
        "--space",
        metavar="SPEC",
        default="canonical",
        help="(explore only) the sweep space: a named preset "
        "('canonical', 'smoke') or a JSON spec file "
        "(default: canonical; see docs/design-space-explorer.md)",
    )
    parser.add_argument(
        "--trace",
        metavar="SPEC",
        default="poisson:load=0.5,requests=1000",
        help="(serve only) traffic to serve: an inline "
        "'kind:key=value,...' spec (kinds: poisson, diurnal, bursty) "
        "or a newton-trace/v1 JSON file (default: "
        "poisson:load=0.5,requests=1000)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=5.0,
        metavar="X",
        help="(serve only) interactive-class p99 budget as a multiple "
        "of the backend's service time (default 5.0; the bulk class "
        "gets 4x that)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.0,
        metavar="X",
        help="(serve only) continuous-batching window as a multiple of "
        "the service time (default 0: dispatch immediately)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=8,
        metavar="N",
        help="(serve only) largest continuous batch merged into one "
        "gemv_batch dispatch (default 8)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=512,
        metavar="N",
        help="(serve only) admission bound on waiting requests; beyond "
        "it, low-priority work is shed (default 512)",
    )
    parser.add_argument(
        "--max-replicas",
        type=int,
        default=None,
        metavar="N",
        help="(serve only) autoscale ceiling; above --replicas the "
        "gateway scales out when the windowed p99 exceeds the SLO "
        "budget and back in when idle (default: pinned at --replicas)",
    )
    parser.add_argument(
        "--layer",
        default="DLRMs1",
        metavar="NAME",
        help="(serve only) workload layer whose GEMV each request runs "
        "(default DLRMs1)",
    )
    parser.add_argument(
        "--scenario",
        choices=("decode", "moe", "lora"),
        default=None,
        help="run a session-based model-graph scenario instead of "
        "experiments: 'decode' (bank-resident KV-cache, one token per "
        "step), 'moe' (routed experts), 'lora' (low-rank adapters); "
        "honors --backend/--devices/--workers, always differentially "
        "checks fused vs unfused (see docs/model-graphs.md)",
    )
    parser.add_argument(
        "--seq-len",
        type=int,
        default=16,
        metavar="N",
        help="(scenario only) decode steps to run / KV-cache window "
        "(default 16)",
    )
    parser.add_argument(
        "--fused",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="(scenario only) fused execution: chained activations stay "
        "buffer/latch-resident and skip the host GWRITE round trip "
        "(--no-fused pins the per-layer round-trip path; outputs are "
        "bit-identical either way)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments — or N 'explore' sweep chunks — in "
        "parallel worker processes (results are always printed in "
        "selection/enumeration order)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a telemetry JSON export (schema newton-telemetry/v1): "
        "per-experiment timings/failures plus a schema-validated "
        "cycle-attribution probe (see docs/simulator-internals.md)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default="newton",
        help="execution backend for the Newton side of every experiment "
        "(default: the cycle-accurate simulator; see "
        "docs/backends-and-sharding.md)",
    )
    parser.add_argument(
        "--placement",
        choices=("auto", "all-newton", "all-gpu"),
        default="auto",
        help="(hetero backend only) per-dispatch placement policy: "
        "'auto' routes each dispatch to the side the calibrated cost "
        "model finds cheaper; the 'all-*' policies force one side "
        "(see docs/heterogeneous-scheduling.md)",
    )
    for field_name, flag, text in (
        ("gemv_efficiency", "--gpu-gemv-efficiency",
         "achieved bandwidth fraction on batch-1 GEMV"),
        ("batch_decay", "--gpu-batch-decay",
         "per-batch efficiency decay exponent (non-positive)"),
        ("peak_flops_per_cycle", "--gpu-peak-flops",
         "peak fp16 FLOPs per DRAM-command cycle"),
        ("compute_efficiency", "--gpu-compute-efficiency",
         "achieved fraction of peak on dense GEMM"),
        ("kernel_overhead_cycles", "--gpu-kernel-overhead",
         "fixed per-kernel launch cost in cycles"),
        ("saturation_bytes", "--gpu-saturation-bytes",
         "working set needed to saturate the machine"),
    ):
        parser.add_argument(
            flag,
            dest=f"gpu_{field_name}",
            type=float,
            default=None,
            metavar="X",
            help=f"(gpu/hetero backends) GPU roofline override: {text}",
        )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="N",
        help="row-shard each layer across N devices (tensor parallel; "
        "default 1)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=1,
        metavar="N",
        help="serving-replica count for the queueing studies (M/D/c; "
        "default 1)",
    )
    parser.add_argument(
        "--workers",
        choices=("inline", "process"),
        default="inline",
        help="multi-device execution style: 'inline' composes device "
        "backends in-process, 'process' spawns one worker process per "
        "device with shared-memory weight transfer (default: inline)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the selected experiments under cProfile and dump the "
        "top functions by cumulative time to stderr (serial only)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="FILE",
        default=None,
        help="write the cProfile report to FILE instead of stderr "
        "(implies --profile)",
    )
    parser.add_argument(
        "--profile-limit",
        type=int,
        default=30,
        metavar="N",
        help="how many functions the profile report shows (default 30)",
    )
    args = parser.parse_args(argv)
    if args.profile_out:
        args.profile = True
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.profile and args.jobs > 1:
        parser.error(
            "--profile requires serial execution (--jobs 1): cProfile "
            "cannot see into worker processes"
        )
    if args.devices < 1:
        parser.error("--devices must be at least 1")
    if args.replicas < 1:
        parser.error("--replicas must be at least 1")
    from repro.baselines.gpu import GPU_TUNABLE_FIELDS

    gpu_overrides = tuple(
        (name, value)
        for name in GPU_TUNABLE_FIELDS
        if (value := getattr(args, f"gpu_{name}", None)) is not None
    )
    context = ExperimentContext(
        backend=args.backend,
        devices=args.devices,
        replicas=args.replicas,
        workers=args.workers,
        placement=args.placement,
        gpu_overrides=gpu_overrides,
    )
    requested = args.experiments or ["all"]
    if args.scenario is not None:
        if args.experiments:
            parser.error(
                "--scenario is a standalone subcommand; do not mix it "
                "with experiment names"
            )
        if args.seq_len < 1:
            parser.error("--seq-len must be at least 1")
        if args.slo <= 0:
            parser.error("--slo must be positive")
        return run_scenario(args, context)
    if "verify" in requested:
        if requested != ["verify"]:
            parser.error(
                "'verify' is a standalone subcommand; do not mix it with "
                "experiment names"
            )
        if args.fuzz < 1:
            parser.error("--fuzz must be at least 1")
        return run_verify(args.fuzz, args.seed, args.report)
    if "explore" in requested:
        if requested != ["explore"]:
            parser.error(
                "'explore' is a standalone subcommand; do not mix it with "
                "experiment names"
            )
        return run_explore(args)
    if "serve" in requested:
        if requested != ["serve"]:
            parser.error(
                "'serve' is a standalone subcommand; do not mix it with "
                "experiment names"
            )
        if args.max_batch < 1:
            parser.error("--max-batch must be at least 1")
        if args.queue_depth < 1:
            parser.error("--queue-depth must be at least 1")
        if args.window < 0:
            parser.error("--window must be non-negative")
        if args.slo <= 0:
            parser.error("--slo must be positive")
        return run_serve(args, context)
    unknown = [name for name in requested if name not in EXPERIMENTS and name != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join([*EXPERIMENTS, 'all'])}"
        )
    selected = (
        list(EXPERIMENTS)
        if "all" in requested
        else list(dict.fromkeys(requested))
    )

    profiler = None
    try:
        if args.jobs > 1 and len(selected) > 1:
            with ProcessPoolExecutor(
                max_workers=min(args.jobs, len(selected))
            ) as pool:
                # submit everything up front, then drain in selection order:
                # scheduling is parallel, output is deterministic.
                futures = [
                    pool.submit(run_experiment, name, context)
                    for name in selected
                ]
                outcomes = [future.result() for future in futures]
        elif args.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                outcomes = [
                    run_experiment(name, context) for name in selected
                ]
            finally:
                profiler.disable()
        else:
            outcomes = [run_experiment(name, context) for name in selected]
    finally:
        # serial mode installs the context process-wide; don't leak it
        # past the CLI entry point (embedders, the test suite).
        set_context(None)

    sections = []
    for outcome in outcomes:
        section = outcome.render()
        print(section)
        print()
        sections.append(section + "\n")
    failures = [outcome.name for outcome in outcomes if outcome.failed]
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
    if args.out:
        with open(args.out, "a", encoding="utf-8") as f:
            f.write("\n".join(sections))
    if args.metrics:
        write_metrics(outcomes, args.metrics, context)
        print(f"wrote metrics to {args.metrics}", file=sys.stderr)
    if profiler is not None:
        write_profile(profiler, args.profile_out, args.profile_limit)
    return 1 if failures else 0


FUNCTIONAL_PROFILE_FILES = (
    "core/datapath.py",
    "core/mac_unit.py",
    "core/global_buffer.py",
    "host/accumulator.py",
    "numerics/lut.py",
)
"""Source files whose self-time counts as *functional datapath* work
(plus everything under ``repro/numerics/``)."""

TIMING_PROFILE_FILES = (
    "core/schedule_cache.py",
    "core/command_gen.py",
)
"""Source files whose self-time counts as *timing simulation* work
(plus everything under ``repro/dram/``)."""


def profile_split(stats) -> "Dict[str, float]":
    """Bucket a profile's self-time: functional vs timing vs other.

    The data-driven target selector the perf roadmap asks for: whether
    the next optimization should attack the functional datapath
    (:mod:`repro.numerics`, the datapath tiers) or the timing
    simulation (:mod:`repro.dram`, lowering, the schedule cache) is
    read straight off this split instead of guessed. ``stats`` is a
    ``pstats.Stats``; returns seconds of self-time per bucket.
    """
    import os

    buckets = {"functional": 0.0, "timing": 0.0, "other": 0.0}
    for (filename, _lineno, _name), row in stats.stats.items():
        tottime = row[2]
        norm = filename.replace(os.sep, "/")
        if "repro/numerics/" in norm or norm.endswith(
            FUNCTIONAL_PROFILE_FILES
        ):
            buckets["functional"] += tottime
        elif "repro/dram/" in norm or norm.endswith(TIMING_PROFILE_FILES):
            buckets["timing"] += tottime
        else:
            buckets["other"] += tottime
    return buckets


def render_profile_split(buckets: "Dict[str, float]") -> str:
    """The functional/timing split as a small header table."""
    total = sum(buckets.values()) or 1.0
    lines = ["time split (self time):"]
    for label, key in (
        ("functional datapath", "functional"),
        ("timing simulation", "timing"),
        ("other (incl. harness)", "other"),
    ):
        seconds = buckets[key]
        lines.append(
            f"  {label:<22} {seconds:9.3f}s  ({100.0 * seconds / total:5.1f}%)"
        )
    return "\n".join(lines)


def write_profile(
    profiler, path: Optional[str], limit: int
) -> None:
    """Dump a profile report to ``path`` or stderr.

    Leads with the functional-datapath vs timing-simulation self-time
    split (:func:`profile_split`) so target selection is data-driven,
    then the top ``limit`` functions by cumulative time, so the tier
    boundaries (lowering, burst kernel, replay, functional evaluation)
    show up by name.
    """
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    buffer.write(render_profile_split(profile_split(stats)) + "\n\n")
    stats.sort_stats("cumulative").print_stats(limit)
    report = buffer.getvalue()
    if path:
        with open(path, "w", encoding="utf-8") as f:
            f.write(report)
        print(f"wrote profile to {path}", file=sys.stderr)
    else:
        print(report, file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
