"""Regenerate every table and figure: the ``newton-repro`` console script."""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import (
    area_budget,
    chunk_width_study,
    energy_efficiency,
    family_study,
    fig8_speedup,
    fig9_ablation,
    fig10_banks,
    fig11_batch_ideal,
    fig12_batch_gpu,
    fig13_power,
    latch_variant,
    mixed_traffic_study,
    model_validation,
    organization_study,
    scrub_overhead,
    sensitivity,
    serving_study,
)

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig8": fig8_speedup.run,
    "fig9": fig9_ablation.run,
    "fig10": fig10_banks.run,
    "fig11": fig11_batch_ideal.run,
    "fig12": fig12_batch_gpu.run,
    "fig13": fig13_power.run,
    "model-validation": model_validation.run,
    "latch-variant": latch_variant.run,
    "area-budget": area_budget.run,
    "organization": organization_study.run,
    "scrub-overhead": scrub_overhead.run,
    "mixed-traffic": mixed_traffic_study.run,
    "sensitivity": sensitivity.run,
    "families": family_study.run,
    "energy": energy_efficiency.run,
    "serving": serving_study.run,
    "chunk-width": chunk_width_study.run,
}


def main(argv: "list[str] | None" = None) -> int:
    """Run the requested experiments (default: all) and print the tables."""
    parser = argparse.ArgumentParser(
        prog="newton-repro",
        description="Regenerate the Newton paper's evaluation tables/figures.",
    )
    # NB: argparse rejects an empty nargs="*" positional when `choices`
    # is set (bpo-27227), so validity is checked by hand below.
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all); one of: "
        f"{', '.join([*EXPERIMENTS, 'all'])}",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also append the rendered tables to this file",
    )
    args = parser.parse_args(argv)
    requested = args.experiments or ["all"]
    unknown = [name for name in requested if name not in EXPERIMENTS and name != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join([*EXPERIMENTS, 'all'])}"
        )
    selected = (
        list(EXPERIMENTS)
        if "all" in requested
        else list(dict.fromkeys(requested))
    )
    sections = []
    for name in selected:
        started = time.time()
        result = EXPERIMENTS[name]()
        elapsed = time.time() - started
        header = f"=== {name} ({elapsed:.1f}s) " + "=" * max(0, 50 - len(name))
        body = result.render()
        print(header)
        print(body)
        print()
        sections.append(header + "\n" + body + "\n")
    if args.out:
        with open(args.out, "a", encoding="utf-8") as f:
            f.write("\n".join(sections))
    return 0


if __name__ == "__main__":
    sys.exit(main())
