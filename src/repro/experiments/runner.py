"""Regenerate every table and figure: the ``newton-repro`` console script."""

from __future__ import annotations

import argparse
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.experiments import (
    area_budget,
    chunk_width_study,
    energy_efficiency,
    family_study,
    fig8_speedup,
    fig9_ablation,
    fig10_banks,
    fig11_batch_ideal,
    fig12_batch_gpu,
    fig13_power,
    latch_variant,
    mixed_traffic_study,
    model_validation,
    organization_study,
    scrub_overhead,
    sensitivity,
    serving_study,
)

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig8": fig8_speedup.run,
    "fig9": fig9_ablation.run,
    "fig10": fig10_banks.run,
    "fig11": fig11_batch_ideal.run,
    "fig12": fig12_batch_gpu.run,
    "fig13": fig13_power.run,
    "model-validation": model_validation.run,
    "latch-variant": latch_variant.run,
    "area-budget": area_budget.run,
    "organization": organization_study.run,
    "scrub-overhead": scrub_overhead.run,
    "mixed-traffic": mixed_traffic_study.run,
    "sensitivity": sensitivity.run,
    "families": family_study.run,
    "energy": energy_efficiency.run,
    "serving": serving_study.run,
    "chunk-width": chunk_width_study.run,
}


@dataclass
class ExperimentOutcome:
    """One experiment's rendered result (or its failure)."""

    name: str
    elapsed: float
    body: Optional[str] = None
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None

    def render(self) -> str:
        header = (
            f"=== {self.name} ({self.elapsed:.1f}s"
            + (", FAILED" if self.failed else "")
            + ") "
            + "=" * max(0, 50 - len(self.name))
        )
        body = self.body if self.body is not None else self.error
        return header + "\n" + (body or "")


def run_experiment(name: str) -> ExperimentOutcome:
    """Run one experiment, capturing any failure instead of raising.

    A single broken figure must not abort a multi-hour ``newton-repro
    all`` sweep: the failure is rendered (with its traceback) in the
    experiment's slot and surfaced through the exit code instead.

    Module-level by design so ``--jobs`` can ship it to worker processes.
    """
    started = time.time()
    try:
        result = EXPERIMENTS[name]()
        body = result.render()
    except Exception:  # noqa: BLE001 - the whole point is to keep going
        return ExperimentOutcome(
            name=name, elapsed=time.time() - started, error=traceback.format_exc()
        )
    return ExperimentOutcome(name=name, elapsed=time.time() - started, body=body)


def main(argv: "list[str] | None" = None) -> int:
    """Run the requested experiments (default: all) and print the tables."""
    parser = argparse.ArgumentParser(
        prog="newton-repro",
        description="Regenerate the Newton paper's evaluation tables/figures.",
    )
    # NB: argparse rejects an empty nargs="*" positional when `choices`
    # is set (bpo-27227), so validity is checked by hand below.
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"which experiments to run (default: all); one of: "
        f"{', '.join([*EXPERIMENTS, 'all'])}",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also append the rendered tables to this file",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiments in parallel worker processes "
        "(results are always printed in selection order)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    requested = args.experiments or ["all"]
    unknown = [name for name in requested if name not in EXPERIMENTS and name != "all"]
    if unknown:
        parser.error(
            f"unknown experiment(s) {', '.join(unknown)}; "
            f"choose from {', '.join([*EXPERIMENTS, 'all'])}"
        )
    selected = (
        list(EXPERIMENTS)
        if "all" in requested
        else list(dict.fromkeys(requested))
    )

    if args.jobs > 1 and len(selected) > 1:
        with ProcessPoolExecutor(
            max_workers=min(args.jobs, len(selected))
        ) as pool:
            # submit everything up front, then drain in selection order:
            # scheduling is parallel, output is deterministic.
            futures = [pool.submit(run_experiment, name) for name in selected]
            outcomes = [future.result() for future in futures]
    else:
        outcomes = [run_experiment(name) for name in selected]

    sections = []
    for outcome in outcomes:
        section = outcome.render()
        print(section)
        print()
        sections.append(section + "\n")
    failures = [outcome.name for outcome in outcomes if outcome.failed]
    if failures:
        print(
            f"{len(failures)} experiment(s) failed: {', '.join(failures)}",
            file=sys.stderr,
        )
    if args.out:
        with open(args.out, "a", encoding="utf-8") as f:
            f.write("\n".join(sections))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
