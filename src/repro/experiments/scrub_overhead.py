"""Extension: ECC scrub-by-reload overhead (Section III-E).

The paper claims re-loading the matrix from a non-AiM copy "every so
often" (e.g. once per 1000 inputs) costs only "a small bandwidth
overhead". This experiment quantifies it per Table II layer: the reload
time over the external interface, amortized against the simulated
per-inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.optimizations import FULL
from repro.core.scrub import ScrubPolicy
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import TABLE_II_LAYERS


@dataclass(frozen=True)
class ScrubRow:
    """One layer's scrub accounting."""

    layer: str
    inference_cycles: int
    reload_cycles: float
    overhead_fraction: float


@dataclass
class ScrubResult:
    """The scrub-overhead table."""

    inputs_per_scrub: int = 1000
    rows: List[ScrubRow] = field(default_factory=list)

    @property
    def worst_overhead(self) -> float:
        """The largest per-layer overhead fraction."""
        return max(r.overhead_fraction for r in self.rows)

    def render(self) -> str:
        """The table."""
        return render_table(
            ["layer", "inference (cyc)", "reload (cyc)", "overhead"],
            [
                (
                    r.layer,
                    r.inference_cycles,
                    round(r.reload_cycles),
                    f"{r.overhead_fraction:.3%}",
                )
                for r in self.rows
            ],
            title=(
                "Section III-E: matrix reload (ECC scrub) every "
                f"{self.inputs_per_scrub} inputs"
            ),
        )


def run(
    banks: int = common.EVAL_BANKS,
    channels: int = common.EVAL_CHANNELS,
    inputs_per_scrub: int = 1000,
) -> ScrubResult:
    """Quantify the scrub overhead per Table II layer."""
    policy = ScrubPolicy(inputs_per_scrub=inputs_per_scrub)
    config = common.eval_config(banks, channels)
    timing = common.eval_timing()
    bytes_per_cycle = config.num_channels * config.col_io_bytes / timing.t_ccd
    result = ScrubResult(inputs_per_scrub=inputs_per_scrub)
    for layer in TABLE_II_LAYERS:
        inference = common.newton_layer_cycles(
            layer, FULL, banks=banks, channels=channels
        )
        reload_cycles = policy.reload_cycles(layer.matrix_bytes, bytes_per_cycle)
        result.rows.append(
            ScrubRow(
                layer=layer.name,
                inference_cycles=inference,
                reload_cycles=reload_cycles,
                overhead_fraction=policy.overhead_fraction(
                    layer.matrix_bytes, bytes_per_cycle, inference
                ),
            )
        )
    return result
