"""Extension: timing-parameter sensitivity ablations.

DESIGN.md calls out the design choices worth sweeping beyond the paper's
own figures:

* **refresh on/off** — how much of Newton's time refresh costs (the
  paper's model/simulation residual);
* **command-bus inter-command delay** — the resource the ganged/complex
  commands conserve: the full design should be nearly insensitive, the
  de-optimized design acutely sensitive (the whole point of the
  interface optimizations);
* **tFAW value** — the continuous version of the aggressive-tFAW step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.optimizations import FULL, NON_OPT
from repro.experiments import common
from repro.utils.tables import render_table
from repro.workloads.catalog import layer_by_name

COMMAND_GAPS: Tuple[int, ...] = (2, 4, 8)
FAW_VALUES: Tuple[int, ...] = (8, 16, 24, 32)


@dataclass(frozen=True)
class SensitivityRow:
    """One swept point."""

    parameter: str
    value: int
    full_cycles: int
    non_opt_cycles: int


@dataclass
class SensitivityResult:
    """The sweeps, on the GNMTs1 layer."""

    rows: List[SensitivityRow] = field(default_factory=list)
    refresh_on_cycles: int = 0
    refresh_off_cycles: int = 0

    def series(self, parameter: str) -> List[SensitivityRow]:
        """One parameter's sweep."""
        return [r for r in self.rows if r.parameter == parameter]

    def full_design_insensitive_to_command_gap(self) -> bool:
        """Full Newton is command-bandwidth light: doubling the gap from
        the default must cost it far less than it costs Non-opt-Newton."""
        gaps = self.series("t_cmd")
        full_span = gaps[-1].full_cycles / gaps[0].full_cycles
        non_opt_span = gaps[-1].non_opt_cycles / gaps[0].non_opt_cycles
        return non_opt_span > 1.5 * full_span

    @property
    def refresh_cost_fraction(self) -> float:
        """Fraction of Newton's time spent on refresh."""
        return 1.0 - self.refresh_off_cycles / self.refresh_on_cycles

    def render(self) -> str:
        """Both sweeps plus the refresh cost."""
        body = render_table(
            ["parameter", "value", "Newton cycles", "Non-opt cycles"],
            [
                (r.parameter, r.value, r.full_cycles, r.non_opt_cycles)
                for r in self.rows
            ],
            title="Timing sensitivity on GNMTs1 (24 channels)",
        )
        return (
            body
            + f"\nrefresh cost: {self.refresh_cost_fraction:.2%} of Newton's time "
            f"({self.refresh_on_cycles} vs {self.refresh_off_cycles} cycles)"
        )


def run(channels: int = common.EVAL_CHANNELS) -> SensitivityResult:
    """Run the sweeps."""
    layer = layer_by_name("GNMTs1")
    result = SensitivityResult()

    for gap in COMMAND_GAPS:
        timing = common.eval_timing().with_overrides(t_cmd=gap)
        result.rows.append(
            SensitivityRow(
                parameter="t_cmd",
                value=gap,
                full_cycles=_cycles(layer, FULL, timing, channels),
                non_opt_cycles=_cycles(layer, NON_OPT, timing, channels),
            )
        )
    for faw in FAW_VALUES:
        timing = common.eval_timing().with_overrides(t_faw_aim=min(faw, 32), t_faw=32)
        result.rows.append(
            SensitivityRow(
                parameter="t_faw_aim",
                value=faw,
                full_cycles=_cycles(layer, FULL, timing, channels),
                non_opt_cycles=_cycles(layer, NON_OPT, timing, channels),
            )
        )

    result.refresh_on_cycles = common.newton_layer_cycles(
        layer, FULL, channels=channels, refresh_enabled=True
    )
    result.refresh_off_cycles = common.newton_layer_cycles(
        layer, FULL, channels=channels, refresh_enabled=False
    )
    return result


def _cycles(layer, opt, timing, channels) -> int:
    device = common.make_device(opt, channels=channels, timing=timing)
    handle = device.load_matrix(m=layer.m, n=layer.n)
    return device.gemv(handle).cycles
