"""Extension: tail latency under load — the edge-serving argument.

Sweeps a Poisson request stream over a DLRM recommendation layer served
batch-1 by Newton and by the Titan-V-like GPU. The same ~60x service-time
gap becomes a ~60x sustainable-throughput gap at bounded p99 — the
quantitative form of the paper's small-batch edge motivation.

:func:`run_gateway` (the ``serving-gateway`` experiment) replays the
same load sweep through the *live* gateway (:mod:`repro.serving`) in
its degenerate no-batching configuration and cross-checks the measured
percentiles against this offline M/D/c model at matched load — the two
implementations must agree, or one of them is wrong.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.optimizations import FULL
from repro.experiments import common
from repro.host.serving import ServingResult, ServingSimulator
from repro.utils.tables import render_table
from repro.workloads.catalog import layer_by_name

LOAD_SWEEP: Tuple[float, ...] = (0.005, 0.01, 0.05, 0.2, 0.5, 0.8)
"""Offered load as a fraction of Newton's capacity."""


@dataclass(frozen=True)
class ServingRow:
    """One arrival rate's tail latencies (cycles)."""

    newton_load: float
    newton: ServingResult
    gpu: Optional[ServingResult]
    """None when the batch-1 GPU is past saturation at this rate."""
    gpu_batched: Optional[ServingResult] = None
    """The GPU batching requests in latency windows (its real recourse);
    None when even batching cannot keep up."""


@dataclass
class ServingStudyResult:
    """The load sweep."""

    layer_name: str = ""
    newton_service: float = 0.0
    gpu_service: float = 0.0
    backend: str = "newton"
    devices: int = 1
    replicas: int = 1
    rows: List[ServingRow] = field(default_factory=list)

    @property
    def service_ratio(self) -> float:
        """GPU service time over Newton's (the per-request speedup)."""
        return self.gpu_service / self.newton_service

    def gpu_saturation_load(self) -> float:
        """Newton-relative load at which the GPU server saturates."""
        return self.newton_service / self.gpu_service

    def render(self) -> str:
        """The sweep as a table."""
        rows = []
        for row in self.rows:
            gpu_p99 = f"{row.gpu.p99:,.0f}" if row.gpu is not None else "saturated"
            batched = (
                f"{row.gpu_batched.p99:,.0f}"
                if row.gpu_batched is not None
                else "saturated"
            )
            rows.append(
                (
                    f"{row.newton_load:.3f}",
                    f"{row.newton.p99:,.0f}",
                    gpu_p99,
                    batched,
                )
            )
        body = render_table(
            [
                "offered load (of Newton)",
                "Newton p99 (cyc)",
                "GPU p99 (cyc)",
                "GPU+batching p99 (cyc)",
            ],
            rows,
            title=(
                f"Edge serving, {self.layer_name}: Poisson arrivals, "
                "batch-1 Newton vs GPU (with and without batching windows)"
            ),
        )
        footer = (
            f"\nservice times: Newton {self.newton_service:.0f} vs GPU "
            f"{self.gpu_service:.0f} cycles ({self.service_ratio:.0f}x); "
            f"GPU saturates at {self.gpu_saturation_load():.3f} of Newton's capacity"
        )
        if self.backend != "newton" or self.devices != 1 or self.replicas != 1:
            footer += (
                f"\nexecution: backend={self.backend}, devices={self.devices} "
                f"(sharded), replicas={self.replicas} (M/D/c fleet)"
            )
        return body + footer


def run(
    layer_name: str = "DLRMs1",
    banks: int = common.EVAL_BANKS,
    channels: int = common.EVAL_CHANNELS,
    requests: int = 2000,
    backend: "str | None" = None,
    devices: "int | None" = None,
    replicas: "int | None" = None,
) -> ServingStudyResult:
    """Run the load sweep for one layer.

    ``backend``/``devices`` select the Newton-side execution engine
    (service time from the sharded cluster's slowest shard when
    ``devices > 1``); ``replicas`` turns the Newton queue into an
    N-replica M/D/c fleet draining one shared FIFO. All three default
    from the CLI's :class:`~repro.experiments.common.ExperimentContext`.
    The GPU comparison serves the *same absolute arrival rate* on a
    single batch-1 (and batching) server, so the rate scales with the
    replica count.
    """
    context = common.context_overrides(
        backend=backend, devices=devices, replicas=replicas
    )
    layer = layer_by_name(layer_name)
    _, gpu = common.make_baselines(banks, channels)
    newton_service = common.newton_layer_cycles(
        layer,
        FULL,
        banks=banks,
        channels=channels,
        backend=context.backend,
        devices=context.devices,
    )
    gpu_service = gpu.gemv_cycles(layer.m, layer.n)
    result = ServingStudyResult(
        layer_name=layer_name,
        newton_service=newton_service,
        gpu_service=gpu_service,
        backend=context.backend,
        devices=context.devices,
        replicas=context.replicas,
    )

    def gpu_batch_service(k: int) -> float:
        return gpu.gemv_cycles(layer.m, layer.n, batch=k)

    for load in LOAD_SWEEP:
        sim = ServingSimulator(newton_service, seed=7, servers=context.replicas)
        newton = sim.simulate(load, requests)
        gpu_sim = ServingSimulator(gpu_service, seed=7)
        # The GPU serves the same absolute request rate the Newton fleet
        # sees: load is fleet-relative, so the rate grows with replicas.
        gpu_load = load * gpu_service / newton_service * context.replicas
        gpu_result = (
            gpu_sim.simulate(gpu_load, requests) if gpu_load < 0.95 else None
        )
        # Batching windows of ~2 GPU service times: the GPU's standard
        # throughput recourse. Even so, heavy loads overwhelm it once the
        # 64-batch reuse ceiling is reached.
        batched = gpu_sim.simulate_batched(
            gpu_load, window_cycles=2 * gpu_service,
            batch_service=gpu_batch_service, requests=requests,
        )
        if batched.p99 > 50 * gpu_service:
            batched = None  # backlog diverges: effectively saturated
        result.rows.append(
            ServingRow(
                newton_load=load, newton=newton, gpu=gpu_result,
                gpu_batched=batched,
            )
        )
    return result


# ----------------------------------------------------------------------
# gateway mode: the live serving layer vs the offline model

GATEWAY_LOADS: Tuple[float, ...] = (0.2, 0.5, 0.8)
"""Loads the gateway cross-check replays (the offline sweep's core)."""


@dataclass(frozen=True)
class GatewayRow:
    """One load's offline-vs-gateway comparison (cycles)."""

    load: float
    offline_p99: float
    gateway_p99: float
    gateway_mean_batch: float

    @property
    def p99_error(self) -> float:
        """Relative disagreement between model and gateway."""
        return abs(self.gateway_p99 - self.offline_p99) / self.offline_p99


@dataclass
class GatewayStudyResult:
    """The gateway-vs-model cross-check plus one batching showcase."""

    layer_name: str = ""
    service_cycles: float = 0.0
    replicas: int = 1
    requests: int = 0
    rows: List[GatewayRow] = field(default_factory=list)
    batched_p99: float = 0.0
    """p99 of the same 0.8-load stream served with continuous batching
    (window of two service times, batch cap 8)."""
    batched_mean_batch: float = 0.0

    @property
    def max_p99_error(self) -> float:
        return max(row.p99_error for row in self.rows)

    def render(self) -> str:
        rows = [
            (
                f"{row.load:.2f}",
                f"{row.offline_p99:,.0f}",
                f"{row.gateway_p99:,.0f}",
                f"{100 * row.p99_error:.2f}%",
            )
            for row in self.rows
        ]
        body = render_table(
            ["offered load", "offline p99 (cyc)", "gateway p99 (cyc)", "error"],
            rows,
            title=(
                f"Serving gateway vs offline M/D/c, {self.layer_name}: "
                f"{self.replicas} replica(s), {self.requests} requests"
            ),
        )
        footer = (
            f"\nmax p99 disagreement {100 * self.max_p99_error:.2f}% "
            f"(acceptance bound 15%); continuous batching at load 0.8 "
            f"(window 2x service, batch<=8): p99 {self.batched_p99:,.0f} "
            f"cycles at mean batch {self.batched_mean_batch:.2f}"
        )
        return body + footer


def run_gateway(
    layer_name: str = "DLRMs1",
    banks: int = common.EVAL_BANKS,
    channels: int = common.EVAL_CHANNELS,
    requests: int = 2000,
    backend: "str | None" = None,
    devices: "int | None" = None,
    replicas: "int | None" = None,
) -> GatewayStudyResult:
    """The ``serving-gateway`` experiment: live gateway vs offline model.

    For each load, the offline :class:`ServingSimulator` and the
    :class:`~repro.serving.ServingGateway` (window 0, batch 1 — the
    M/D/c discipline) serve the *same* seeded Poisson arrival stream;
    their p99s must agree within the 15% acceptance bound (they agree
    exactly, by construction). A final continuous-batching run at 0.8
    load shows what the gateway adds over the offline model.
    """
    from repro.serving import (
        FixedServiceReplica,
        GatewayConfig,
        ServingGateway,
        SLOClass,
        interarrival_for_load,
        poisson_trace,
    )

    context = common.context_overrides(
        backend=backend, devices=devices, replicas=replicas
    )
    layer = layer_by_name(layer_name)
    service = common.newton_layer_cycles(
        layer,
        FULL,
        banks=banks,
        channels=channels,
        backend=context.backend,
        devices=context.devices,
    )
    servers = context.replicas
    result = GatewayStudyResult(
        layer_name=layer_name,
        service_cycles=service,
        replicas=servers,
        requests=requests,
    )
    classes = (SLOClass("interactive", p99_budget=float("inf")),)
    for load in GATEWAY_LOADS:
        offline = ServingSimulator(service, seed=7, servers=servers).simulate(
            load, requests
        )
        trace = poisson_trace(
            interarrival_for_load(service, load, servers), requests, seed=7
        )
        gateway = ServingGateway(
            lambda: FixedServiceReplica(service),
            GatewayConfig(
                window_cycles=0.0,
                max_batch=1,
                min_replicas=servers,
                classes=classes,
            ),
        )
        measured = gateway.run(trace)
        result.rows.append(
            GatewayRow(
                load=load,
                offline_p99=offline.p99,
                gateway_p99=measured.p99,
                gateway_mean_batch=measured.mean_batch,
            )
        )
    trace = poisson_trace(
        interarrival_for_load(service, 0.8, servers), requests, seed=7
    )
    batched = ServingGateway(
        lambda: FixedServiceReplica(service),
        GatewayConfig(
            window_cycles=2 * service,
            max_batch=8,
            min_replicas=servers,
            classes=classes,
        ),
    ).run(trace)
    result.batched_p99 = batched.p99
    result.batched_mean_batch = batched.mean_batch
    return result
