"""Design-space exploration over the simulator's architecture knobs.

The explorer enumerates a declarative sweep space (:mod:`.space`),
prunes invalid points through the config layer's own rate-matching and
timing rules, evaluates every surviving point on the fast/burst tier —
sharing the per-layout schedule cache across points with identical
architecture — and reports the (cycles x area x power) Pareto front per
workload as a versioned ``newton-dse/v1`` JSON document
(:mod:`.explorer`). See ``docs/design-space-explorer.md``.
"""

from repro.explore.explorer import (
    DSE_SCHEMA,
    ExploreOutcome,
    PointResult,
    PruneRecord,
    classify_points,
    explore,
    point_arch,
    render_cache_stats,
    report_bytes,
    write_report,
)
from repro.explore.pareto import dominates, pareto_front
from repro.explore.space import (
    AXIS_DEFAULTS,
    NAMED_SPACES,
    SweepSpace,
    Workload,
    canonical_space,
    resolve_space,
    smoke_space,
)

__all__ = [
    "AXIS_DEFAULTS",
    "DSE_SCHEMA",
    "ExploreOutcome",
    "NAMED_SPACES",
    "PointResult",
    "PruneRecord",
    "SweepSpace",
    "Workload",
    "canonical_space",
    "classify_points",
    "dominates",
    "explore",
    "pareto_front",
    "point_arch",
    "render_cache_stats",
    "report_bytes",
    "resolve_space",
    "smoke_space",
    "write_report",
]
