"""Point evaluation, process fan-out, and the ``newton-dse/v1`` report.

Every valid point is evaluated on the fast/burst execution tier
(``functional=False`` — the sweep measures timing, area, and power, not
outputs). Points whose architecture (config + timing + opt) is
identical share one :class:`~repro.core.schedule_cache.ScheduleCache`:
segment keys are command-content interned and signatures are relative,
so tile schedules recorded while evaluating one point replay in the
next point's engine. The cache-sharing counters are returned on the
:class:`ExploreOutcome` (and surfaced through telemetry by the bench
harness) but deliberately **excluded** from the JSON report — the split
of work across ``--jobs`` worker processes changes the hit counts while
every metric stays identical, and the report is required to be
byte-identical across job counts.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.engine import NewtonChannelEngine
from repro.core.optimizations import OptimizationConfig
from repro.core.schedule_cache import ScheduleCache
from repro.dram.area import AreaModel
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.errors import ConfigurationError
from repro.explore.pareto import pareto_front
from repro.explore.space import SweepSpace
from repro.utils.tables import render_table

DSE_SCHEMA = "newton-dse/v1"
"""Schema stamp of the explorer's JSON report."""

SWEEP_ROWS_PER_BANK = 256
"""Rows per bank for sweep evaluation: the workloads are far smaller
than a real bank, and a small storage keeps point setup cheap."""


def point_arch(
    params: Dict[str, object],
) -> Tuple[DRAMConfig, TimingParams, OptimizationConfig]:
    """Build a point's architecture, or raise :class:`ConfigurationError`.

    This is the pruning boundary: the config layer's own validation
    (rate matching, bank grouping, tFAW ordering, the latch/traversal
    coupling, family preconditions) decides validity, and the raised
    message becomes the report's prune reason.
    """
    family = str(params["family"])
    latches = int(params["latches"])
    shards = int(params["shards"])
    if shards < 1:
        raise ConfigurationError("shards must be at least 1")
    if family != "newton" and latches != 1:
        raise ConfigurationError(
            "rival command families are specified against the single-latch "
            "adder tree; multi-latch variants only exist for the newton "
            "row-major traversal"
        )
    config = DRAMConfig(
        num_channels=1,
        banks_per_channel=int(params["banks"]),
        rows_per_bank=SWEEP_ROWS_PER_BANK,
        cols_per_row=int(params["cols_per_row"]),
        col_io_bits=int(params["col_io_bits"]),
        command_family=family,
    )
    timing = hbm2e_like_timing().with_overrides(
        t_faw=int(params["t_faw"]), t_faw_aim=int(params["t_faw_aim"])
    )
    # One latch <=> the interleaved full-reuse traversal; four latches
    # <=> the Section III-C row-major partial-reuse variant. The config
    # layer enforces the coupling, so the sweep axis is just `latches`.
    interleaved = latches == 1
    if family == "output_stationary" and not interleaved:
        raise ConfigurationError(
            "the output_stationary family requires the interleaved traversal"
        )
    opt = OptimizationConfig(
        ganged_compute=True,
        complex_commands=True,
        interleaved_reuse=interleaved,
        four_bank_activation=True,
        aggressive_tfaw=True,
        result_latches=latches,
    )
    return config, timing, opt


@dataclass(frozen=True)
class PointResult:
    """One valid point's evaluated metrics (all minimized)."""

    index: int
    params: Dict[str, object]
    metrics: Dict[str, Dict[str, float]]
    """``{workload: {"cycles": ..., "area": ..., "power": ...}}``."""

    def metric_tuple(self, workload: str) -> Tuple[float, float, float]:
        m = self.metrics[workload]
        return (m["cycles"], m["area"], m["power"])


@dataclass(frozen=True)
class PruneRecord:
    """One enumerated point the config layer rejected, and why."""

    index: int
    params: Dict[str, object]
    reason: str


def classify_points(
    space: SweepSpace,
) -> Tuple[List[int], List[PruneRecord]]:
    """Split the enumeration into valid indices and prune records.

    Architecture construction only — no engines run — so this is cheap
    enough for the space tests and for sizing a sweep before launching.
    """
    valid: List[int] = []
    pruned: List[PruneRecord] = []
    for index, params in enumerate(space.points()):
        try:
            point_arch(params)
        except ConfigurationError as error:
            pruned.append(
                PruneRecord(index=index, params=params, reason=str(error))
            )
        else:
            valid.append(index)
    return valid, pruned


def _arch_key(
    config: DRAMConfig, timing: TimingParams, opt: OptimizationConfig
) -> tuple:
    """Hashable architecture identity for schedule-cache sharing."""
    return (repr(config), repr(timing), repr(opt))


def evaluate_chunk(
    space_payload: dict, indices: List[int]
) -> Tuple[List[PointResult], List[PruneRecord], Dict[str, int]]:
    """Evaluate a contiguous run of enumeration indices.

    Module-level so ``--jobs`` can ship it to worker processes. Each
    chunk keeps one :class:`ScheduleCache` per distinct architecture:
    points that differ only in trailing axes (``shards``, workload) are
    adjacent in enumeration order, so contiguous chunking preserves
    nearly all of the serial run's cross-point replay.
    """
    space = SweepSpace.from_dict(space_payload)
    all_points = space.points()
    caches: Dict[tuple, ScheduleCache] = {}
    results: List[PointResult] = []
    pruned: List[PruneRecord] = []
    engines = 0
    for index in indices:
        params = all_points[index]
        try:
            config, timing, opt = point_arch(params)
        except ConfigurationError as error:
            pruned.append(
                PruneRecord(index=index, params=params, reason=str(error))
            )
            continue
        cache = caches.setdefault(_arch_key(config, timing, opt), ScheduleCache())
        shards = int(params["shards"])
        area_fraction = (
            AreaModel(config)
            .newton(
                latches_per_bank=int(params["latches"]),
                # The row-major traversal and the output-stationary
                # dataflow both emit unreduced partials: they carry the
                # activation LUT; the interleaved Newton path does not.
                with_lut=(
                    not opt.interleaved_reuse
                    or config.command_family == "output_stationary"
                ),
                aggressive_tfaw=opt.aggressive_tfaw,
            )
            .overhead_fraction
        )
        metrics: Dict[str, Dict[str, float]] = {}
        for workload in space.workloads:
            m_shard = (workload.m + shards - 1) // shards
            engine = NewtonChannelEngine(
                config,
                timing,
                opt,
                functional=False,
                refresh_enabled=True,
                fast=True,
                telemetry=False,
                schedule_cache=cache,
            )
            engines += 1
            layout = engine.add_matrix(m_shard, workload.n)
            run = engine.run_gemv(layout)
            metrics[workload.name] = {
                # Latency of the slowest (equal) shard; silicon and
                # power scale with the device count.
                "cycles": int(run.end_cycle),
                "area": area_fraction * shards,
                "power": engine.power_report().average_power * shards,
            }
        results.append(
            PointResult(index=index, params=params, metrics=metrics)
        )
    cache_stats = {
        "hits": sum(c.hits for c in caches.values()),
        "misses": sum(c.misses for c in caches.values()),
        "replayed_commands": sum(c.replayed_commands for c in caches.values()),
        "engines": engines,
        "arches": len(caches),
    }
    return results, pruned, cache_stats


def build_report(
    space: SweepSpace,
    results: List[PointResult],
    pruned: List[PruneRecord],
    seed: int,
) -> dict:
    """Assemble the ``newton-dse/v1`` document (deterministic content).

    No timestamps, no host identity, no cache counters: the same space
    and seed must serialize to the same bytes regardless of ``--jobs``.
    """
    fronts = {}
    for workload in space.workloads:
        front = pareto_front(
            results, key=lambda r: r.metric_tuple(workload.name)
        )
        fronts[workload.name] = sorted(results[i].index for i in front)
    return {
        "schema": DSE_SCHEMA,
        "seed": seed,
        "space": space.to_dict(),
        "enumerated_points": space.size,
        "valid_points": len(results),
        "families_evaluated": sorted(
            {str(r.params["family"]) for r in results}
        ),
        "points": [
            {"id": r.index, "params": r.params, "metrics": r.metrics}
            for r in results
        ],
        "pruned": [
            {"id": p.index, "params": p.params, "reason": p.reason}
            for p in pruned
        ],
        "pareto": fronts,
    }


def report_bytes(report: dict) -> bytes:
    """The report's canonical serialization (the byte-identity contract)."""
    return (
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    ).encode("utf-8")


@dataclass
class ExploreOutcome:
    """A finished sweep: the report plus out-of-band run telemetry."""

    space: SweepSpace
    report: dict
    cache_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.report["valid_points"] > 0

    def render(self) -> str:
        sections = [
            f"design-space sweep {self.space.name!r}: "
            f"{self.report['valid_points']}/{self.report['enumerated_points']} "
            f"points valid ({len(self.report['pruned'])} pruned), families: "
            f"{', '.join(self.report['families_evaluated']) or 'none'}"
        ]
        by_id = {p["id"]: p for p in self.report["points"]}
        for workload in self.space.workloads:
            front_ids = self.report["pareto"][workload.name]
            rows = []
            for point_id in front_ids:
                point = by_id[point_id]
                params, metrics = point["params"], point["metrics"][workload.name]
                rows.append(
                    (
                        f"{point_id}",
                        str(params["family"]),
                        f"{params['banks']}",
                        f"{params['latches']}",
                        f"{params['shards']}",
                        f"{metrics['cycles']:,}",
                        f"{metrics['area']:.3f}",
                        f"{metrics['power']:.2f}",
                    )
                )
            sections.append(
                render_table(
                    [
                        "id",
                        "family",
                        "banks",
                        "latches",
                        "shards",
                        "cycles",
                        "area",
                        "power",
                    ],
                    rows,
                    title=(
                        f"Pareto front, workload {workload.name!r} "
                        f"({workload.m}x{workload.n}; minimize "
                        "cycles/area/power)"
                    ),
                )
            )
        return "\n\n".join(sections)


def explore(
    space: SweepSpace, *, jobs: int = 1, seed: int = 0
) -> ExploreOutcome:
    """Run the sweep and build the report.

    ``jobs == 1`` evaluates in-process (maximal cache sharing, and the
    path the cache-audit test inspects); ``jobs > 1`` splits the
    enumeration into ``jobs`` contiguous chunks across worker processes,
    submits everything up front, and drains in chunk order — scheduling
    is parallel, the report is deterministic.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be at least 1")
    payload = space.to_dict()
    indices = list(range(space.size))
    if jobs == 1 or len(indices) < 2:
        chunk_outs = [evaluate_chunk(payload, indices)]
    else:
        workers = min(jobs, len(indices))
        step = (len(indices) + workers - 1) // workers
        chunks = [
            indices[start : start + step]
            for start in range(0, len(indices), step)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(evaluate_chunk, payload, chunk)
                for chunk in chunks
            ]
            chunk_outs = [future.result() for future in futures]
    results: List[PointResult] = []
    pruned: List[PruneRecord] = []
    cache_stats: Dict[str, int] = {}
    for chunk_results, chunk_pruned, chunk_stats in chunk_outs:
        results.extend(chunk_results)
        pruned.extend(chunk_pruned)
        for key, value in chunk_stats.items():
            cache_stats[key] = cache_stats.get(key, 0) + value
    results.sort(key=lambda r: r.index)
    pruned.sort(key=lambda p: p.index)
    report = build_report(space, results, pruned, seed)
    return ExploreOutcome(space=space, report=report, cache_stats=cache_stats)


def write_report(outcome: ExploreOutcome, path: str) -> None:
    """Write the canonical serialization to ``path``."""
    with open(path, "wb") as f:
        f.write(report_bytes(outcome.report))


def render_cache_stats(stats: Dict[str, int]) -> str:
    """One-line summary of cross-point schedule-cache sharing."""
    return (
        f"schedule cache: {stats.get('hits', 0)} hits / "
        f"{stats.get('misses', 0)} misses across "
        f"{stats.get('engines', 0)} engines on "
        f"{stats.get('arches', 0)} distinct architectures "
        f"({stats.get('replayed_commands', 0)} commands replayed)"
    )
