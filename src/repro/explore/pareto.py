"""Pareto-front extraction for minimization objectives.

Every metric is *minimized* (cycles, area overhead, average power). The
front is the set of non-dominated points; points whose metric vectors
tie exactly are mutual non-dominators, so duplicates all stay on the
front rather than being dropped arbitrarily — which is what makes the
extraction invariant under permutation and duplication of the input
(the property tests in ``tests/explore/test_pareto.py`` pin this).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True iff ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere (all metrics minimized)."""
    if len(a) != len(b):
        raise ValueError("metric vectors must have equal length")
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_front(
    points: Sequence,
    key: Optional[Callable[[object], Tuple[float, ...]]] = None,
) -> List[int]:
    """Indices (in input order) of the non-dominated points.

    ``key`` maps a point to its metric tuple; by default the point *is*
    its metric tuple. O(n^2) and deterministic — sweep fronts are tens
    of points, not millions.
    """
    metrics = [tuple(p if key is None else key(p)) for p in points]
    front: List[int] = []
    for i, mine in enumerate(metrics):
        if not any(
            dominates(other, mine) for j, other in enumerate(metrics) if j != i
        ):
            front.append(i)
    return front
