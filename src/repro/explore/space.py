"""Declarative sweep spaces: axes, workloads, and the named presets.

A :class:`SweepSpace` is a cross product of axis values. Each point is a
``{axis: value}`` dict over :data:`AXIS_DEFAULTS` — a space only has to
declare the axes it sweeps; the rest stay at the Newton/HBM2E defaults.
Validity is *not* decided here: the explorer builds each point's
``(DRAMConfig, TimingParams, OptimizationConfig)`` and lets the config
layer's own rules (rate matching, tFAW ordering, latch/traversal
coupling, family preconditions) reject it with a
:class:`~repro.errors.ConfigurationError`, which the report records as
the prune reason. See ``docs/design-space-explorer.md`` for the
file-spec grammar.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dram.config import COMMAND_FAMILIES
from repro.errors import ConfigurationError

AXIS_DEFAULTS: Dict[str, object] = {
    "family": "newton",
    "banks": 16,
    "cols_per_row": 32,
    "col_io_bits": 256,
    "t_faw": 32,
    "t_faw_aim": 16,
    "latches": 1,
    "shards": 1,
}
"""Every sweepable axis and its default (the shipped Newton design on
one device). An axis absent from a space's declaration is pinned here."""


@dataclass(frozen=True)
class Workload:
    """One GEMV shape every valid point is evaluated on."""

    name: str
    m: int
    n: int

    def __post_init__(self) -> None:
        if self.m < 1 or self.n < 1:
            raise ConfigurationError(
                f"workload {self.name!r} needs positive dimensions"
            )

    def to_dict(self) -> dict:
        return {"name": self.name, "m": self.m, "n": self.n}


@dataclass(frozen=True)
class SweepSpace:
    """A named cross product of axis values plus evaluation workloads."""

    name: str
    axes: Tuple[Tuple[str, Tuple], ...]
    """``((axis, (value, ...)), ...)`` in declaration order; enumeration
    varies the *last* declared axis fastest (plain lexicographic
    product), which is what keeps points that differ only in trailing
    axes — typically ``shards`` — adjacent for schedule-cache sharing."""
    workloads: Tuple[Workload, ...]

    def __post_init__(self) -> None:
        seen = set()
        for axis, values in self.axes:
            if axis not in AXIS_DEFAULTS:
                raise ConfigurationError(
                    f"unknown sweep axis {axis!r}; available: "
                    f"{sorted(AXIS_DEFAULTS)}"
                )
            if axis in seen:
                raise ConfigurationError(f"axis {axis!r} declared twice")
            seen.add(axis)
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")
        if not self.workloads:
            raise ConfigurationError("a sweep space needs >= 1 workload")
        names = [w.name for w in self.workloads]
        if len(set(names)) != len(names):
            raise ConfigurationError("workload names must be unique")

    @property
    def size(self) -> int:
        """Enumerated (pre-pruning) point count."""
        total = 1
        for _, values in self.axes:
            total *= len(values)
        return total

    def point(self, index: int) -> Dict[str, object]:
        """Point ``index`` of the enumeration (defaults filled in)."""
        if not 0 <= index < self.size:
            raise ConfigurationError(
                f"point index {index} outside [0, {self.size})"
            )
        params = dict(AXIS_DEFAULTS)
        remaining = index
        for axis, values in reversed(self.axes):
            remaining, offset = divmod(remaining, len(values))
            params[axis] = values[offset]
        return params

    def points(self) -> List[Dict[str, object]]:
        """Every point, in enumeration order."""
        base = dict(AXIS_DEFAULTS)
        out = []
        for combo in itertools.product(*(values for _, values in self.axes)):
            params = dict(base)
            for (axis, _), value in zip(self.axes, combo):
                params[axis] = value
            out.append(params)
        return out

    def to_dict(self) -> dict:
        """JSON-able round-trippable form (also the worker wire format)."""
        return {
            "name": self.name,
            "axes": {axis: list(values) for axis, values in self.axes},
            "workloads": [w.to_dict() for w in self.workloads],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpace":
        try:
            axes = tuple(
                (str(axis), tuple(values))
                for axis, values in payload.get("axes", {}).items()
            )
            workloads = tuple(
                Workload(name=str(w["name"]), m=int(w["m"]), n=int(w["n"]))
                for w in payload.get("workloads", [])
            )
            name = str(payload.get("name", "custom"))
        except (KeyError, TypeError, ValueError) as error:
            raise ConfigurationError(f"malformed space spec: {error}")
        return cls(name=name, axes=axes, workloads=workloads)


_SMOKE_WORKLOADS = (Workload("gemv-small", m=16, n=256),)
_CANONICAL_WORKLOADS = (
    Workload("gemv-small", m=16, n=256),
    Workload("gemv-tall", m=48, n=512),
)


def smoke_space() -> SweepSpace:
    """The 12-point PR-gate space: every command family, both bank
    counts, both shard counts — all valid, seconds to evaluate."""
    return SweepSpace(
        name="smoke",
        axes=(
            ("family", COMMAND_FAMILIES),
            ("banks", (8, 16)),
            ("shards", (1, 2)),
        ),
        workloads=_SMOKE_WORKLOADS,
    )


def canonical_space() -> SweepSpace:
    """The committed full sweep: 768 enumerated points, of which the
    config layer's rules keep the valid fraction (>= 50 points across
    all three command families; see the committed report)."""
    return SweepSpace(
        name="canonical",
        axes=(
            ("family", COMMAND_FAMILIES),
            ("banks", (8, 16)),
            ("cols_per_row", (32, 64)),
            ("col_io_bits", (256, 128)),
            ("t_faw", (32, 20)),
            ("t_faw_aim", (16, 24)),
            ("latches", (1, 4)),
            ("shards", (1, 2)),
        ),
        workloads=_CANONICAL_WORKLOADS,
    )


NAMED_SPACES = {
    "smoke": smoke_space,
    "canonical": canonical_space,
}
"""The built-in spaces ``newton-repro explore --space`` accepts by name."""


def resolve_space(spec: str) -> SweepSpace:
    """Resolve a ``--space`` argument: a preset name or a JSON file path."""
    builder = NAMED_SPACES.get(spec)
    if builder is not None:
        return builder()
    if spec.endswith(".json"):
        try:
            with open(spec, "r", encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            raise ConfigurationError(f"cannot read space spec {spec!r}: {error}")
        return SweepSpace.from_dict(payload)
    raise ConfigurationError(
        f"unknown space {spec!r}: expected one of "
        f"{sorted(NAMED_SPACES)} or a .json spec file"
    )
