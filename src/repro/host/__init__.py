"""Host-side runtime: accumulation, activation/normalization overlap,
end-to-end model execution, allocation, and traffic scheduling."""

from repro.host.accumulator import HostAccumulator
from repro.host.allocator import RowAllocator, Superpage
from repro.host.cells import LSTMCell
from repro.host.serving import ServingResult, ServingSimulator
from repro.host.mixed_traffic import NonAimRequest, NonAimTrafficSource
from repro.host.multi_model import ConcurrentRun, ModelPartition, MultiModelScheduler
from repro.host.pipeline import PipelineModel
from repro.host.runtime import LayerRun, LoadedModel, ModelRun, NewtonRuntime

__all__ = [
    "HostAccumulator",
    "LSTMCell",
    "ServingSimulator",
    "ServingResult",
    "RowAllocator",
    "Superpage",
    "NonAimRequest",
    "NonAimTrafficSource",
    "MultiModelScheduler",
    "ModelPartition",
    "ConcurrentRun",
    "PipelineModel",
    "NewtonRuntime",
    "LoadedModel",
    "LayerRun",
    "ModelRun",
]
