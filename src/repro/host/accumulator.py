"""Host-side partial-result accumulation (Section III-C).

"If the matrix row is wider than the chunk, then the host reduces
multiple chunks' partial results all of which contribute to the same
output vector element." The engine performs this reduction inline during
execution; this standalone accumulator exists as the reference semantics
(and for callers that stream READRES payloads themselves).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError


class HostAccumulator:
    """fp32 accumulation of per-chunk partial output elements."""

    def __init__(self, m: int):
        if m <= 0:
            raise ProtocolError("output vector length must be positive")
        self.m = m
        self._output = np.zeros(m, dtype=np.float32)
        self.partials_received = 0

    def add_partials(self, matrix_rows: np.ndarray, values: np.ndarray) -> None:
        """Fold one READRES payload into the output vector.

        Args:
            matrix_rows: per-bank global matrix row indices (-1 = padding
                bank, ignored).
            values: per-bank bfloat16 partial results (as float32).
        """
        matrix_rows = np.asarray(matrix_rows, dtype=np.int64).reshape(-1)
        values = np.asarray(values, dtype=np.float32).reshape(-1)
        if matrix_rows.shape != values.shape:
            raise ProtocolError("matrix_rows and values must have equal length")
        if np.any(matrix_rows >= self.m):
            raise ProtocolError("a partial targets a row beyond the output vector")
        mask = matrix_rows >= 0
        np.add.at(self._output, matrix_rows[mask], values[mask])
        self.partials_received += int(mask.sum())

    @property
    def output(self) -> np.ndarray:
        """The accumulated output vector (a copy)."""
        return self._output.copy()
