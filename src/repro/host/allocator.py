"""Superpage allocation for physically contiguous matrices (Section III-E).

Newton's layout "expects physical address contiguity", and Newton
commands address physical rows directly — so the host allocates the
matrix with superpages, guaranteeing contiguity, while ordinary 4 KB
pages may land anywhere. This allocator models a bank's DRAM-row space:
superpage reservations carve contiguous row ranges for AiM matrices,
regular allocations fill the gaps, and the "AiM and non-AiM data may
share a bank but never a DRAM row" rule (Section III-A) falls out of
row-granular bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.dram.config import DRAMConfig
from repro.errors import CapacityError, ConfigurationError, LayoutError


@dataclass(frozen=True)
class Superpage:
    """A physically contiguous DRAM-row range reserved for AiM data."""

    base_row: int
    rows: int

    @property
    def end_row(self) -> int:
        """One past the last row."""
        return self.base_row + self.rows


@dataclass
class RowAllocator:
    """Row-granular allocator for one bank's address space."""

    config: DRAMConfig
    _superpages: List[Superpage] = field(default_factory=list)
    _non_aim_rows: Set[int] = field(default_factory=set)
    _next_probe: int = 0

    @property
    def total_rows(self) -> int:
        """Rows in the bank."""
        return self.config.rows_per_bank

    def _is_free(self, row: int) -> bool:
        if row in self._non_aim_rows:
            return False
        return all(not (sp.base_row <= row < sp.end_row) for sp in self._superpages)

    def allocate_superpage(self, rows: int) -> Superpage:
        """Reserve a contiguous row range (first-fit).

        Raises:
            CapacityError: if no contiguous range of ``rows`` exists.
        """
        if rows <= 0:
            raise ConfigurationError("a superpage needs at least one row")
        if rows > self.total_rows:
            raise CapacityError(
                f"superpage of {rows} rows exceeds the bank ({self.total_rows})"
            )
        run_start = None
        run_len = 0
        for row in range(self.total_rows):
            if self._is_free(row):
                if run_start is None:
                    run_start = row
                run_len += 1
                if run_len == rows:
                    page = Superpage(base_row=run_start, rows=rows)
                    self._superpages.append(page)
                    return page
            else:
                run_start = None
                run_len = 0
        raise CapacityError(
            f"no contiguous range of {rows} rows available "
            f"(fragmented by {len(self._non_aim_rows)} non-AiM rows and "
            f"{len(self._superpages)} superpages)"
        )

    def allocate_non_aim_row(self) -> int:
        """Allocate one ordinary (non-AiM) row anywhere.

        Non-AiM data may share a *bank* with AiM data but never a *row*
        (Section III-A), which row-granular allocation guarantees.
        """
        for offset in range(self.total_rows):
            row = (self._next_probe + offset) % self.total_rows
            if self._is_free(row):
                self._non_aim_rows.add(row)
                self._next_probe = (row + 1) % self.total_rows
                return row
        raise CapacityError("the bank is full")

    def free_superpage(self, page: Superpage) -> None:
        """Release a superpage reservation."""
        try:
            self._superpages.remove(page)
        except ValueError:
            raise LayoutError(f"superpage {page} is not allocated") from None

    def free_non_aim_row(self, row: int) -> None:
        """Release an ordinary row."""
        try:
            self._non_aim_rows.remove(row)
        except KeyError:
            raise LayoutError(f"row {row} is not a non-AiM allocation") from None

    def is_aim_row(self, row: int) -> bool:
        """Whether a row belongs to an AiM superpage."""
        return any(sp.base_row <= row < sp.end_row for sp in self._superpages)

    def rows_free(self) -> int:
        """Unallocated rows remaining."""
        reserved = sum(sp.rows for sp in self._superpages) + len(self._non_aim_rows)
        return self.total_rows - reserved
