"""Recurrent cell semantics for the host (GNMT's LSTM layers).

Newton computes each LSTM layer's fused gate pre-activations as one
matrix-vector product (the 4-hidden x input matrix of Table II's GNMT
rows); the host then applies the cheap element-wise cell update:

    i, f, g, o = split(gates)
    c' = sigmoid(f) * c + sigmoid(i) * tanh(g)
    h' = sigmoid(o) * tanh(c')

These element-wise operations stream with the results (like activation
functions, Section III-C) and cost no exposed latency; their value here
is *functional* — they make the end-to-end GNMT run a real recurrence
instead of shape glue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, ProtocolError
from repro.numerics.activation import sigmoid, tanh_fn


@dataclass
class LSTMCell:
    """One layer's LSTM cell state and update rule."""

    hidden: int
    c: np.ndarray = field(init=False)
    h: np.ndarray = field(init=False)
    steps: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.hidden <= 0:
            raise ConfigurationError("hidden size must be positive")
        self.reset()

    def reset(self) -> None:
        """Zero the recurrent state (start of a new sequence)."""
        self.c = np.zeros(self.hidden, dtype=np.float32)
        self.h = np.zeros(self.hidden, dtype=np.float32)
        self.steps = 0

    def step(self, gates: np.ndarray) -> np.ndarray:
        """Apply one cell update from fused gate pre-activations.

        Args:
            gates: the Newton GEMV output, length ``4 * hidden``, laid
                out [i | f | g | o] (the fused-gate matrix row order).

        Returns:
            The new hidden state ``h`` (also stored for the next step).
        """
        gates = np.asarray(gates, dtype=np.float32).reshape(-1)
        if gates.shape[0] != 4 * self.hidden:
            raise ProtocolError(
                f"expected {4 * self.hidden} gate pre-activations, got "
                f"{gates.shape[0]}"
            )
        i, f, g, o = np.split(gates, 4)
        self.c = sigmoid(f) * self.c + sigmoid(i) * tanh_fn(g)
        self.h = sigmoid(o) * tanh_fn(self.c)
        self.steps += 1
        return self.h.copy()
