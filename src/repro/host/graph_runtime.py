"""Session-based model-graph execution with fused-layer dataflow.

The stateless path (:class:`~repro.host.runtime.NewtonRuntime`) runs a
model layer by layer, the host round-tripping every activation through a
fresh GWRITE. A :class:`GraphSession` — opened via
``backend.open_session(spec)`` on any :class:`~repro.backends.base.Backend`
(a raw Newton device wrapped in a backend, the closed-form models, an
inline or multiprocess cluster) — keeps state *on the device* between
calls:

* **Fused activations.** When a layer's input vector is already
  device-resident — the previous layer's output chained through
  streaming element-wise transforms, a sibling layer's identical input
  still in the global buffer, or the raw result latches of the GEMV just
  executed — the session runs the GEMV with ``fused_input=True``: the
  engine lowers a GWRITE-less command stream (the buffer fill happens
  off the command bus, from the latch/activation path), so cycles drop
  while the functional payloads — and therefore the outputs — stay
  **bit-identical** to the round-trip path. ``fused=False`` pins the
  session to the round-trip lowering for differential comparison.
* **Bank-resident KV-cache.** ``attention`` layers allocate K/V arenas
  at window capacity when the session opens and grow them in place
  (``backend.store_matrix``) one token per :meth:`GraphSession.step`.
  Scores and context are window-sized GEMVs against the arenas —
  constant per-step shape, so decode settles into the steady-state
  replay tier — and the cached tokens never re-cross the host interface
  (:attr:`GraphSession.kv_bytes_saved` counts the avoided traffic).
  Unwritten arena slots hold exact zeros; scoring against them and
  masking before the softmax is bit-identical to scoring only the
  written prefix, because bfloat16 multiply/add against an exact zero
  is exact.
* **Stateful layer kinds.** ``moe`` routes each token through
  ``top_k`` of ``experts`` resident expert matrices (router GEMV +
  host top-k + fp32-weighted expert sum); ``lora`` runs the frozen base
  GEMV plus the ``B @ (A @ x)`` low-rank delta, with the A→B chain and
  the base/A input reuse both fused.

Functional math deliberately reuses the stateless runtime's helpers
(`_fit_vector`, `_batchnorm`, the LSTM recurrence shape rule), so on a
plain FC graph an unfused session's outputs are bit-identical to
``NewtonRuntime.run`` — and a fused session's outputs are bit-identical
to both, differing only in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.gpu import GpuModel, titan_v_like
from repro.errors import ProtocolError
from repro.host.cells import LSTMCell
from repro.host.pipeline import PipelineModel
from repro.host.runtime import NewtonRuntime
from repro.numerics.activation import apply_activation
from repro.workloads.generator import generate_layer_data, generate_vector
from repro.workloads.spec import LayerSpec, ModelSpec


def _scenario_seed(seed: int, layer_index: int, part: int) -> int:
    """Deterministic sub-seed for a layer's auxiliary matrices.

    Part 0 is the layer's primary matrix and matches the stateless
    runtime's ``seed + i`` exactly (the bit-identity anchor); auxiliary
    parts (experts, LoRA A/B, routers) hash through ``SeedSequence`` so
    they never collide with another layer's stream.
    """
    if part == 0:
        return seed + layer_index
    return int(
        np.random.SeedSequence([seed, layer_index, part]).generate_state(1)[0]
    )


@dataclass
class _LayerState:
    """Per-layer residency handles plus any recurrent/cache state."""

    spec: LayerSpec
    handles: Dict[str, object] = field(default_factory=dict)
    cell: Optional[LSTMCell] = None
    # attention-only: host-side fp32 mirrors of the bank-resident arenas
    k_host: Optional[np.ndarray] = None
    v_host: Optional[np.ndarray] = None
    tokens: int = 0


@dataclass
class LayerStepRun:
    """Execution record of one layer within one session step."""

    name: str
    kind: str
    on_newton: bool
    cycles: float
    exposed_cycles: float = 0.0
    gemvs: int = 0
    fused_gemvs: int = 0


@dataclass
class SessionStepResult:
    """One :meth:`GraphSession.step`'s execution record."""

    step_index: int
    layer_runs: List[LayerStepRun]
    output: Optional[np.ndarray] = None

    @property
    def newton_cycles(self) -> float:
        return sum(r.cycles for r in self.layer_runs if r.on_newton)

    @property
    def host_cycles(self) -> float:
        return sum(r.cycles for r in self.layer_runs if not r.on_newton)

    @property
    def exposed_pipeline_cycles(self) -> float:
        return sum(r.exposed_cycles for r in self.layer_runs)

    @property
    def total_cycles(self) -> float:
        return self.newton_cycles + self.host_cycles + self.exposed_pipeline_cycles

    @property
    def gemvs(self) -> int:
        return sum(r.gemvs for r in self.layer_runs)

    @property
    def fused_gemvs(self) -> int:
        return sum(r.fused_gemvs for r in self.layer_runs)


class GraphSession:
    """Model-graph execution state held open across steps.

    Open through :meth:`repro.backends.base.Backend.open_session`; call
    :meth:`step` once per token/input and :meth:`close` when done.
    """

    def __init__(
        self,
        backend,
        spec: ModelSpec,
        *,
        fused: bool = True,
        seed: int = 0,
        host_model: Optional[GpuModel] = None,
        pipeline: Optional[PipelineModel] = None,
    ):
        if not backend.functional:
            raise ProtocolError(
                "graph sessions need a functional backend (fusion residency "
                "and KV-cache state are data-dependent); use the stateless "
                "runtime for timing-only sweeps"
            )
        self.backend = backend
        self.spec = spec
        self.fused = fused
        self.seed = seed
        self.host_model = (
            host_model
            if host_model is not None
            else titan_v_like(backend.config, backend.timing)
        )
        self.pipeline = pipeline or PipelineModel(backend.config, backend.timing)
        self.steps_run = 0
        self.kv_bytes_saved = 0
        """Host-transfer bytes the bank-resident KV-cache avoided: per
        decode step, everything but the newly appended token would have
        had to be resent (bfloat16 K and V) were the cache host-side."""
        self._closed = False
        # Fusion provenance: vectors currently device-resident (the last
        # GEMV's input still in the global buffer, its raw output in the
        # result latches, and the last chained activation). A host layer
        # clears them — its round trip breaks residency.
        self._resident: List[np.ndarray] = []
        self._layers: List[_LayerState] = []
        for i, layer in enumerate(spec.layers):
            state = _LayerState(spec=layer)
            self._layers.append(state)
            if not layer.on_newton:
                continue
            if layer.kind == "fc":
                data = generate_layer_data(
                    layer.m, layer.n, seed=_scenario_seed(seed, i, 0)
                )
                state.handles["w"] = backend.load_matrix(data.matrix)
                if layer.output_transform == "lstm_cell":
                    state.cell = LSTMCell(hidden=layer.m // 4)
            elif layer.kind == "attention":
                state.k_host = np.zeros(
                    (layer.window, layer.n), dtype=np.float32
                )
                state.v_host = np.zeros(
                    (layer.n, layer.window), dtype=np.float32
                )
                state.handles["k"] = backend.load_matrix(state.k_host)
                state.handles["v"] = backend.load_matrix(state.v_host)
            elif layer.kind == "moe":
                router = generate_layer_data(
                    layer.experts, layer.n, seed=_scenario_seed(seed, i, 1)
                )
                state.handles["router"] = backend.load_matrix(router.matrix)
                for j in range(layer.experts):
                    expert = generate_layer_data(
                        layer.m, layer.n, seed=_scenario_seed(seed, i, 2 + j)
                    )
                    state.handles[f"expert{j}"] = backend.load_matrix(
                        expert.matrix
                    )
            elif layer.kind == "lora":
                base = generate_layer_data(
                    layer.m, layer.n, seed=_scenario_seed(seed, i, 0)
                )
                lora_a = generate_layer_data(
                    layer.rank, layer.n, seed=_scenario_seed(seed, i, 1)
                )
                lora_b = generate_layer_data(
                    layer.m, layer.rank, seed=_scenario_seed(seed, i, 2)
                )
                state.handles["base"] = backend.load_matrix(base.matrix)
                state.handles["a"] = backend.load_matrix(lora_a.matrix)
                state.handles["b"] = backend.load_matrix(lora_b.matrix)

    # ------------------------------------------------------------------
    # fusion provenance

    def _fusable(self, vector: np.ndarray) -> bool:
        """Whether ``vector`` is device-resident (GWRITE elidable)."""
        if not self.fused:
            return False
        return any(
            candidate.shape == vector.shape
            and np.array_equal(candidate, vector)
            for candidate in self._resident
        )

    def _gemv(self, handle, vector: np.ndarray):
        """One GEMV with automatic fused-input detection.

        Returns ``(run, fused)``; afterwards the input (global buffer)
        and the raw output (result latches) are both resident.
        """
        fused = self._fusable(vector)
        run = self.backend.gemv(handle, vector, fused_input=fused)
        self._resident = [vector]
        if run.output is not None:
            self._resident.append(run.output)
        return run, fused

    # ------------------------------------------------------------------
    # layer execution

    def _first_newton_width(self) -> int:
        for layer in self.spec.layers:
            if layer.on_newton:
                return layer.n
        raise ProtocolError(f"{self.spec.name}: no Newton layers to run")

    def _layer_input(
        self, state: _LayerState, x: np.ndarray
    ) -> np.ndarray:
        """The stateless runtime's input rule (LSTM recurrence included)."""
        layer = state.spec
        if layer.output_transform == "lstm_cell" and state.cell is not None:
            hidden = layer.m // 4
            if layer.n >= 2 * hidden:
                feed = NewtonRuntime._fit_vector(x, layer.n - hidden)
                return np.concatenate([feed, state.cell.h]).astype(np.float32)
        return NewtonRuntime._fit_vector(x, layer.n)

    def _advance(
        self, state: _LayerState, out: np.ndarray
    ) -> np.ndarray:
        """The stateless runtime's post-GEMV transform chain.

        Everything here streams with the result readout (activation,
        LSTM cell update, the pipelined normalization), so the advanced
        vector stays a fusion candidate — it can feed the next layer's
        COMP stream straight from the latch path.
        """
        layer = state.spec
        out = apply_activation(layer.activation, out)
        if layer.output_transform == "lstm_cell" and state.cell is not None:
            out = state.cell.step(out)
        if layer.batchnorm:
            out = NewtonRuntime._batchnorm(out)
        out = out.astype(np.float32)
        self._resident.append(out)
        return out

    def _run_fc(self, state: _LayerState, x: np.ndarray):
        vector = self._layer_input(state, x)
        run, fused = self._gemv(state.handles["w"], vector)
        record = LayerStepRun(
            name=state.spec.name,
            kind="fc",
            on_newton=True,
            cycles=float(run.cycles),
            exposed_cycles=self.pipeline.exposed_cycles(
                batchnorm=state.spec.batchnorm
            ),
            gemvs=1,
            fused_gemvs=int(fused),
        )
        return self._advance(state, run.output), record

    def _run_attention(self, state: _LayerState, x: np.ndarray):
        """Cached self-attention: append the token, score, contextualize.

        The incoming activation (the v-projection chain's output) serves
        as query and as the appended K/V token — the projections are the
        preceding FC layers. K rows past the cached prefix are exact
        zeros, so the full-window score GEMV equals the prefix GEMV on
        the written rows; the softmax masks to the prefix, and the
        re-zero-padded weight vector makes the V GEMV exact in turn.
        """
        layer = state.spec
        assert state.k_host is not None and state.v_host is not None
        if state.tokens >= layer.window:
            raise ProtocolError(
                f"{layer.name}: KV-cache window ({layer.window} tokens) "
                "exhausted; open a session with a larger window"
            )
        query = NewtonRuntime._fit_vector(x, layer.n)
        state.k_host[state.tokens] = query
        state.v_host[:, state.tokens] = query
        state.tokens += 1
        # In-place arena growth: residency handles are untouched, only
        # the stored bits change; the transfer is one token, not t.
        self.backend.store_matrix(state.handles["k"], state.k_host)
        self.backend.store_matrix(state.handles["v"], state.v_host)
        self.kv_bytes_saved += 2 * 2 * layer.n * (state.tokens - 1)

        scores_run, scores_fused = self._gemv(state.handles["k"], query)
        scores = np.asarray(scores_run.output, dtype=np.float32)
        prefix = scores[: state.tokens].astype(np.float32)
        # fp32 softmax over the cached prefix (stable shift), re-padded
        # with exact zeros so the V GEMV sees the full window width.
        shifted = np.exp(prefix - np.max(prefix))
        weights = np.zeros(layer.window, dtype=np.float32)
        weights[: state.tokens] = (shifted / np.sum(shifted)).astype(
            np.float32
        )
        # The weights are host-produced: the context GEMV always pays
        # its GWRITE (never fused), matching the physical dataflow.
        self._resident = []
        context_run, _ = self._gemv(state.handles["v"], weights)
        record = LayerStepRun(
            name=layer.name,
            kind="attention",
            on_newton=True,
            cycles=float(scores_run.cycles) + float(context_run.cycles),
            exposed_cycles=self.pipeline.exposed_cycles(
                batchnorm=layer.batchnorm
            ),
            gemvs=2,
            fused_gemvs=int(scores_fused),
        )
        return self._advance(state, context_run.output), record

    def _run_moe(self, state: _LayerState, x: np.ndarray):
        """Router GEMV, host top-k, fp32-weighted selected experts."""
        layer = state.spec
        vector = NewtonRuntime._fit_vector(x, layer.n)
        router_run, router_fused = self._gemv(state.handles["router"], vector)
        logits = np.asarray(router_run.output, dtype=np.float32)
        # Deterministic top-k: sort by (-logit, index) so ties break low.
        order = np.lexsort((np.arange(layer.experts), -logits))
        selected = np.sort(order[: layer.top_k])
        shifted = np.exp(
            logits[selected] - np.max(logits[selected])
        ).astype(np.float32)
        gate = (shifted / np.sum(shifted)).astype(np.float32)

        cycles = float(router_run.cycles)
        fused_gemvs = int(router_fused)
        mixed = np.zeros(layer.m, dtype=np.float32)
        for weight, j in zip(gate, selected):
            run, fused = self._gemv(state.handles[f"expert{int(j)}"], vector)
            cycles += float(run.cycles)
            fused_gemvs += int(fused)
            mixed += np.float32(weight) * np.asarray(
                run.output, dtype=np.float32
            )
        # The gate-weighted sum is a host reduction: the combined vector
        # is not device-resident.
        self._resident = []
        record = LayerStepRun(
            name=layer.name,
            kind="moe",
            on_newton=True,
            cycles=cycles,
            exposed_cycles=self.pipeline.exposed_cycles(
                batchnorm=layer.batchnorm
            ),
            gemvs=1 + len(selected),
            fused_gemvs=fused_gemvs,
        )
        state_out = mixed.astype(np.float32)
        out = apply_activation(layer.activation, state_out)
        if layer.batchnorm:
            out = NewtonRuntime._batchnorm(out)
        return out.astype(np.float32), record

    def _run_lora(self, state: _LayerState, x: np.ndarray):
        """Frozen base GEMV plus the fused low-rank delta chain."""
        layer = state.spec
        vector = NewtonRuntime._fit_vector(x, layer.n)
        base_run, base_fused = self._gemv(state.handles["base"], vector)
        a_run, a_fused = self._gemv(state.handles["a"], vector)
        b_run, b_fused = self._gemv(
            state.handles["b"], np.asarray(a_run.output, dtype=np.float32)
        )
        combined = (
            np.asarray(base_run.output, dtype=np.float32)
            + np.asarray(b_run.output, dtype=np.float32)
        ).astype(np.float32)
        # base + delta is a host add of two device streams.
        self._resident = []
        record = LayerStepRun(
            name=layer.name,
            kind="lora",
            on_newton=True,
            cycles=float(base_run.cycles)
            + float(a_run.cycles)
            + float(b_run.cycles),
            exposed_cycles=self.pipeline.exposed_cycles(
                batchnorm=layer.batchnorm
            ),
            gemvs=3,
            fused_gemvs=int(base_fused) + int(a_fused) + int(b_fused),
        )
        out = apply_activation(layer.activation, combined)
        if layer.batchnorm:
            out = NewtonRuntime._batchnorm(out)
        return out.astype(np.float32), record

    # ------------------------------------------------------------------
    # the session surface

    def step(
        self, input_vector: Optional[np.ndarray] = None
    ) -> SessionStepResult:
        """One pass through the graph (one token for decode models).

        Recurrent cells and KV-cache arenas persist across steps; a
        fresh seeded input is generated per step when none is given
        (mirroring the stateless runtime's ``run_sequence``).
        """
        if self._closed:
            raise ProtocolError("the session is closed")
        x = (
            np.asarray(input_vector, dtype=np.float32)
            if input_vector is not None
            else generate_vector(
                self._first_newton_width(), seed=self.seed + self.steps_run
            )
        )
        layer_runs: List[LayerStepRun] = []
        for state in self._layers:
            layer = state.spec
            if not layer.on_newton:
                cycles = self.host_model.host_op_cycles(
                    layer.host_flops, layer.host_bytes
                )
                layer_runs.append(
                    LayerStepRun(
                        name=layer.name,
                        kind=layer.kind,
                        on_newton=False,
                        cycles=cycles,
                    )
                )
                # A host stage round-trips the activation.
                self._resident = []
                continue
            runner = {
                "fc": self._run_fc,
                "attention": self._run_attention,
                "moe": self._run_moe,
                "lora": self._run_lora,
            }[layer.kind]
            x, record = runner(state, x)
            layer_runs.append(record)
        result = SessionStepResult(
            step_index=self.steps_run, layer_runs=layer_runs, output=x
        )
        self.steps_run += 1
        return result

    def run_steps(self, steps: int) -> List[SessionStepResult]:
        """Decode ``steps`` tokens back to back."""
        if steps <= 0:
            raise ProtocolError("a session run needs at least one step")
        return [self.step() for _ in range(steps)]

    @property
    def kv_tokens(self) -> Dict[str, int]:
        """Cached tokens per attention layer."""
        return {
            state.spec.name: state.tokens
            for state in self._layers
            if state.spec.kind == "attention"
        }

    def close(self) -> None:
        """End the session: drop residency tracking and refuse new steps.

        Idempotent. Backend residency (weights, arenas) is left to the
        backend's own lifecycle — sessions do not own the device.
        """
        self._closed = True
        self._resident = []
