"""Cost-model-driven heterogeneous placement: PIM + GPU hybrid (ROADMAP 4).

Newton's core argument is a *partitioning* argument: bandwidth-bound
GEMVs belong in the memory (the AiM banks), compute-bound batched work
does not (the GPU roofline wins once the matrix is read once per batch,
Figure 12's crossover near batch 64). PIM-DRAM makes exactly this
CPU/GPU-vs-PIM case. This module is the machinery that *chooses*, per
pipeline stage, instead of running everything on one backend:

* :class:`CostModel` — a calibrated per-stage cycle predictor for each
  backend. The GPU side is the Titan-V-like roofline itself (its closed
  form *is* the backend's service model, so prediction error is zero by
  construction). The Newton side is the Section III-F analytical closed
  form times one fitted scale factor, calibrated by least squares
  against measured cycle-accurate runs of the Table II layers; measured
  runs are cached per layout so calibration and measured-cost planning
  never simulate a shape twice.
* :class:`TransferModel` — the host↔device handoff cost a placement
  boundary pays: a fixed DMA/launch latency plus the activation bytes
  over the external interface bandwidth.
* :func:`overlapped_handoff_cycles` — the software-pipelined
  double-buffered handoff: transfer of the next stage's activations
  overlaps the producing stage's compute chunk by chunk, so the exposed
  boundary cost is the pipeline drain, not the full serial sum.
* :func:`plan_placement` — a dynamic program over the stage chain that
  places every :class:`StageSpec` on the backend the cost model predicts
  fastest, crossing costs included. ``all-newton`` / ``all-gpu`` force a
  fixed assignment through the *same* evaluator, so the auto plan is
  optimal over everything the fixed plans can express: planned on
  measured costs, ``auto`` can never be slower than either.

The functional half of the hybrid lives in
:class:`repro.backends.hetero.HeteroBackend`, which routes timing
through these models while executing every payload on the embedded
Newton datapath — outputs stay bit-identical to an all-Newton run, the
merge points being exact fp32 host reductions either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.analytical import AnalyticalModel
from repro.baselines.gpu import GpuModel, titan_v_like
from repro.core.optimizations import FULL, OptimizationConfig
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.errors import ConfigurationError
from repro.telemetry import SCHEMA

PLACEMENT_POLICIES = ("auto", "all-newton", "all-gpu")
"""The ``--placement`` choices: cost-model-driven, or a forced backend."""

BACKEND_CHOICES = ("newton", "gpu")
"""The two sides of the hybrid a stage can land on."""

ACTIVATION_BYTES = 2
"""Activations cross the host link in bfloat16 (the device's format)."""

CALIBRATION_ERROR_BUDGET_PCT = 15.0
"""Max per-layer |predicted - measured| / measured the calibrated
Newton predictor may leave on the Table II layers."""


# ----------------------------------------------------------------------
# stages

@dataclass(frozen=True)
class StageSpec:
    """One stage of a heterogeneous pipeline: a GEMV, possibly batched.

    ``batch > 1`` models a throughput stage (the bulk class under mixed
    traffic): ``batch`` independent inputs served by one dispatch. On
    Newton that is ``batch`` back-to-back GEMVs (no batch reuse — the
    paper's point); on the GPU the matrix is read once per batch, which
    is exactly what moves the crossover.
    """

    name: str
    m: int
    n: int
    batch: int = 1

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ConfigurationError(
                f"{self.name}: stage dimensions must be positive"
            )
        if self.batch < 1:
            raise ConfigurationError(
                f"{self.name}: stage batch must be at least 1"
            )

    @property
    def input_elements(self) -> int:
        """Elements crossing a boundary *into* this stage."""
        return self.n * self.batch


def mixed_decode_batch_stages(
    *,
    d: int = 1024,
    bulk_batch: int = 128,
    blocks: int = 2,
) -> Tuple[StageSpec, ...]:
    """The headline mixed workload: interactive decode + batched bulk.

    Each block interleaves two latency-critical batch-1 projections
    (bandwidth-bound — Newton's home turf) with a ``bulk_batch``-way
    batched FFN pair (compute-bound past the Figure 12 crossover — the
    GPU's). A single-backend placement loses one regime or the other;
    the cost-model-driven placement keeps both.
    """
    if d <= 0 or blocks <= 0 or bulk_batch < 1:
        raise ConfigurationError("mixed workload dimensions must be positive")
    stages: List[StageSpec] = []
    for b in range(blocks):
        stages.append(StageSpec(f"blk{b}_decode_qkv", m=d, n=d))
        stages.append(StageSpec(f"blk{b}_decode_proj", m=4 * d, n=d))
        stages.append(
            StageSpec(f"blk{b}_bulk_up", m=d, n=4 * d, batch=bulk_batch)
        )
        stages.append(
            StageSpec(f"blk{b}_bulk_down", m=d, n=d, batch=bulk_batch)
        )
    return tuple(stages)


# ----------------------------------------------------------------------
# transfer + overlap

@dataclass(frozen=True)
class TransferModel:
    """Host↔device handoff cost across the PIM/GPU boundary.

    The link is the external DRAM interface both sides already share
    (the GPU roofline's ``bytes_per_cycle``), derated by ``efficiency``
    for protocol overhead, plus a fixed per-handoff ``latency_cycles``
    (DMA setup / kernel launch — the cost the paper factors *out* of
    the GPU kernels but a placement boundary genuinely pays).
    """

    config: DRAMConfig
    timing: TimingParams
    latency_cycles: float = 500.0
    efficiency: float = 0.8

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ConfigurationError("latency_cycles must be non-negative")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError("efficiency must be in (0, 1]")

    def bytes_per_cycle(self) -> float:
        """Achieved link bandwidth in bytes per DRAM command cycle."""
        return (
            self.config.num_channels
            * self.config.col_io_bytes
            / self.timing.t_ccd
            * self.efficiency
        )

    def vector_cycles(self, elements: int) -> float:
        """One handoff: ``elements`` bf16 activations plus the latency."""
        if elements <= 0:
            raise ConfigurationError("transfer needs a positive element count")
        return (
            self.latency_cycles
            + elements * ACTIVATION_BYTES / self.bytes_per_cycle()
        )

    def handoff_slices(self, elements: int) -> int:
        """Double-buffer granularity: one slice per DRAM row of data.

        The producing side emits results row-chunk by row-chunk (the
        READRES drain), so that is the natural unit a double-buffered
        handoff can forward early.
        """
        return max(1, -(-elements // self.config.elems_per_row))


def overlapped_handoff_cycles(
    compute_cycles: float, transfer_cycles: float, slices: int
) -> float:
    """Completion time of a double-buffered producer→consumer handoff.

    The producer's output becomes available in ``slices`` equal chunks
    across its ``compute_cycles``; each chunk's transfer
    (``transfer_cycles / slices``) starts as soon as the chunk is ready
    and the link is free. The recurrence
    ``done_j = max(done_{j-1}, compute * j / slices) + transfer / slices``
    collapses to a closed form because both rates are constant:
    whichever side binds, the other exposes only one slice of drain.

    Returns total completion (``>= max(compute, transfer)`` and
    ``<= compute + transfer``); the *exposed* boundary cost is the
    return value minus ``compute_cycles``.
    """
    if compute_cycles < 0 or transfer_cycles < 0:
        raise ConfigurationError("handoff cycle counts must be non-negative")
    if slices < 1:
        raise ConfigurationError("a handoff needs at least one slice")
    return max(
        compute_cycles + transfer_cycles / slices,
        transfer_cycles + compute_cycles / slices,
    )


# ----------------------------------------------------------------------
# the calibrated cost model

@dataclass(frozen=True)
class CalibrationRow:
    """One calibration layer's predicted-vs-measured outcome."""

    name: str
    m: int
    n: int
    measured_cycles: float
    predicted_cycles: float
    """Prediction *after* the fitted scale is applied."""

    @property
    def error_pct(self) -> float:
        return abs(self.predicted_cycles - self.measured_cycles) / (
            self.measured_cycles or 1.0
        ) * 100.0


@dataclass
class CalibrationReport:
    """The fitted Newton scale and its per-layer residuals."""

    scale: float
    rows: List[CalibrationRow] = field(default_factory=list)

    @property
    def max_error_pct(self) -> float:
        return max((row.error_pct for row in self.rows), default=0.0)

    @property
    def mean_error_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.error_pct for row in self.rows) / len(self.rows)

    @property
    def within_budget(self) -> bool:
        return self.max_error_pct <= CALIBRATION_ERROR_BUDGET_PCT

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "max_error_pct": round(self.max_error_pct, 3),
            "mean_error_pct": round(self.mean_error_pct, 3),
            "budget_pct": CALIBRATION_ERROR_BUDGET_PCT,
            "within_budget": self.within_budget,
            "layers": [
                {
                    "name": row.name,
                    "m": row.m,
                    "n": row.n,
                    "measured_cycles": row.measured_cycles,
                    "predicted_cycles": round(row.predicted_cycles, 1),
                    "error_pct": round(row.error_pct, 3),
                }
                for row in self.rows
            ],
        }


class CostModel:
    """Per-backend cycle prediction, calibrated and measurement-cached.

    * ``predict`` is the closed form: the roofline for ``gpu``, the
      scaled Section III-F model for ``newton``. Cheap enough to call in
      a placement inner loop.
    * ``measure`` runs the real thing — a fresh cycle-accurate device
      for ``newton`` (the burst kernel makes this milliseconds per
      layout), the roofline for ``gpu`` (which *is* that backend's
      service model) — and caches the result per ``(backend, m, n)``
      layout key.
    * ``calibrate`` fits the Newton scale by least squares over measured
      reference layers (default: all of Table II) and records the
      per-layer residuals the acceptance gate checks.
    """

    def __init__(
        self,
        config: Optional[DRAMConfig] = None,
        timing: Optional[TimingParams] = None,
        *,
        opt: OptimizationConfig = FULL,
        refresh_enabled: bool = True,
        gpu_model: Optional[GpuModel] = None,
    ):
        self.config = config if config is not None else hbm2e_like_config()
        self.timing = timing if timing is not None else hbm2e_like_timing()
        self.opt = opt
        self.refresh_enabled = refresh_enabled
        self.analytical = AnalyticalModel(
            self.config, self.timing, aggressive_tfaw=opt.aggressive_tfaw
        )
        self.gpu_model = (
            gpu_model
            if gpu_model is not None
            else titan_v_like(self.config, self.timing)
        )
        self.scale = 1.0
        self.calibration: Optional[CalibrationReport] = None
        self._measured: Dict[Tuple[str, int, int], float] = {}

    # ------------------------------------------------------------------

    def _check_backend(self, backend: str) -> None:
        if backend not in BACKEND_CHOICES:
            raise ConfigurationError(
                f"unknown hybrid backend {backend!r}; choose from "
                f"{BACKEND_CHOICES}"
            )

    def predict(self, backend: str, m: int, n: int, batch: int = 1) -> float:
        """Closed-form predicted cycles for a (possibly batched) stage."""
        self._check_backend(backend)
        if batch < 1:
            raise ConfigurationError("batch must be at least 1")
        if backend == "gpu":
            return self.gpu_model.gemv_cycles(m, n, batch=batch)
        per_run = self.scale * self.analytical.predicted_layer_cycles(
            m, n, channels=self.config.num_channels
        )
        return batch * per_run

    def measure(self, backend: str, m: int, n: int, batch: int = 1) -> float:
        """Actual backend cycles for a stage, cached per layout.

        Newton stages run ``batch`` back-to-back GEMVs, so the cached
        per-layout service time simply scales; GPU stages are the
        roofline's own closed form (measuring equals predicting).
        """
        self._check_backend(backend)
        if batch < 1:
            raise ConfigurationError("batch must be at least 1")
        if backend == "gpu":
            return self.gpu_model.gemv_cycles(m, n, batch=batch)
        key = (backend, m, n)
        if key not in self._measured:
            from repro.core.device import NewtonDevice

            device = NewtonDevice(
                self.config,
                self.timing,
                self.opt,
                functional=False,
                refresh_enabled=self.refresh_enabled,
            )
            handle = device.load_matrix(m=m, n=n)
            self._measured[key] = float(device.gemv(handle).cycles)
        return batch * self._measured[key]

    def estimate(
        self,
        backend: str,
        m: int,
        n: int,
        batch: int = 1,
        *,
        prefer_measured: bool = False,
    ) -> float:
        """The planning cost: measured when asked (and cheap), else
        predicted."""
        if prefer_measured:
            return self.measure(backend, m, n, batch=batch)
        return self.predict(backend, m, n, batch=batch)

    @property
    def measured_layouts(self) -> int:
        """Distinct Newton layouts simulated so far (the cache size)."""
        return len(self._measured)

    # ------------------------------------------------------------------

    def calibrate(
        self, layers: Optional[Sequence] = None
    ) -> CalibrationReport:
        """Fit the Newton scale against measured reference runs.

        ``layers`` is a sequence of objects with ``name``/``m``/``n``
        (default: the Table II catalog). The scale is the geometric
        mean of the per-layer measured/analytical ratios — the
        least-squares fit of ``log measured ≈ log scale + log
        analytical``, i.e. the scale minimizing *relative* error, which
        is the budget the per-layer residuals are judged against. The
        fit absorbs the steady-state effects the closed form omits
        (READRES tails, refresh interference) while leaving the
        residuals honest — they are what ``within_budget`` checks.
        """
        if layers is None:
            from repro.workloads.catalog import TABLE_II_LAYERS

            layers = TABLE_II_LAYERS
        if not layers:
            raise ConfigurationError("calibration needs at least one layer")
        pairs = []
        for layer in layers:
            measured = self.measure("newton", layer.m, layer.n)
            raw = self.analytical.predicted_layer_cycles(
                layer.m, layer.n, channels=self.config.num_channels
            )
            pairs.append((layer, measured, raw))
        self.scale = math.exp(
            sum(math.log(m / p) for _, m, p in pairs) / len(pairs)
        )
        report = CalibrationReport(scale=self.scale)
        for layer, measured, raw in pairs:
            report.rows.append(
                CalibrationRow(
                    name=layer.name,
                    m=layer.m,
                    n=layer.n,
                    measured_cycles=measured,
                    predicted_cycles=self.scale * raw,
                )
            )
        self.calibration = report
        return report


# ----------------------------------------------------------------------
# placement planning

@dataclass(frozen=True)
class StagePlacement:
    """One stage's planned assignment and its cost breakdown."""

    stage: StageSpec
    backend: str
    compute_cycles: float
    """Planning-cost compute time on the placed backend."""
    exposed_transfer_cycles: float
    """Boundary cost exposed beyond the previous stage's compute (zero
    when the stage stays on the previous stage's backend)."""
    predicted_cycles: float
    """The closed-form prediction for the placed backend."""
    measured_cycles: float
    """The measured (or roofline-exact) cycles for the placed backend."""

    @property
    def crossed(self) -> bool:
        return self.exposed_transfer_cycles > 0.0

    @property
    def prediction_error_pct(self) -> float:
        return abs(self.predicted_cycles - self.measured_cycles) / (
            self.measured_cycles or 1.0
        ) * 100.0


@dataclass
class PlacementPlan:
    """A full pipeline placement and its end-to-end accounting."""

    policy: str
    placements: List[StagePlacement] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        """End-to-end pipeline cycles: compute plus exposed boundaries."""
        return sum(
            p.compute_cycles + p.exposed_transfer_cycles
            for p in self.placements
        )

    @property
    def serial_transfer_cycles(self) -> float:
        """What the boundaries would cost without transfer/compute
        overlap (the double-buffered pipeline's counterfactual)."""
        return sum(p.exposed_transfer_cycles for p in self.placements)

    @property
    def crossings(self) -> int:
        return sum(1 for p in self.placements if p.crossed)

    @property
    def backends_used(self) -> Tuple[str, ...]:
        return tuple(sorted({p.backend for p in self.placements}))

    @property
    def max_prediction_error_pct(self) -> float:
        return max(
            (p.prediction_error_pct for p in self.placements), default=0.0
        )

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "total_cycles": round(self.total_cycles, 1),
            "crossings": self.crossings,
            "backends": list(self.backends_used),
            "max_prediction_error_pct": round(
                self.max_prediction_error_pct, 3
            ),
            "stages": [
                {
                    "name": p.stage.name,
                    "m": p.stage.m,
                    "n": p.stage.n,
                    "batch": p.stage.batch,
                    "backend": p.backend,
                    "compute_cycles": round(p.compute_cycles, 1),
                    "exposed_transfer_cycles": round(
                        p.exposed_transfer_cycles, 1
                    ),
                    "predicted_cycles": round(p.predicted_cycles, 1),
                    "measured_cycles": round(p.measured_cycles, 1),
                    "prediction_error_pct": round(
                        p.prediction_error_pct, 3
                    ),
                }
                for p in self.placements
            ],
        }


def _boundary_cost(
    transfer: TransferModel,
    prev_backend: Optional[str],
    backend: str,
    prev_compute: float,
    stage: StageSpec,
) -> float:
    """Exposed cycles of entering ``stage`` on ``backend``.

    Staying on the previous backend is free (activations are already
    resident — the fused-run story). A crossing pays the double-buffered
    handoff's drain: the activation transfer overlaps the previous
    stage's compute chunk by chunk, and only the completion beyond that
    compute is exposed. The pipeline's first stage is fed by the host
    either way and pays nothing extra.
    """
    if prev_backend is None or prev_backend == backend:
        return 0.0
    cycles = transfer.vector_cycles(stage.input_elements)
    slices = transfer.handoff_slices(stage.input_elements)
    return (
        overlapped_handoff_cycles(prev_compute, cycles, slices) - prev_compute
    )


def plan_placement(
    stages: Sequence[StageSpec],
    cost: CostModel,
    transfer: TransferModel,
    *,
    policy: str = "auto",
    use_measured: bool = True,
) -> PlacementPlan:
    """Place every stage of a pipeline on its fastest backend.

    ``auto`` runs a dynamic program over (stage, backend) states whose
    transition cost is the stage's compute plus the exposed boundary
    handoff, so alternating placements pay their crossings honestly.
    ``all-newton`` / ``all-gpu`` force a fixed assignment through the
    same evaluator. With ``use_measured=True`` (the default) planning
    costs are the measured per-layout cycles, making the auto plan
    optimal over the fixed plans *as executed*, not just as predicted;
    predictions are still recorded per stage so the plan carries its own
    predicted-vs-actual error report.
    """
    if policy not in PLACEMENT_POLICIES:
        raise ConfigurationError(
            f"unknown placement policy {policy!r}; choose from "
            f"{PLACEMENT_POLICIES}"
        )
    if not stages:
        raise ConfigurationError("a placement plan needs at least one stage")

    def stage_cost(stage: StageSpec, backend: str) -> float:
        return cost.estimate(
            backend,
            stage.m,
            stage.n,
            batch=stage.batch,
            prefer_measured=use_measured,
        )

    if policy != "auto":
        forced = "newton" if policy == "all-newton" else "gpu"
        assignment = [forced] * len(stages)
    else:
        # dp[b] = (best total cost ending on backend b, choice trail)
        dp: Dict[str, Tuple[float, List[str]]] = {}
        prev_compute: Dict[str, float] = {}
        for i, stage in enumerate(stages):
            next_dp: Dict[str, Tuple[float, List[str]]] = {}
            next_compute: Dict[str, float] = {}
            for backend in BACKEND_CHOICES:
                compute = stage_cost(stage, backend)
                next_compute[backend] = compute
                if i == 0:
                    next_dp[backend] = (compute, [backend])
                    continue
                best: Optional[Tuple[float, List[str]]] = None
                for prev_backend, (total, trail) in dp.items():
                    boundary = _boundary_cost(
                        transfer,
                        prev_backend,
                        backend,
                        prev_compute[prev_backend],
                        stage,
                    )
                    candidate = total + boundary + compute
                    if best is None or candidate < best[0]:
                        best = (candidate, trail + [backend])
                assert best is not None
                next_dp[backend] = best
            dp = next_dp
            prev_compute = next_compute
        assignment = min(dp.values(), key=lambda entry: entry[0])[1]

    plan = PlacementPlan(policy=policy)
    prev_backend: Optional[str] = None
    prev_cycles = 0.0
    for stage, backend in zip(stages, assignment):
        compute = stage_cost(stage, backend)
        boundary = _boundary_cost(
            transfer, prev_backend, backend, prev_cycles, stage
        )
        plan.placements.append(
            StagePlacement(
                stage=stage,
                backend=backend,
                compute_cycles=compute,
                exposed_transfer_cycles=boundary,
                predicted_cycles=cost.predict(
                    backend, stage.m, stage.n, batch=stage.batch
                ),
                measured_cycles=cost.measure(
                    backend, stage.m, stage.n, batch=stage.batch
                ),
            )
        )
        prev_backend = backend
        prev_cycles = compute
    return plan


def placement_metrics(
    plans: Dict[str, PlacementPlan],
    calibration: Optional[CalibrationReport] = None,
) -> dict:
    """A ``newton-telemetry/v1`` record for a set of placement plans."""
    record: dict = {
        "schema": SCHEMA,
        "kind": "hetero-placement",
        "plans": {name: plan.to_dict() for name, plan in plans.items()},
    }
    if calibration is not None:
        record["calibration"] = calibration.to_dict()
    auto = plans.get("auto")
    fixed = [
        plan.total_cycles
        for name, plan in plans.items()
        if name in ("all-newton", "all-gpu")
    ]
    if auto is not None and fixed:
        record["auto_not_worse"] = auto.total_cycles <= min(fixed) + 1e-9
        record["auto_speedup_vs_best_fixed"] = round(
            min(fixed) / auto.total_cycles, 4
        )
    return record
