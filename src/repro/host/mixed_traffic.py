"""Interleaving ordinary DRAM traffic with AiM operations (Section III-D).

"AiM memory can be used as normal memory and can hold non-AiM data" —
with two rules the paper spells out:

1. AiM and non-AiM data may share a bank but never a DRAM row, so a
   non-AiM access always needs its own activation (a precharge separates
   it from any AiM row), and AiM row operations are guaranteed complete
   before the non-AiM row opens;
2. banks left free by a partial last tile cannot serve non-AiM requests
   until every bank finishes its AiM operations.

This module provides the traffic source the engine interleaves at tile
boundaries — the points where every bank is precharged, which is exactly
where both rules are satisfied by construction — plus bookkeeping to
measure the interference in both directions.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence

from repro.dram import commands as cmds
from repro.dram.commands import Command
from repro.errors import ConfigurationError, LayoutError, ProtocolError


@dataclass(frozen=True)
class NonAimRequest:
    """One ordinary read or write to a non-AiM row."""

    bank: int
    row: int
    col: int
    is_write: bool = False
    arrival: int = 0
    """Cycle the host issued the request (for latency accounting)."""

    def to_commands(self) -> List[Command]:
        """The activate + column access (with auto-precharge) sequence."""
        column = (
            cmds.wr(self.bank, self.col, auto_precharge=True)
            if self.is_write
            else cmds.rd(self.bank, self.col, auto_precharge=True)
        )
        return [cmds.act(self.bank, self.row), column]


@dataclass
class NonAimTrafficSource:
    """Feeds non-AiM requests to the engine at tile boundaries.

    Args:
        requests: the queued ordinary accesses, served in order.
        per_boundary: how many requests to interleave per tile boundary
            (the host memory controller's mixing ratio).
        aim_rows: rows reserved for AiM data — a request targeting one is
            rejected up front (rule 1: never share a row).
    """

    requests: List[NonAimRequest]
    per_boundary: int = 1
    aim_rows: Optional[Sequence[range]] = None
    issued: int = 0
    latencies: List[int] = field(default_factory=list)
    """Completion latency of each finished request (data back at host),
    measured from its ``arrival``; the host-visible cost of sharing the
    channel with AiM compute."""
    completion_mismatches: int = 0
    """Column-access completions reported with no matching issued
    request — always a protocol-accounting bug; see
    :meth:`record_completion`."""
    _cursor: int = field(default=0, repr=False)
    # A deque: completions pop from the head once per column access, and
    # a list's pop(0) is O(n) — O(n^2) across a long interleaved trace.
    _arrival_fifo: Deque[int] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.per_boundary <= 0:
            raise ConfigurationError("per_boundary must be positive")
        if self.aim_rows is not None:
            for request in self.requests:
                for span in self.aim_rows:
                    if request.row in span:
                        raise LayoutError(
                            f"non-AiM request targets AiM row {request.row}: "
                            "AiM and non-AiM data may share a bank but "
                            "never a DRAM row (Section III-A)"
                        )

    @property
    def pending(self) -> int:
        """Requests not yet issued."""
        return len(self.requests) - self._cursor

    def commands_for_boundary(
        self, boundary_index: int, now: int = 0
    ) -> List[Command]:
        """The commands to interleave at one tile boundary.

        Only requests that have *arrived* by ``now`` are served (a
        request cannot be issued before the host generates it).
        """
        out: List[Command] = []
        served = 0
        while self._cursor < len(self.requests) and served < self.per_boundary:
            request = self.requests[self._cursor]
            if request.arrival > now:
                break  # in-order queue: later requests wait too
            out.extend(request.to_commands())
            self._arrival_fifo.append(request.arrival)
            self._cursor += 1
            served += 1
            self.issued += 1
        return out

    def record_completion(self, command: Command, record) -> None:
        """Engine callback: log latency when a request's column access
        completes (data back at the host).

        Requests are served strictly in order, so completions match the
        arrival FIFO one column access at a time. A column-access
        completion with an *empty* FIFO means the engine reported a
        request this source never issued (or reported one twice) — that
        is an accounting bug, so it is counted in
        :attr:`completion_mismatches` and raised rather than silently
        dropped.
        """
        from repro.dram.commands import CommandKind

        if command.kind not in (CommandKind.RD, CommandKind.WR):
            return
        if not self._arrival_fifo:
            self.completion_mismatches += 1
            raise ProtocolError(
                f"non-AiM completion for {command.kind.name} at cycle "
                f"{record.complete} has no matching issued request "
                f"({self.issued} issued, {len(self.latencies)} completed)"
            )
        self.latencies.append(record.complete - self._arrival_fifo.popleft())
