"""Multiple ML models on one Newton device (Section III-D, issue (4)).

"The current Newton design can process only one ML model at a time in a
bank or even a channel. Different models can operate simultaneously in
different channels." This scheduler partitions the device's channels
into disjoint sets, places one model per set, and runs them
concurrently — channels are fully independent, so concurrent wall time
is the slowest partition.

Partitions are constructed through the backend registry
(:func:`repro.backends.make_backend`), so a partition can execute on
the cycle-accurate simulator (the default) or on any registered model
backend — useful for cross-checking a placement plan analytically
before paying for simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backends.base import Backend
from repro.backends.registry import make_backend
from repro.baselines.gpu import titan_v_like
from repro.core.optimizations import FULL, OptimizationConfig
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.errors import ConfigurationError
from repro.host.runtime import LoadedModel, ModelRun, NewtonRuntime
from repro.workloads.spec import ModelSpec


@dataclass
class ModelPartition:
    """One model bound to a disjoint channel set."""

    spec: ModelSpec
    channels: Tuple[int, ...]
    runtime: NewtonRuntime
    loaded: LoadedModel
    backend: Optional[Backend] = None
    """The execution backend this partition runs on."""


@dataclass
class ConcurrentRun:
    """Outcome of running every partition concurrently."""

    runs: Dict[str, ModelRun] = field(default_factory=dict)

    @property
    def wall_cycles(self) -> float:
        """Concurrent wall clock: the slowest partition."""
        return max(run.total_cycles for run in self.runs.values())

    @property
    def serial_cycles(self) -> float:
        """What the same work would take run one-after-another on the
        same per-model channel counts."""
        return sum(run.total_cycles for run in self.runs.values())


class MultiModelScheduler:
    """Places models on disjoint channel sets and runs them together."""

    def __init__(
        self,
        config: DRAMConfig,
        timing: Optional[TimingParams] = None,
        opt: OptimizationConfig = FULL,
        *,
        functional: bool = False,
        backend: str = "newton",
    ):
        self.config = config
        self.timing = timing if timing is not None else hbm2e_like_timing()
        self.opt = opt
        self.functional = functional
        self.backend_name = backend
        self.partitions: List[ModelPartition] = []
        self._next_channel = 0

    def place(
        self,
        spec: ModelSpec,
        channels: int,
        *,
        backend: Optional[str] = None,
        **backend_kwargs,
    ) -> ModelPartition:
        """Bind a model to the next ``channels`` free channels.

        The partition's execution backend comes from the registry
        (``backend=`` at construction, overridable per partition —
        heterogeneous fleets mix cycle-accurate partitions with model
        or hybrid ones), configured for exactly the partition's channel
        slice. Extra keyword arguments pass to the backend factory
        (e.g. ``placement=`` for a ``hetero`` partition).

        Raises:
            ConfigurationError: if the device has too few channels left.
        """
        if channels <= 0:
            raise ConfigurationError("a model needs at least one channel")
        if self._next_channel + channels > self.config.num_channels:
            raise ConfigurationError(
                f"only {self.config.num_channels - self._next_channel} channels "
                f"free, {channels} requested — different models need "
                "different channels (Section III-D)"
            )
        channel_ids = tuple(
            range(self._next_channel, self._next_channel + channels)
        )
        self._next_channel += channels
        # Channels are independent: a partition is exactly a smaller device.
        sub_config = self.config.with_overrides(num_channels=channels)
        engine = make_backend(
            backend if backend is not None else self.backend_name,
            config=sub_config,
            timing=self.timing,
            opt=self.opt,
            functional=self.functional,
            **backend_kwargs,
        )
        gpu = titan_v_like(sub_config, self.timing)
        runtime = NewtonRuntime(engine, gpu)
        partition = ModelPartition(
            spec=spec,
            channels=channel_ids,
            runtime=runtime,
            loaded=runtime.load_model(spec),
            backend=engine,
        )
        self.partitions.append(partition)
        return partition

    def run_all(self) -> ConcurrentRun:
        """One inference per placed model, concurrently."""
        if not self.partitions:
            raise ConfigurationError("no models placed")
        result = ConcurrentRun()
        for partition in self.partitions:
            result.runs[partition.spec.name] = partition.runtime.run(
                partition.loaded
            )
        return result
