"""Activation-function and batch-normalization overlap (Section III-C).

The host applies the neural activation "as and when elements of the
vector are computed", so it is fully hidden under Newton's compute.
Batch normalization is different: its scaling factor depends on the full
vector's range, so it cannot start until the layer finishes. The paper
hides most of it by (1) tracking the running min/max as results stream
out and (2) exposing only the *first tile's* normalization latency —
later tiles are normalized under the next layer's Newton compute.

This module turns that scheme into exposed-cycle accounting per layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PipelineModel:
    """Exposed host-side latency between consecutive Newton layers."""

    config: DRAMConfig
    timing: TimingParams
    normalize_cycles_per_element: float = 0.25
    """Host cycles to normalize one output element (a multiply-add on a
    wide vector unit; four elements per cycle)."""

    def __post_init__(self) -> None:
        if self.normalize_cycles_per_element <= 0:
            raise ConfigurationError("normalization rate must be positive")

    def tile_elements(self) -> int:
        """Output elements one tile produces (one per bank)."""
        return self.config.banks_per_channel * self.config.num_channels

    def activation_exposed_cycles(self) -> int:
        """Activation functions are applied element-wise as results
        stream out — nothing is exposed."""
        return 0

    def batchnorm_exposed_cycles(self) -> int:
        """Only the first tile's normalization latency is exposed before
        the next layer's MV computation can launch with that tile."""
        return int(
            round(self.tile_elements() * self.normalize_cycles_per_element)
        )

    def exposed_cycles(self, *, batchnorm: bool) -> int:
        """Exposed host latency after one layer finishes on Newton."""
        return (
            self.batchnorm_exposed_cycles()
            if batchnorm
            else self.activation_exposed_cycles()
        )
