"""End-to-end model execution on an execution backend (Figure 8, right).

The runtime walks a :class:`~repro.workloads.spec.ModelSpec` in order:
FC layers run on the execution backend — a
:class:`~repro.core.device.NewtonDevice` (whose channel clocks advance
across layers, so refresh interference accumulates end-to-end exactly
as on hardware), any :class:`~repro.backends.base.Backend`, or a
multi-device :class:`~repro.cluster.ShardedCluster` — while non-FC
layers (convolutions, embedding gathers, attention glue) are timed on
the host compute model; activation functions are hidden and batch
normalization exposes only its first-tile latency
(:mod:`repro.host.pipeline`).

Weights are synthetic, but the *structure* is real: LSTM layers run the
actual cell update over Newton's fused-gate GEMV output (with recurrent
state persisting across :meth:`NewtonRuntime.run_sequence` steps), and
non-recurrent layers chain through shape glue. Per-layer numerics are
verified against NumPy on the actual chained inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.gpu import GpuModel
from repro.host.cells import LSTMCell
from repro.host.pipeline import PipelineModel
from repro.numerics.activation import apply_activation
from repro.workloads.generator import generate_layer_data, generate_vector
from repro.workloads.spec import LayerSpec, ModelSpec
from repro.errors import ProtocolError


@dataclass
class LoadedModel:
    """A model whose FC weights are resident in the backend."""

    spec: ModelSpec
    handles: Dict[str, object]
    """Per-layer residency handles (:class:`MatrixHandle` for a Newton
    device; backend/cluster handles otherwise)."""
    weights: Dict[str, np.ndarray] = field(default_factory=dict)
    cells: Dict[str, LSTMCell] = field(default_factory=dict)
    """Recurrent state per LSTM layer (persists across sequence steps)."""

    def reset_state(self) -> None:
        """Zero every recurrent cell (start of a new sequence)."""
        for cell in self.cells.values():
            cell.reset()


@dataclass
class LayerRun:
    """Execution record of one layer."""

    name: str
    on_newton: bool
    cycles: float
    exposed_cycles: float = 0.0


@dataclass
class ModelRun:
    """Execution record of one end-to-end inference."""

    model: str
    layer_runs: List[LayerRun]
    output: Optional[np.ndarray] = None

    @property
    def newton_cycles(self) -> float:
        """Cycles spent in Newton GEMV across all FC layers."""
        return sum(r.cycles for r in self.layer_runs if r.on_newton)

    @property
    def host_cycles(self) -> float:
        """Cycles spent in host-side (non-FC) work."""
        return sum(r.cycles for r in self.layer_runs if not r.on_newton)

    @property
    def exposed_pipeline_cycles(self) -> float:
        """Normalization latency not hidden under Newton compute."""
        return sum(r.exposed_cycles for r in self.layer_runs)

    @property
    def total_cycles(self) -> float:
        """End-to-end wall clock (layers are serially dependent)."""
        return self.newton_cycles + self.host_cycles + self.exposed_pipeline_cycles


class NewtonRuntime:
    """Drives end-to-end models across an execution backend and the host.

    ``device`` is any object satisfying the execution surface the
    runtime uses — ``load_matrix``/``gemv`` plus the ``functional``,
    ``config``, and ``timing`` attributes: a raw
    :class:`~repro.core.device.NewtonDevice`, any
    :class:`~repro.backends.base.Backend` from
    :func:`repro.backends.make_backend`, or a
    :class:`~repro.cluster.ShardedCluster` spanning several devices.
    """

    def __init__(
        self,
        device,
        host_model: GpuModel,
        pipeline: Optional[PipelineModel] = None,
    ):
        self.device = device
        self.host_model = host_model
        self.pipeline = pipeline or PipelineModel(device.config, device.timing)

    @property
    def backend(self):
        """The execution backend (alias of ``device``)."""
        return self.device

    # ------------------------------------------------------------------

    def load_model(self, spec: ModelSpec, seed: int = 0) -> LoadedModel:
        """Make every FC layer's weights resident in the backend."""
        if spec.requires_session:
            raise ProtocolError(
                f"{spec.name} carries stateful (non-fc) layers; run it "
                "through backend.open_session(spec) instead of the "
                "stateless per-layer runtime"
            )
        handles: Dict[str, object] = {}
        weights: Dict[str, np.ndarray] = {}
        cells: Dict[str, LSTMCell] = {}
        for i, layer in enumerate(spec.layers):
            if not layer.on_newton:
                continue
            if layer.output_transform == "lstm_cell" and self.device.functional:
                cells[layer.name] = LSTMCell(hidden=layer.m // 4)
            if self.device.functional:
                data = generate_layer_data(layer.m, layer.n, seed=seed + i)
                weights[layer.name] = data.matrix
                handles[layer.name] = self.device.load_matrix(data.matrix)
            else:
                handles[layer.name] = self.device.load_matrix(m=layer.m, n=layer.n)
        return LoadedModel(spec=spec, handles=handles, weights=weights, cells=cells)

    @staticmethod
    def _fit_vector(x: np.ndarray, n: int) -> np.ndarray:
        """Shape glue between layers of synthetic models.

        Folds (averages groups) when the vector is a multiple of the
        target (e.g. 4 LSTM gates back to the hidden width), tiles when
        the target is a multiple, and pads/truncates otherwise.
        """
        if x.shape[0] == n:
            return x
        if x.shape[0] % n == 0:
            return x.reshape(-1, n).mean(axis=0).astype(np.float32)
        if n % x.shape[0] == 0:
            return np.tile(x, n // x.shape[0]).astype(np.float32)
        out = np.zeros(n, dtype=np.float32)
        k = min(n, x.shape[0])
        out[:k] = x[:k]
        return out

    @staticmethod
    def _batchnorm(x: np.ndarray) -> np.ndarray:
        """Vector-wide normalization (the range-dependent host step)."""
        std = float(np.std(x))
        if std == 0.0:
            return x - np.mean(x)
        return ((x - np.mean(x)) / std).astype(np.float32)

    def run(
        self, loaded: LoadedModel, input_vector: Optional[np.ndarray] = None, seed: int = 0
    ) -> ModelRun:
        """One end-to-end inference pass."""
        functional = self.device.functional
        first_newton = next(
            (l for l in loaded.spec.layers if l.on_newton), None
        )
        if first_newton is None:
            raise ProtocolError(f"{loaded.spec.name}: no Newton layers to run")
        x: Optional[np.ndarray] = None
        if functional:
            x = (
                np.asarray(input_vector, dtype=np.float32)
                if input_vector is not None
                else generate_vector(first_newton.n, seed=seed)
            )
        layer_runs: List[LayerRun] = []
        for layer in loaded.spec.layers:
            if layer.on_newton:
                layer_runs.append(self._run_newton_layer(loaded, layer, x))
                if functional:
                    x = self._advance_vector(layer, loaded, x)
            else:
                cycles = self.host_model.host_op_cycles(
                    layer.host_flops, layer.host_bytes
                )
                layer_runs.append(
                    LayerRun(name=layer.name, on_newton=False, cycles=cycles)
                )
        return ModelRun(model=loaded.spec.name, layer_runs=layer_runs, output=x)

    def _layer_input(
        self, loaded: LoadedModel, layer: LayerSpec, x: np.ndarray
    ) -> np.ndarray:
        """Build a layer's input vector, including LSTM recurrence.

        A 2-hidden-wide LSTM layer consumes the concatenation of the
        fed-forward vector and its own previous hidden state (the
        W[x; h] form); narrower LSTM layers consume the feed alone.
        """
        if layer.output_transform == "lstm_cell":
            hidden = layer.m // 4
            cell = loaded.cells[layer.name]
            if layer.n >= 2 * hidden:
                feed = self._fit_vector(x, layer.n - hidden)
                return np.concatenate([feed, cell.h]).astype(np.float32)
        return self._fit_vector(x, layer.n)

    def _run_newton_layer(
        self, loaded: LoadedModel, layer: LayerSpec, x: Optional[np.ndarray]
    ) -> LayerRun:
        handle = loaded.handles[layer.name]
        vector = None
        if self.device.functional:
            assert x is not None
            vector = self._layer_input(loaded, layer, x)
        result = self.device.gemv(handle, vector)
        exposed = self.pipeline.exposed_cycles(batchnorm=layer.batchnorm)
        run = LayerRun(
            name=layer.name,
            on_newton=True,
            cycles=result.cycles,
            exposed_cycles=exposed,
        )
        self._last_output = result.output
        return run

    def _advance_vector(
        self, layer: LayerSpec, loaded: LoadedModel, x: Optional[np.ndarray]
    ) -> np.ndarray:
        out = self._last_output
        assert out is not None
        out = apply_activation(layer.activation, out)
        if layer.output_transform == "lstm_cell":
            out = loaded.cells[layer.name].step(out)
        if layer.batchnorm:
            out = self._batchnorm(out)
        return out.astype(np.float32)

    def run_sequence(
        self, loaded: LoadedModel, steps: int, seed: int = 0
    ) -> List[ModelRun]:
        """Decode ``steps`` tokens through a recurrent model.

        Recurrent cell state persists across tokens (and is reset at the
        start); the device clock also runs continuously, so refresh
        interference accumulates over the sequence as on hardware.
        """
        if steps <= 0:
            raise ProtocolError("a sequence needs at least one step")
        loaded.reset_state()
        runs: List[ModelRun] = []
        for step in range(steps):
            runs.append(self.run(loaded, seed=seed + step))
        return runs
