"""Request serving under load: the edge-inference story, quantified.

The paper's motivation is inference "at the edge (e.g., smartphones,
hand-held devices, or even edge servers)" where batching is not an
option: requests arrive one at a time and want low latency. This module
runs a simple FIFO queueing simulation — Poisson arrivals, deterministic
per-request service (Newton's DRAM-like latencies are deterministic by
design; Section III-D) — and reports tail latency versus offered load
for Newton and for a batch-1 GPU serving the same stream. Newton's ~50x
shorter service time translates directly into ~50x more sustainable
load at bounded tails.

Two production-scale extensions ride on the same queueing core:

* ``servers=N`` turns the single server into an N-replica M/D/c queue
  (one shared FIFO, the next free replica serves) — the data-parallel
  deployment a replicated :class:`~repro.cluster.ShardedCluster`
  models on the execution side;
* :meth:`ServingSimulator.from_backend` derives the service time from
  any :class:`~repro.backends.base.Backend` (or cluster) instead of a
  hand-fed scalar, so the queueing study and the execution engine can
  never drift apart.

Statistic semantics (shared by both serving modes):

* ``max_queue`` is the deepest observed *backlog* — requests arrived
  but not yet completed. In :meth:`ServingSimulator.simulate` it is
  sampled at each arrival; in :meth:`ServingSimulator.simulate_batched`
  at each window close (the largest batch actually dispatched is the
  separate ``max_batch_served``, which is capped at ``max_batch`` and
  says nothing about backlog).
* ``stable`` reflects the *serving mode's own capacity*. Plain serving
  is stable when ``offered_load < 1``; batched serving defines
  ``offered_load`` relative to batch-1 capacity (so it is comparable
  with :meth:`~ServingSimulator.simulate`), but its true capacity is
  ``max_batch`` requests per ``window_cycles + batch_service(max_batch)``
  cycles — a batched stream at offered load 2.0 can be perfectly
  stable. :attr:`ServingResult.effective_load` stores load relative to
  the true capacity, and ``stable`` derives from it.

The live serving layer built on top of this model lives in
:mod:`repro.serving` (see ``docs/serving-gateway.md``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.telemetry import MetricsRegistry


@dataclass(frozen=True)
class ServingResult:
    """Latency statistics of one simulated request stream."""

    offered_load: float
    """Arrival rate over aggregate *batch-1* service rate. For plain
    serving this is fleet utilization; for batched serving it is kept
    batch-1-relative so Newton-vs-GPU sweeps share an x-axis (see
    :attr:`effective_load` for utilization of the true capacity)."""
    requests: int
    p50: float
    p95: float
    p99: float
    mean: float
    max_queue: int
    """Deepest observed backlog (arrived-but-not-completed requests) —
    sampled per arrival for plain serving, per window close for batched
    serving. Not the largest batch served; that is
    :attr:`max_batch_served`."""
    servers: int = 1
    """Replica count the stream was served by."""
    effective_load: Optional[float] = None
    """Arrival rate over the serving mode's *true* capacity. Equal to
    :attr:`offered_load` for plain serving; for batched serving the
    capacity is ``max_batch / (window_cycles + batch_service(max_batch))``
    requests per cycle, so a batched stream can run at offered load
    2.0 with an effective load well under 1. ``None`` (direct
    construction) falls back to :attr:`offered_load`."""
    max_batch_served: int = 1
    """Largest batch dispatched in one service (always 1 for plain
    serving; capped at ``max_batch`` for batched serving)."""

    @property
    def stable(self) -> bool:
        """Whether the queue could keep up, for this serving mode.

        Derived from :attr:`effective_load` (the mode's true
        utilization), not :attr:`offered_load`: a batched stream at
        batch-1-relative load 2.0 is stable whenever its batching
        capacity covers the arrival rate.
        """
        load = (
            self.effective_load
            if self.effective_load is not None
            else self.offered_load
        )
        return load < 1.0


class ServingSimulator:
    """FIFO queue with deterministic service and ``servers`` replicas.

    With ``servers=1`` (the default) this is the original single-server
    M/D/1 study; ``servers=N`` models N identical replicas draining one
    shared FIFO (M/D/c): each arrival is served by the earliest-free
    replica. ``offered_load`` is always relative to the *aggregate*
    capacity (``servers / service_cycles``), so a load of 0.8 means the
    fleet as a whole is 80% utilized regardless of the replica count.

    Pass a :class:`~repro.telemetry.MetricsRegistry` to publish
    queue-depth and tail-latency gauges (``serving.max_queue``,
    ``serving.p99``, ...) after every simulated stream.
    """

    def __init__(
        self,
        service_cycles: float,
        seed: int = 0,
        *,
        servers: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if service_cycles <= 0:
            raise ConfigurationError("service time must be positive")
        if servers < 1:
            raise ConfigurationError("at least one server is required")
        self.service_cycles = float(service_cycles)
        self.servers = int(servers)
        self.seed = seed
        self.metrics = metrics

    @classmethod
    def from_backend(
        cls,
        backend,
        handle,
        seed: int = 0,
        *,
        servers: int = 1,
        metrics: Optional[MetricsRegistry] = None,
    ) -> "ServingSimulator":
        """A simulator whose service time comes from the backend itself.

        ``backend`` is anything satisfying the
        :class:`~repro.backends.base.Backend` protocol (including a
        :class:`~repro.cluster.ShardedCluster`); the per-request service
        is ``backend.service_cycles(handle)`` — one GEMV against the
        resident matrix, measured (Newton) or predicted (models).
        """
        return cls(
            float(backend.service_cycles(handle)),
            seed,
            servers=servers,
            metrics=metrics,
        )

    def _publish(self, result: "ServingResult", prefix: str) -> None:
        if self.metrics is None:
            return
        self.metrics.counter(f"{prefix}.requests").inc(result.requests)
        for gauge in ("offered_load", "p50", "p95", "p99", "mean"):
            self.metrics.gauge(f"{prefix}.{gauge}").set(getattr(result, gauge))
        self.metrics.gauge(f"{prefix}.max_queue").set(result.max_queue)
        self.metrics.gauge(f"{prefix}.servers").set(result.servers)
        self.metrics.gauge(f"{prefix}.max_batch_served").set(
            result.max_batch_served
        )
        if result.effective_load is not None:
            self.metrics.gauge(f"{prefix}.effective_load").set(
                result.effective_load
            )

    def simulate(
        self, offered_load: float, requests: int = 2000
    ) -> ServingResult:
        """Serve a Poisson stream at the given utilization.

        Args:
            offered_load: arrival rate as a fraction of the fleet's
                aggregate capacity (servers/service_cycles). Must be
                positive; values >= 1 are allowed and report the
                (unbounded) backlog.
            requests: stream length.
        """
        if offered_load <= 0:
            raise ConfigurationError("offered load must be positive")
        if requests <= 0:
            raise ConfigurationError("simulate at least one request")
        rng = np.random.default_rng(self.seed)
        mean_interarrival = self.service_cycles / (offered_load * self.servers)
        interarrivals = rng.exponential(mean_interarrival, size=requests)
        arrivals = np.cumsum(interarrivals)

        latencies = np.empty(requests, dtype=np.float64)
        completions = np.empty(requests, dtype=np.float64)
        # One shared FIFO over `servers` replicas: each arrival is served
        # by the earliest-free replica. With one replica this degenerates
        # to the original single-server recurrence (identical floats).
        free = [0.0] * self.servers
        max_queue = 0
        done = 0
        for i in range(requests):
            start = max(arrivals[i], heapq.heappop(free))
            completion = start + self.service_cycles
            heapq.heappush(free, completion)
            completions[i] = completion
            latencies[i] = completion - arrivals[i]
            # Queue depth at this arrival: earlier requests not finished.
            # FIFO starts are monotone and service is deterministic, so
            # completions are monotone too (with any replica count) and a
            # single pointer replaces the old O(n^2) per-arrival scan.
            while done < i and completions[done] <= arrivals[i]:
                done += 1
            depth = i - done
            if depth > max_queue:
                max_queue = depth
        result = ServingResult(
            offered_load=offered_load,
            requests=requests,
            p50=float(np.percentile(latencies, 50)),
            p95=float(np.percentile(latencies, 95)),
            p99=float(np.percentile(latencies, 99)),
            mean=float(np.mean(latencies)),
            max_queue=max_queue,
            servers=self.servers,
            effective_load=offered_load,
        )
        self._publish(result, "serving")
        return result

    def simulate_batched(
        self,
        offered_load: float,
        window_cycles: float,
        batch_service,
        requests: int = 2000,
        max_batch: int = 64,
    ) -> ServingResult:
        """Batching server: requests accumulate for a window, then serve.

        This is how a GPU actually fights its poor batch-1 efficiency —
        trading latency (the window wait) for throughput (batch reuse).
        ``batch_service(k)`` gives the service time of a k-batch;
        ``offered_load`` remains relative to the *batch-1* capacity so it
        is comparable with :meth:`simulate`. Batching is modeled on a
        single server only (a batch occupies the whole accelerator);
        construct a ``servers=1`` simulator for batched streams.
        """
        if self.servers != 1:
            raise ConfigurationError(
                "batched serving models a single accelerator; use servers=1"
            )
        if offered_load <= 0:
            raise ConfigurationError("offered load must be positive")
        if window_cycles <= 0:
            raise ConfigurationError("the batching window must be positive")
        if requests <= 0:
            raise ConfigurationError("simulate at least one request")
        rng = np.random.default_rng(self.seed)
        mean_interarrival = self.service_cycles / offered_load
        arrivals = np.cumsum(rng.exponential(mean_interarrival, size=requests))

        latencies: List[float] = []
        server_free = 0.0
        i = 0
        max_queue = 0
        max_batch_served = 0
        while i < len(arrivals):
            # The window opens at the first waiting arrival (or when the
            # server frees, if it is backlogged).
            window_open = max(arrivals[i], server_free)
            window_close = window_open + window_cycles
            j = i
            while (
                j < len(arrivals)
                and arrivals[j] <= window_close
                and j - i < max_batch
            ):
                j += 1
            batch = j - i
            # Backlog at window close: everything arrived by then minus
            # everything already served. Previous batches always complete
            # by window_open (server_free <= window_open), so the backlog
            # is exactly the waiting requests — including any beyond the
            # max_batch cap that this batch leaves behind.
            arrived = int(np.searchsorted(arrivals, window_close, side="right"))
            max_queue = max(max_queue, arrived - i)
            max_batch_served = max(max_batch_served, batch)
            start = max(window_close, server_free)
            completion = start + float(batch_service(batch))
            latencies.extend(completion - arrivals[k] for k in range(i, j))
            server_free = completion
            i = j
        lat = np.array(latencies)
        # True capacity of the batched server: max_batch requests per
        # full window-plus-service cycle.
        capacity = max_batch / (window_cycles + float(batch_service(max_batch)))
        arrival_rate = offered_load / self.service_cycles
        result = ServingResult(
            offered_load=offered_load,
            requests=requests,
            p50=float(np.percentile(lat, 50)),
            p95=float(np.percentile(lat, 95)),
            p99=float(np.percentile(lat, 99)),
            mean=float(np.mean(lat)),
            max_queue=max_queue,
            effective_load=arrival_rate / capacity,
            max_batch_served=max_batch_served,
        )
        self._publish(result, "serving_batched")
        return result

    def max_stable_load(
        self, latency_budget: float, requests: int = 2000
    ) -> float:
        """Highest offered load whose p99 stays inside ``latency_budget``.

        Found by bisection over (0, 1); returns 0.0 if even a trickle
        misses the budget (service time alone exceeds it).
        """
        if latency_budget <= self.service_cycles:
            return 0.0
        lo, hi = 0.01, 0.999
        # Verify the lower bound before trusting bisection: the loop
        # only ever *raises* lo to loads whose p99 passed, so an
        # infeasible initial lo would otherwise be returned unchecked
        # (a budget barely above the bare service time fails even at a
        # trickle of load, because two near-coincident arrivals queue).
        if self.simulate(lo, requests).p99 > latency_budget:
            return 0.0
        if self.simulate(hi, requests).p99 <= latency_budget:
            return hi
        for _ in range(24):
            mid = (lo + hi) / 2
            if self.simulate(mid, requests).p99 <= latency_budget:
                lo = mid
            else:
                hi = mid
        return lo
