"""Numeric substrates: software bfloat16, the adder tree, activations.

Newton stipulates 16-bit bfloat16 data ("our customers and partners
stipulate that recommendation systems ... need high accuracy"), and its
per-bank datapath is a 16-lane multiplier array feeding a pipelined adder
tree with one accumulating result latch. This package provides a bit-exact
software model of that arithmetic plus the activation-function units.
"""

from repro.numerics.bfloat16 import (
    BF16_EPS,
    bf16_add,
    bf16_mul,
    float_to_bf16_bits,
    bf16_bits_to_float,
    quantize_bf16,
)
from repro.numerics.adder_tree import AdderTree, adder_tree_reduce
from repro.numerics.activation import (
    ACTIVATIONS,
    identity,
    relu,
    sigmoid,
    tanh_fn,
    apply_activation,
)
from repro.numerics.lut import ActivationLUT

__all__ = [
    "BF16_EPS",
    "quantize_bf16",
    "float_to_bf16_bits",
    "bf16_bits_to_float",
    "bf16_mul",
    "bf16_add",
    "AdderTree",
    "adder_tree_reduce",
    "ACTIVATIONS",
    "identity",
    "relu",
    "sigmoid",
    "tanh_fn",
    "apply_activation",
    "ActivationLUT",
]
