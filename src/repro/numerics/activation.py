"""Neural-network activation functions applied by the host (Section III-C).

In the default (interleaved, full-reuse) Newton design the host applies
the activation to the final reduced outputs; only the no-reuse variant
uses the in-DRAM lookup table (:mod:`repro.numerics.lut`).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

ActivationFn = Callable[[np.ndarray], np.ndarray]


def identity(x: np.ndarray) -> np.ndarray:
    """No-op activation (used by linear output layers)."""
    return np.asarray(x, dtype=np.float32)


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(np.asarray(x, dtype=np.float32), np.float32(0.0))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    x = np.asarray(x, dtype=np.float32)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh_fn(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(np.asarray(x, dtype=np.float32))


def gelu(x: np.ndarray) -> np.ndarray:
    """Gaussian error linear unit (BERT's FFN activation), tanh form."""
    x = np.asarray(x, dtype=np.float32)
    inner = np.float32(0.7978845608) * (x + np.float32(0.044715) * x * x * x)
    return np.float32(0.5) * x * (1.0 + np.tanh(inner))


ACTIVATIONS: Dict[str, ActivationFn] = {
    "identity": identity,
    "relu": relu,
    "sigmoid": sigmoid,
    "tanh": tanh_fn,
    "gelu": gelu,
}


def apply_activation(name: str, x: np.ndarray) -> np.ndarray:
    """Apply a named activation function.

    Raises:
        KeyError: if ``name`` is not one of :data:`ACTIVATIONS`.
    """
    try:
        fn = ACTIVATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown activation {name!r}; expected one of {sorted(ACTIVATIONS)}"
        ) from None
    return fn(x)
