"""The per-bank pipelined adder tree (Figure 4).

Each bank reduces its 16 lane products through a 16-to-1 adder tree (15
adders) plus one accumulation adder into a single bfloat16 result latch.
The tree is pipelined: a new set of additions can start every ``tCCD``
cycles, while the full reduction takes ``PIPELINE_DEPTH`` stages — which
is why the host memory controller must insert a drain delay before
``READRES`` (Section III-D, timing issue (2)).

This module provides the bit-exact functional reduction; the pipeline
*timing* lives in :mod:`repro.dram.timing` as ``t_tree_drain``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.numerics.bfloat16 import bf16_add, quantize_bf16
from repro.numerics.vectorized import LaneScratch


def adder_tree_reduce(products: np.ndarray) -> float:
    """Reduce lane products through a binary tree with bf16 rounding.

    Args:
        products: 1-D array whose length is a power of two (the lane
            count, 16 in the HBM2E-like configuration).

    Returns:
        The bfloat16-rounded tree sum as a float.
    """
    level = quantize_bf16(np.asarray(products, dtype=np.float32))
    n = level.shape[0]
    if n == 0 or (n & (n - 1)) != 0:
        raise ConfigurationError(f"adder tree width must be a power of two, got {n}")
    while level.shape[0] > 1:
        level = bf16_add(level[0::2], level[1::2])
    return float(level[0])


class AdderTree:
    """A ``width``-leaf adder tree with an accumulating result latch.

    Mirrors Figure 4: the tree output feeds one extra adder whose other
    input is the (single, bfloat16) result latch. ``feed`` models one
    COMP command's reduction; ``read_and_clear`` models READRES.
    """

    def __init__(self, width: int = 16):
        if width <= 0 or (width & (width - 1)) != 0:
            raise ConfigurationError(f"adder tree width must be a power of two, got {width}")
        self.width = width
        self._latch = 0.0
        self._dirty = False
        # Hot-loop scratch: the scalar path reduces one lane vector per
        # call, so the operand/level/accumulation buffers are allocated
        # once here instead of per call (see numerics/vectorized.py).
        self._scratch = LaneScratch(width)

    @property
    def pipeline_depth(self) -> int:
        """Number of adder stages, including the accumulation stage."""
        return self.width.bit_length()  # log2(width) tree stages + 1 accumulate

    @property
    def latch(self) -> float:
        """Current (bfloat16) value of the result latch."""
        return self._latch

    @property
    def dirty(self) -> bool:
        """True once the latch holds an un-read partial result."""
        return self._dirty

    def reduce(self, products: Sequence[float]) -> float:
        """Reduce one set of lane products; do not touch the latch.

        The stateless half of :meth:`feed`, for datapaths that manage
        their own accumulation latches (e.g. the multi-latch
        :class:`~repro.core.mac_unit.BankMacUnit`) — the rounding/order
        invariant lives here in one place.
        """
        values = np.asarray(products, dtype=np.float32)
        if values.shape != (self.width,):
            # Off-width inputs (legal for any power of two) take the
            # allocating reference path; the scratch is width-shaped.
            return adder_tree_reduce(values)
        np.copyto(self._scratch.a, values)
        self._scratch.quantize(self._scratch.a)
        return self._scratch.tree_reduce(self._scratch.a)

    def feed(self, products: Sequence[float]) -> None:
        """Reduce one set of lane products and accumulate into the latch."""
        tree_sum = self.reduce(products)
        self._latch = self._scratch.accumulate(self._latch, tree_sum)
        self._dirty = True

    def read_and_clear(self) -> float:
        """Return the latch value and reset it (READRES semantics)."""
        value = self._latch
        self._latch = 0.0
        self._dirty = False
        return value
