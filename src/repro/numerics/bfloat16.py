"""Software bfloat16 arithmetic on NumPy arrays.

bfloat16 is float32 truncated to 16 bits: 1 sign, 8 exponent, 7 mantissa
bits. Newton's in-DRAM datapath computes in bfloat16, so the functional
simulator must round *at every operation* (multiply, each adder-tree
stage, and the result-latch accumulation) to be bit-faithful.

The implementation rounds float32 to bfloat16 with round-to-nearest-even
on the trailing 16 bits, which matches hardware bfloat16 units (and
TensorFlow's reference conversion).
"""

from __future__ import annotations

import numpy as np

BF16_EPS: float = 2.0**-7
"""Machine epsilon of bfloat16 (7 explicit mantissa bits)."""


def float_to_bf16_bits(values: np.ndarray) -> np.ndarray:
    """Round float32 values to bfloat16 and return the uint16 bit patterns.

    Rounding is round-to-nearest-even on the discarded low 16 bits. NaNs
    are quietened (forced to a canonical quiet NaN) so they survive the
    truncation; infinities round to themselves.
    """
    f32 = np.ascontiguousarray(values, dtype=np.float32)
    bits = f32.view(np.uint32)
    # round-to-nearest-even: add 0x7FFF + LSB of the surviving half.
    rounding_bias = np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))
    rounded = (bits + rounding_bias) >> np.uint32(16)
    out = rounded.astype(np.uint16)
    nan_mask = np.isnan(f32)
    if np.any(nan_mask):
        out = out.copy()
        out[nan_mask] = np.uint16(0x7FC0)  # canonical quiet NaN
    return out


def bf16_bits_to_float(bits: np.ndarray) -> np.ndarray:
    """Expand uint16 bfloat16 bit patterns to float32 (exact)."""
    u16 = np.ascontiguousarray(bits, dtype=np.uint16)
    expanded = u16.astype(np.uint32) << np.uint32(16)
    return expanded.view(np.float32)


def quantize_bf16(values: np.ndarray) -> np.ndarray:
    """Round float values to the nearest bfloat16, returned as float32."""
    return bf16_bits_to_float(float_to_bf16_bits(values))


def bf16_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiply bfloat16 operands (given as float32) with bf16 rounding.

    Operands are first snapped to the bfloat16 grid, multiplied exactly in
    float32 (a bf16 x bf16 product has at most 15 mantissa bits so float32
    holds it exactly), then rounded back to bfloat16.
    """
    qa = quantize_bf16(np.asarray(a, dtype=np.float32))
    qb = quantize_bf16(np.asarray(b, dtype=np.float32))
    return quantize_bf16(qa * qb)


def bf16_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add bfloat16 operands (given as float32) with bf16 rounding.

    The float32 sum of two bfloat16 values is exact whenever the exponent
    difference is at most 16, and correctly rounded otherwise, so rounding
    the float32 sum to bfloat16 reproduces a fused bf16 adder.
    """
    qa = quantize_bf16(np.asarray(a, dtype=np.float32))
    qb = quantize_bf16(np.asarray(b, dtype=np.float32))
    return quantize_bf16(qa + qb)
