"""Per-channel lookup-table activation unit (Section III-C).

The Newton-no-reuse variant applies the neural activation *inside* the
DRAM using a single lookup table per channel ("conceptually multi-ported"
so results in different banks can be served). The table maps a bfloat16
input to a bfloat16 output by indexing on a clamped, uniformly sampled
input range — the standard hardware LUT construction.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.numerics.activation import apply_activation
from repro.numerics.bfloat16 import quantize_bf16


class ActivationLUT:
    """A uniformly sampled activation lookup table.

    Args:
        name: activation to approximate (see :data:`ACTIVATIONS`).
        entries: number of table entries (a power of two; hardware tables
            are typically 256-2048 entries).
        lo, hi: input clamp range; inputs outside are clamped, which is
            accurate for saturating activations (sigmoid/tanh) and exact
            for ReLU by special-casing.
    """

    def __init__(self, name: str, entries: int = 1024, lo: float = -8.0, hi: float = 8.0):
        if entries <= 1 or (entries & (entries - 1)) != 0:
            raise ConfigurationError(f"LUT entries must be a power of two > 1, got {entries}")
        if not lo < hi:
            raise ConfigurationError(f"LUT range must satisfy lo < hi, got [{lo}, {hi}]")
        self.name = name
        self.entries = entries
        self.lo = float(lo)
        self.hi = float(hi)
        grid = np.linspace(lo, hi, entries, dtype=np.float32)
        self._table = quantize_bf16(apply_activation(name, grid))
        self._step = (self.hi - self.lo) / (entries - 1)
        self.lookups = 0

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Look up activations for ``x``, with nearest-entry indexing."""
        x = np.asarray(x, dtype=np.float32)
        self.lookups += int(x.size)
        if self.name == "relu":
            # ReLU is exact in hardware (a mux on the sign bit), no table.
            return quantize_bf16(np.maximum(x, np.float32(0.0)))
        clamped = np.clip(x, self.lo, self.hi)
        idx = np.rint((clamped - self.lo) / self._step).astype(np.int64)
        return self._table[idx]

    def max_error(self, probe_points: int = 4096) -> float:
        """Worst absolute error against the exact activation on the range."""
        xs = np.linspace(self.lo, self.hi, probe_points, dtype=np.float32)
        exact = apply_activation(self.name, xs)
        return float(np.max(np.abs(self.apply(xs) - exact)))
