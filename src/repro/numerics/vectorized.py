"""Batched bfloat16 kernels: whole COMP bursts as single array ops.

The functional datapath's bit-level contract is fixed by the scalar
reference (:class:`~repro.core.mac_unit.BankMacUnit`): round to nearest
even at the multiplier, at every adder-tree stage, and at the result
latch's accumulation, in exactly the order the command stream issues.
This module provides the same arithmetic over *blocks* — a whole buffer
group's worth of tiles evaluated as ``(tiles, banks, subchunks, lanes)``
arrays — so the per-command (and per-tile) Python interpreter overhead
amortizes across hundreds of COMP commands per NumPy call.

Two facts make the batch bit-identical rather than merely close:

* every rounding step is **elementwise** (:func:`quantize_bf16` is a
  pure bit transform of each float32 independently), so evaluating many
  lanes/banks/tiles in one array op performs the identical operation on
  each element as evaluating them one at a time; and
* operand re-quantization is the **identity** on values already on the
  bfloat16 grid (idempotence, pinned by the property suite) and NaN
  payloads are canonicalized by the *result* rounding regardless, so
  :func:`grid_add` (one rounding of the float32 sum) is bit-equal to
  :func:`~repro.numerics.bfloat16.bf16_add` (which also re-rounds both
  operands) whenever the operands are on-grid — which every producer in
  the datapath guarantees: storage rows are expanded bf16 bit patterns,
  the global buffer quantizes on load, latches only ever hold rounded
  results or zero.

The differential suites in ``tests/numerics/test_vectorized.py`` pin the
batched kernels bit-identical to the scalar reference across NaN, ±inf,
subnormal, and mixed-exponent operands.

:class:`LaneScratch` serves the opposite regime: the scalar fallback
path (:class:`~repro.core.mac_unit.BankMacUnit`,
:meth:`~repro.numerics.adder_tree.AdderTree.feed`) runs one 16-lane
sub-chunk at a time, where per-call ``np.array([...])`` construction
dominated; its preallocated buffers make the hot loop allocation-free.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ProtocolError
from repro.numerics.bfloat16 import quantize_bf16

CANONICAL_NAN_F32: np.float32 = np.array([0x7FC00000], dtype=np.uint32).view(
    np.float32
)[0]
"""The canonical quiet NaN every rounding step produces (bf16 ``0x7FC0``,
expanded to float32)."""


def quantize_bf16_into(
    values: np.ndarray,
    out: np.ndarray,
    *,
    bias_scratch: "np.ndarray | None" = None,
    nan_scratch: "np.ndarray | None" = None,
) -> np.ndarray:
    """Round float32 values to the bfloat16 grid, writing into ``out``.

    Bit-identical to :func:`~repro.numerics.bfloat16.quantize_bf16`
    (round-to-nearest-even on the discarded 16 bits, NaNs canonicalized)
    but allocation-free when the scratch buffers are supplied: ``out``
    may alias ``values``, ``bias_scratch`` must be uint32 and
    ``nan_scratch`` bool, both of ``out``'s shape.
    """
    if out is not values:
        np.copyto(out, values)
    bits = out.view(np.uint32)
    if nan_scratch is not None:
        nan_mask = np.isnan(out, out=nan_scratch)
    else:
        nan_mask = np.isnan(out)
    if bias_scratch is not None:
        bias = np.right_shift(bits, 16, out=bias_scratch)
    else:
        bias = bits >> np.uint32(16)
    np.bitwise_and(bias, 1, out=bias)
    np.add(bias, 0x7FFF, out=bias)
    np.add(bits, bias, out=bits)  # uint32 wrap, exactly like the reference
    np.right_shift(bits, 16, out=bits)
    np.left_shift(bits, 16, out=bits)
    if nan_mask.any():
        out[nan_mask] = CANONICAL_NAN_F32
    return out


def grid_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """bfloat16 addition of operands already on the bfloat16 grid.

    One rounding of the exact float32 sum — bit-equal to
    :func:`~repro.numerics.bfloat16.bf16_add` for on-grid operands (see
    the module docstring for why), at half the array traffic. Overflow
    to infinity is the rounding's defined behaviour, so the FP warnings
    are suppressed rather than surfaced.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        return quantize_bf16(a + b)


def tree_reduce_block(products: np.ndarray) -> np.ndarray:
    """Reduce the trailing ``lanes`` axis through the bf16 adder tree.

    ``products`` is ``(..., lanes)`` with ``lanes`` a power of two,
    already on the bfloat16 grid (the multiplier's rounded outputs).
    Returns the ``(...)``-shaped tree sums, rounding at every stage in
    the hardware's fixed pairing order — identical, element for element,
    to :func:`~repro.numerics.adder_tree.adder_tree_reduce` per slice.
    """
    lanes = products.shape[-1]
    if lanes == 0 or (lanes & (lanes - 1)) != 0:
        raise ProtocolError(
            f"adder tree width must be a power of two, got {lanes}"
        )
    level = products
    while level.shape[-1] > 1:
        level = grid_add(level[..., 0::2], level[..., 1::2])
    return level[..., 0]


def latch_accumulate_block(
    carry: np.ndarray, tree_sums: np.ndarray
) -> np.ndarray:
    """Accumulate per-sub-chunk tree sums into result latches, in order.

    ``carry`` is the latches' entry value, shape ``(...)``;
    ``tree_sums`` is ``(..., subchunks)``. The sub-chunk axis is walked
    sequentially in ascending order — the one serialization the COMP
    stream's accumulation order genuinely imposes — while every leading
    axis (tiles, banks) advances in parallel. Returns the updated
    latches (a new array).
    """
    # Entry rounding of the carry: the identity for the on-grid values
    # the engine's latches always hold, and exactly what the reference
    # path's per-step operand rounding would do to anything else.
    acc = quantize_bf16(np.asarray(carry, dtype=np.float32))
    for s in range(tree_sums.shape[-1]):
        acc = grid_add(acc, tree_sums[..., s])
    return acc


def batched_tile_compute(
    matrix_tiles: np.ndarray,
    input_chunk: np.ndarray,
    carry: np.ndarray,
    lanes: int,
) -> np.ndarray:
    """Evaluate a whole buffer group's COMP bursts as one vector op.

    The batched form of :func:`~repro.core.mac_unit.tile_compute`: every
    tile that reads the same global-buffer chunk is evaluated together.

    Args:
        matrix_tiles: ``(tiles, banks, chunk_elems)`` float32 on the
            bfloat16 grid (expanded straight from storage bits) — each
            tile's open-row data across the channel's banks.
        input_chunk: ``(chunk_elems,)`` float32 on the bfloat16 grid
            (the global buffer's contents, shared by every tile).
        carry: ``(tiles, banks)`` float32 — each tile's target-latch
            value on entry.
        lanes: multipliers per bank (the sub-chunk width).

    Returns:
        The ``(tiles, banks)`` updated latch values: multiplier
        rounding, per-stage tree rounding, and ascending-sub-chunk latch
        accumulation, exactly like ``tiles`` sequential scalar tiles.
    """
    if matrix_tiles.ndim != 3:
        raise ProtocolError(
            f"matrix tiles must be (tiles, banks, chunk_elems), got shape "
            f"{matrix_tiles.shape}"
        )
    tiles, banks, chunk_elems = matrix_tiles.shape
    if input_chunk.shape != (chunk_elems,):
        raise ProtocolError(
            f"input chunk of {input_chunk.shape[0]} elements, matrix "
            f"tiles have {chunk_elems}"
        )
    if carry.shape != (tiles, banks):
        raise ProtocolError(
            f"carry of shape {carry.shape}, expected ({tiles}, {banks})"
        )
    if lanes <= 0 or chunk_elems % lanes != 0:
        raise ProtocolError("chunk width must be a whole number of sub-chunks")
    subchunks = chunk_elems // lanes
    with np.errstate(over="ignore", invalid="ignore"):
        products = quantize_bf16(matrix_tiles * input_chunk)
    tree_sums = tree_reduce_block(
        products.reshape(tiles, banks, subchunks, lanes)
    )
    return latch_accumulate_block(carry, tree_sums)


class LaneScratch:
    """Preallocated buffers for one bank's scalar (per-COMP) datapath.

    The scalar fallback path processes a single ``lanes``-wide sub-chunk
    per call; before this class, every call built fresh 16-element
    arrays for the operands, the products, each tree level, and the
    1-element accumulation cell. All of that now lives here, allocated
    once per :class:`~repro.core.mac_unit.BankMacUnit` /
    :class:`~repro.numerics.adder_tree.AdderTree`.
    """

    def __init__(self, lanes: int):
        self.lanes = lanes
        self.a = np.empty(lanes, dtype=np.float32)
        self.b = np.empty(lanes, dtype=np.float32)
        self._bias = np.empty(lanes, dtype=np.uint32)
        self._nan = np.empty(lanes, dtype=np.bool_)
        self.cell = np.empty(1, dtype=np.float32)
        self._cell_bias = np.empty(1, dtype=np.uint32)
        self._cell_nan = np.empty(1, dtype=np.bool_)

    def quantize(self, buf: np.ndarray) -> np.ndarray:
        """Round a lane-shaped scratch view to bf16, in place."""
        n = buf.shape[0]
        return quantize_bf16_into(
            buf,
            buf,
            bias_scratch=self._bias[:n],
            nan_scratch=self._nan[:n],
        )

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``bf16_mul`` into scratch: quantized operands, rounded product.

        Returns a view of the internal product buffer — consume it (via
        :meth:`tree_reduce`) before the next call.
        """
        np.copyto(self.a, a)
        np.copyto(self.b, b)
        self.quantize(self.a)
        self.quantize(self.b)
        with np.errstate(over="ignore", invalid="ignore"):
            np.multiply(self.a, self.b, out=self.a)
        return self.quantize(self.a)

    def tree_reduce(self, products: np.ndarray) -> float:
        """The adder tree over one lane vector, ping-ponged in scratch.

        ``products`` must already be on the bf16 grid (the multiplier's
        output); rounding happens at every stage, in the fixed pairing
        order of :func:`~repro.numerics.adder_tree.adder_tree_reduce`.
        """
        buf, spare = products, (self.b if products is self.a else self.a)
        n = buf.shape[0]
        while n > 1:
            half = n // 2
            with np.errstate(over="ignore", invalid="ignore"):
                np.add(buf[0:n:2], buf[1:n:2], out=spare[:half])
            buf, spare = spare, buf
            self.quantize(buf[:half])
            n = half
        return float(buf[0])

    def accumulate(self, latch_value: float, tree_sum: float) -> float:
        """One rounded accumulation step into a result latch.

        Both inputs are on-grid by construction (latches hold rounded
        results or zero), so the single-rounding :func:`grid_add` form
        is bit-identical to the reference ``bf16_add``.
        """
        self.cell[0] = latch_value
        with np.errstate(over="ignore", invalid="ignore"):
            self.cell[0] += np.float32(tree_sum)
        quantize_bf16_into(
            self.cell,
            self.cell,
            bias_scratch=self._cell_bias,
            nan_scratch=self._cell_nan,
        )
        return float(self.cell[0])
