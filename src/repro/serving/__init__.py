"""The live serving layer: gateway, traffic, and its async kernel.

This package promotes the offline M/D/c study in
:mod:`repro.host.serving` into a running request gateway (ROADMAP item
1): deterministic virtual-time coroutines (:mod:`repro.serving.loop`)
drive an admission-controlled, continuously-batched, autoscaled fleet
of backend replicas (:mod:`repro.serving.gateway`) against seeded
traffic traces (:mod:`repro.serving.traffic`). See
``docs/serving-gateway.md`` for the architecture.
"""

from repro.serving.gateway import (
    BackendReplica,
    ClassStats,
    DecodeSessionSpec,
    FixedServiceReplica,
    GatewayConfig,
    GatewayResult,
    SLOClass,
    ServingGateway,
    SessionStats,
    backend_replica_factory,
    decode_sessions,
    default_classes,
)
from repro.serving.loop import (
    SimEvent,
    SimFuture,
    SimQueue,
    SimTask,
    VirtualLoop,
    first_of,
)
from repro.serving.traffic import (
    DEFAULT_CLASS,
    TRACE_KINDS,
    TRACE_SCHEMA,
    Trace,
    TraceRequest,
    TraceSpec,
    bursty_trace,
    diurnal_trace,
    interarrival_for_load,
    make_trace,
    parse_trace_spec,
    poisson_trace,
    resolve_trace_argument,
    trace_from_json,
    trace_to_json,
)

__all__ = [
    "BackendReplica",
    "ClassStats",
    "DEFAULT_CLASS",
    "DecodeSessionSpec",
    "FixedServiceReplica",
    "GatewayConfig",
    "GatewayResult",
    "SLOClass",
    "ServingGateway",
    "SessionStats",
    "SimEvent",
    "SimFuture",
    "SimQueue",
    "SimTask",
    "TRACE_KINDS",
    "TRACE_SCHEMA",
    "Trace",
    "TraceRequest",
    "TraceSpec",
    "VirtualLoop",
    "backend_replica_factory",
    "bursty_trace",
    "decode_sessions",
    "default_classes",
    "diurnal_trace",
    "first_of",
    "interarrival_for_load",
    "make_trace",
    "parse_trace_spec",
    "poisson_trace",
    "resolve_trace_argument",
    "trace_from_json",
    "trace_to_json",
]
