"""The async serving gateway: admission, continuous batching, autoscaling.

This is ROADMAP item 1 made concrete — the offline M/D/c study in
:mod:`repro.host.serving` promoted to a *live* serving layer in front of
the execution stack. The gateway fronts anything that satisfies the
:class:`~repro.backends.base.Backend` protocol — a single backend, an
in-process :class:`~repro.cluster.ShardedCluster`, or a multiprocess
:class:`~repro.cluster.ProcessShardedCluster` — and serves a seeded
traffic trace (:mod:`repro.serving.traffic`) in deterministic virtual
cycle time (:mod:`repro.serving.loop`):

* **admission control** — a bounded waiting queue with priority
  classes: when the queue is full, a higher-priority arrival evicts the
  newest lowest-priority waiter; otherwise the arrival itself is shed
  (counted per class, never silently dropped);
* **continuous batching** — concurrently-waiting GEMVs merge into one
  ``gemv_batch`` dispatch, triggered by *size* (``max_batch`` waiters)
  or *deadline* (the oldest waiter has aged ``window_cycles``); batch
  inputs go through the backend's own ``validate_batch_vectors`` path.
  With ``window_cycles=0, max_batch=1`` the gateway degenerates to the
  offline simulator's M/D/c discipline exactly (pinned by tests);
* **SLO-aware autoscaling** — a windowed p99 over recent completions
  scales the replica fleet out when it exceeds the strictest class
  budget and back in after sustained idleness, between
  ``min_replicas`` and ``max_replicas`` (retired replicas park warm
  and reactivate without re-simulating residency).

Results export through the ``newton-telemetry/v1`` schema: per-class
p50/p99, goodput, shed rate, the batch-size histogram, and the replica
timeline. The orchestrator/statistics split mirrors the multi-source
coordinator + web app separation the related job-search repo uses: the
gateway orchestrates; :class:`GatewayResult` owns measurement and
rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ServingError
from repro.serving.loop import (
    SimEvent,
    SimQueue,
    SimTask,
    VirtualLoop,
    first_of,
)
from repro.serving.traffic import Trace
from repro.telemetry import MetricsRegistry
from repro.utils.tables import render_table

from collections import deque


# ----------------------------------------------------------------------
# configuration

@dataclass(frozen=True)
class SLOClass:
    """One request class: a priority and a p99 latency budget (cycles).

    Higher ``priority`` wins admission fights; ``p99_budget`` defines
    both the class's goodput criterion and (for the strictest class)
    the autoscaler's scale-out trigger.
    """

    name: str
    priority: int = 1
    p99_budget: float = float("inf")


def default_classes(
    service_cycles: float, slo_multiple: float = 5.0
) -> Tuple[SLOClass, ...]:
    """The CLI's two-class default: latency-critical ``interactive``
    (budget ``slo_multiple`` x service) and throughput-oriented ``bulk``
    (4x looser, lower priority)."""
    return (
        SLOClass("interactive", priority=2, p99_budget=slo_multiple * service_cycles),
        SLOClass("bulk", priority=1, p99_budget=4 * slo_multiple * service_cycles),
    )


@dataclass(frozen=True)
class DecodeSessionSpec:
    """One multi-step decode session offered to the gateway.

    A session is a chain of ``steps`` dependent requests: step *t+1*
    enters the waiting queue only when step *t* completes (the KV-cache
    makes decode steps strictly serial), each step individually subject
    to its class's per-step p99 budget. Sessions ride the same
    admission, batching, and autoscaling machinery as one-shot requests
    — a decode step batches with whatever else is waiting.
    """

    arrival: float
    """Virtual cycle the session's first step arrives."""
    steps: int
    """Tokens to decode (requests the session contributes)."""
    cls: str = "decode"
    """SLO class every step is accounted under."""

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ServingError("session arrival must be non-negative")
        if self.steps < 1:
            raise ServingError("a decode session needs at least one step")


def decode_sessions(
    count: int, steps: int, interarrival: float, *, cls: str = "decode"
) -> Tuple[DecodeSessionSpec, ...]:
    """``count`` equally spaced sessions of ``steps`` tokens each."""
    if count < 1:
        raise ServingError("need at least one session")
    if interarrival < 0:
        raise ServingError("interarrival must be non-negative")
    return tuple(
        DecodeSessionSpec(arrival=i * interarrival, steps=steps, cls=cls)
        for i in range(count)
    )


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway policy knobs (all times in DRAM cycles)."""

    window_cycles: float = 0.0
    """Max age of the oldest waiter before a batch dispatches anyway
    (the deadline trigger). 0 dispatches as soon as a replica frees."""
    max_batch: int = 1
    """Size trigger: dispatch as soon as this many requests wait."""
    queue_depth: int = 512
    """Bound on waiting requests; beyond it, admission sheds."""
    min_replicas: int = 1
    max_replicas: Optional[int] = None
    """Autoscale ceiling; ``None`` pins the fleet at ``min_replicas``."""
    classes: Tuple[SLOClass, ...] = (SLOClass("interactive"),)
    autoscale_interval: Optional[float] = None
    """Cycles between autoscale decisions (default: 10x service)."""
    autoscale_window: Optional[float] = None
    """Sliding window the scaling p99 is computed over (default: 50x
    service)."""
    min_autoscale_samples: int = 20
    """Completions required in the window before p99 is trusted."""
    scale_in_idle_intervals: int = 3
    """Consecutive idle decisions before one replica is retired."""

    def __post_init__(self) -> None:
        if self.window_cycles < 0:
            raise ServingError("window_cycles must be non-negative")
        if self.max_batch < 1:
            raise ServingError("max_batch must be at least 1")
        if self.queue_depth < 1:
            raise ServingError("queue_depth must be at least 1")
        if self.min_replicas < 1:
            raise ServingError("min_replicas must be at least 1")
        if self.max_replicas is not None and self.max_replicas < self.min_replicas:
            raise ServingError("max_replicas must be >= min_replicas")
        if not self.classes:
            raise ServingError("at least one SLO class is required")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate SLO class names in {names}")
        if self.scale_in_idle_intervals < 1:
            raise ServingError("scale_in_idle_intervals must be at least 1")

    @property
    def replica_ceiling(self) -> int:
        return self.max_replicas if self.max_replicas is not None else self.min_replicas

    @property
    def scale_budget(self) -> float:
        """The strictest class budget (the scale-out trigger)."""
        return min(cls.p99_budget for cls in self.classes)


# ----------------------------------------------------------------------
# replicas

class BackendReplica:
    """One serving replica: a Backend (or cluster) plus its resident
    matrix handle.

    ``batch_cycles(k)`` is the wall-clock occupancy of one continuous
    batch: the backend runs the k GEMVs back to back (``gemv_batch``),
    so occupancy is the *sum* of the per-run cycles — Newton has no
    batch-compute reuse to model (that is the paper's point); batching
    amortizes queueing windows and host round-trips, not MACs. In
    functional mode the batch goes through the backend's stacked-vector
    path, exercising its ``validate_batch_vectors`` contract.
    """

    def __init__(self, backend, handle, *, seed: int = 0):
        self.backend = backend
        self.handle = handle
        self.index = -1  # assigned by the gateway
        self.active = True
        self.service_cycles = float(backend.service_cycles(handle))
        self._rng = np.random.default_rng(seed)

    def batch_cycles(self, batch_size: int) -> float:
        if getattr(self.backend, "functional", False):
            n = self.backend.handle_shape(self.handle)[1]
            vectors = self._rng.standard_normal((batch_size, n)).astype(
                np.float32
            )
            runs = self.backend.gemv_batch(self.handle, vectors)
        else:
            runs = self.backend.gemv_batch(self.handle, batch=batch_size)
        return float(sum(run.cycles for run in runs))

    def close(self) -> None:
        self.backend.close()


class FixedServiceReplica:
    """A replica with a hand-fed deterministic service time.

    The queueing-study stand-in: experiments that already measured a
    layer's cycles (e.g. through
    :func:`repro.experiments.common.newton_layer_cycles`) can drive the
    gateway without re-simulating the device per request. Batches are
    served back to back, matching :class:`BackendReplica`.
    """

    def __init__(self, service_cycles: float):
        if service_cycles <= 0:
            raise ServingError("service time must be positive")
        self.service_cycles = float(service_cycles)
        self.index = -1
        self.active = True

    def batch_cycles(self, batch_size: int) -> float:
        return self.service_cycles * batch_size

    def close(self) -> None:  # pragma: no cover - nothing to release
        pass


def backend_replica_factory(
    backend: str = "analytical",
    *,
    devices: int = 1,
    workers: str = "inline",
    m: int,
    n: int,
    matrix: Optional[np.ndarray] = None,
    seed: int = 0,
    **backend_kwargs,
) -> Callable[[], BackendReplica]:
    """A factory producing independent replicas through the registry.

    Each call builds a fresh backend (``devices > 1`` composes a
    cluster via :func:`repro.cluster.make_cluster`, honoring
    ``workers="process"``) and makes the matrix resident, so every
    replica owns its device state — exactly what the autoscaler spawns
    on scale-out.
    """
    from repro.backends import make_backend
    from repro.cluster import make_cluster

    counter = {"built": 0}

    def build() -> BackendReplica:
        if devices == 1:
            engine = make_backend(backend, **backend_kwargs)
        else:
            engine = make_cluster(
                backend, devices, workers=workers, **backend_kwargs
            )
        handle = (
            engine.load_matrix(matrix)
            if matrix is not None
            else engine.load_matrix(m=m, n=n)
        )
        replica = BackendReplica(
            engine, handle, seed=seed + counter["built"]
        )
        counter["built"] += 1
        return replica

    return build


# ----------------------------------------------------------------------
# results

@dataclass(frozen=True)
class ClassStats:
    """Per-SLO-class latency and shedding statistics."""

    name: str
    priority: int
    p99_budget: float
    requests: int
    shed: int
    completed: int
    slo_met: int
    p50: float
    p95: float
    p99: float
    mean: float

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0


@dataclass(frozen=True)
class SessionStats:
    """Decode-session aggregates: per-step latency tail and makespans."""

    offered: int
    completed: int
    aborted: int
    steps_completed: int
    step_p50: float
    step_p99: float
    mean_makespan: float
    """Mean first-arrival-to-last-completion span of completed sessions."""


@dataclass(frozen=True)
class GatewayResult:
    """One gateway run's measurements (the statistics half of the
    orchestrator/stats split)."""

    trace_kind: str
    trace_seed: int
    requests: int
    admitted: int
    shed: int
    completed: int
    batches: int
    makespan: float
    p50: float
    p95: float
    p99: float
    mean: float
    mean_batch: float
    max_batch_served: int
    per_class: Dict[str, ClassStats]
    batch_histogram: Dict[int, int]
    replica_timeline: Tuple[Tuple[float, int], ...]
    replicas_final: int
    replicas_max: int
    service_cycles: float
    sessions: Optional[SessionStats] = None
    """Decode-session aggregates (``None`` when none were offered)."""

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    @property
    def slo_met(self) -> int:
        return sum(stats.slo_met for stats in self.per_class.values())

    @property
    def goodput_fraction(self) -> float:
        """SLO-meeting completions over *offered* requests (shed and
        SLO-missing completions both count against it)."""
        return self.slo_met / self.requests if self.requests else 0.0

    @property
    def goodput_per_mcycle(self) -> float:
        """SLO-meeting completions per million cycles of makespan."""
        return 1e6 * self.slo_met / self.makespan if self.makespan else 0.0

    def publish(self, registry: MetricsRegistry, prefix: str = "gateway") -> None:
        """Export through the ``newton-telemetry/v1`` registry schema."""
        registry.counter(f"{prefix}.requests").inc(self.requests)
        registry.counter(f"{prefix}.admitted").inc(self.admitted)
        registry.counter(f"{prefix}.shed").inc(self.shed)
        registry.counter(f"{prefix}.completed").inc(self.completed)
        registry.counter(f"{prefix}.batches").inc(self.batches)
        for gauge in ("p50", "p95", "p99", "mean"):
            registry.gauge(f"{prefix}.{gauge}").set(getattr(self, gauge))
        registry.gauge(f"{prefix}.shed_rate").set(self.shed_rate)
        registry.gauge(f"{prefix}.goodput_fraction").set(self.goodput_fraction)
        registry.gauge(f"{prefix}.goodput_per_mcycle").set(
            self.goodput_per_mcycle
        )
        registry.gauge(f"{prefix}.mean_batch").set(self.mean_batch)
        registry.gauge(f"{prefix}.max_batch_served").set(self.max_batch_served)
        registry.gauge(f"{prefix}.makespan_cycles").set(self.makespan)
        registry.gauge(f"{prefix}.replicas_final").set(self.replicas_final)
        registry.gauge(f"{prefix}.replicas_max").set(self.replicas_max)
        for stats in self.per_class.values():
            base = f"{prefix}.class.{stats.name}"
            registry.counter(f"{base}.requests").inc(stats.requests)
            registry.counter(f"{base}.shed").inc(stats.shed)
            registry.counter(f"{base}.slo_met").inc(stats.slo_met)
            registry.gauge(f"{base}.p50").set(stats.p50)
            registry.gauge(f"{base}.p99").set(stats.p99)
        if self.sessions is not None:
            base = f"{prefix}.sessions"
            registry.counter(f"{base}.offered").inc(self.sessions.offered)
            registry.counter(f"{base}.completed").inc(self.sessions.completed)
            registry.counter(f"{base}.aborted").inc(self.sessions.aborted)
            registry.counter(f"{base}.steps_completed").inc(
                self.sessions.steps_completed
            )
            registry.gauge(f"{base}.step_p50").set(self.sessions.step_p50)
            registry.gauge(f"{base}.step_p99").set(self.sessions.step_p99)
            registry.gauge(f"{base}.mean_makespan").set(
                self.sessions.mean_makespan
            )
        registry.section(
            prefix,
            {
                "trace": {
                    "kind": self.trace_kind,
                    "seed": self.trace_seed,
                    "requests": self.requests,
                },
                "service_cycles": self.service_cycles,
                "batch_histogram": {
                    str(size): count
                    for size, count in sorted(self.batch_histogram.items())
                },
                "replica_timeline": [
                    [time, count] for time, count in self.replica_timeline
                ],
            },
        )

    def render(self) -> str:
        """The run as a per-class table plus a fleet summary."""
        rows = []
        for stats in sorted(
            self.per_class.values(), key=lambda s: -s.priority
        ):
            budget = (
                f"{stats.p99_budget:,.0f}"
                if stats.p99_budget != float("inf")
                else "-"
            )
            rows.append(
                (
                    stats.name,
                    f"{stats.requests}",
                    f"{stats.shed}",
                    f"{stats.p50:,.0f}",
                    f"{stats.p99:,.0f}",
                    budget,
                    f"{stats.slo_met}/{stats.completed}",
                )
            )
        body = render_table(
            ["class", "requests", "shed", "p50 (cyc)", "p99 (cyc)", "budget", "SLO met"],
            rows,
            title=(
                f"Serving gateway: {self.trace_kind} trace, "
                f"{self.requests} requests"
            ),
        )
        footer = (
            f"\ngoodput {self.goodput_fraction:.3f} of offered "
            f"({self.goodput_per_mcycle:.2f}/Mcycle), shed rate "
            f"{self.shed_rate:.3f}, {self.batches} batches "
            f"(mean {self.mean_batch:.2f}, max {self.max_batch_served}), "
            f"replicas {self.replica_timeline[0][1]}->"
            f"{self.replicas_max} peak ->{self.replicas_final} final, "
            f"makespan {self.makespan:,.0f} cycles"
        )
        if self.sessions is not None:
            s = self.sessions
            footer += (
                f"\ndecode sessions: {s.completed}/{s.offered} completed"
                f" ({s.aborted} aborted), {s.steps_completed} steps, "
                f"per-step p50 {s.step_p50:,.0f} / p99 {s.step_p99:,.0f} "
                f"cycles, mean session makespan {s.mean_makespan:,.0f}"
            )
        return body + footer


# ----------------------------------------------------------------------
# the gateway

class _Pending:
    """One admitted request waiting for a batch slot."""

    __slots__ = ("cls", "arrival", "admitted", "session")

    def __init__(
        self,
        cls: SLOClass,
        arrival: float,
        admitted: float,
        session: "Optional[_SessionState]" = None,
    ):
        self.cls = cls
        self.arrival = arrival
        self.admitted = admitted
        self.session = session


class _SessionState:
    """A live decode session: remaining steps and per-step latencies."""

    __slots__ = (
        "spec",
        "cls",
        "arrival",
        "steps_done",
        "step_latencies",
        "completion",
        "aborted",
    )

    def __init__(self, spec: DecodeSessionSpec, cls: SLOClass, arrival: float):
        self.spec = spec
        self.cls = cls
        self.arrival = arrival
        self.steps_done = 0
        self.step_latencies: List[float] = []
        self.completion: Optional[float] = None
        self.aborted = False


class ServingGateway:
    """Serve one traffic trace through a replica fleet, in virtual time.

    ``replica_factory`` builds one replica per call (see
    :func:`backend_replica_factory` and :class:`FixedServiceReplica`);
    the gateway owns replica lifecycle, including autoscaling. A
    :class:`~repro.telemetry.MetricsRegistry` passed as ``metrics``
    receives the full ``newton-telemetry/v1`` export after the run.
    """

    def __init__(
        self,
        replica_factory: Callable[[], object],
        config: GatewayConfig,
        *,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.factory = replica_factory
        self.config = config
        self.metrics = metrics
        self._classes = {cls.name: cls for cls in config.classes}
        # priority-descending pop order; FIFO within a class
        self._class_order = sorted(
            config.classes, key=lambda cls: -cls.priority
        )

    # -- state reset per run -------------------------------------------

    def _reset(self, loop: VirtualLoop) -> None:
        self._loop = loop
        self._waiting: Dict[str, Deque[_Pending]] = {
            cls.name: deque() for cls in self.config.classes
        }
        self._waiting_total = 0
        self._arrival_event = SimEvent(loop)
        self._stop_event = SimEvent(loop)
        self._free = SimQueue(loop)
        self._replicas: List[object] = []
        self._parked: List[object] = []
        self._active_count = 0
        self._next_replica_index = 0
        self._source_done = False
        self._sources_open = 0
        self._sessions: List[_SessionState] = []
        self._open_sessions = 0
        self._serve_tasks: List[SimTask] = []
        self._recent: Deque[Tuple[float, float]] = deque()
        self._completions: List[Tuple[str, float, float, float, int]] = []
        self._batch_histogram: Dict[int, int] = {}
        self._timeline: List[Tuple[float, int]] = []
        self._counts = {"requests": 0, "admitted": 0, "shed": 0}
        self._class_counts: Dict[str, Dict[str, int]] = {
            cls.name: {"requests": 0, "shed": 0} for cls in self.config.classes
        }
        self._service_estimate = 0.0

    # -- replica lifecycle ---------------------------------------------

    def _spawn_replica(self) -> None:
        """Activate one replica (warm-parked first, else the factory)."""
        if self._parked:
            replica = self._parked.pop()
        else:
            replica = self.factory()
            replica.index = self._next_replica_index
            self._next_replica_index += 1
        replica.active = True
        self._replicas.append(replica)
        self._active_count += 1
        self._free.put_nowait(replica)
        self._record_timeline()

    def _retire_replica(self) -> None:
        """Deactivate one replica (immediately if idle, else lazily when
        its in-flight batch completes); it parks warm for re-scale-out."""
        idle = self._free.get_nowait()
        if idle is not None:
            idle.active = False
            self._replicas.remove(idle)
            self._parked.append(idle)
        else:
            for replica in self._replicas:
                if replica.active:
                    replica.active = False
                    break
            else:  # pragma: no cover - retire below min is never requested
                return
        self._active_count -= 1
        self._record_timeline()

    def _record_timeline(self) -> None:
        """Append the fleet size (coalescing same-cycle changes, e.g.
        the initial spawns all at cycle zero)."""
        entry = (self._loop.now, self._active_count)
        if self._timeline and self._timeline[-1][0] == entry[0]:
            self._timeline[-1] = entry
        else:
            self._timeline.append(entry)

    # -- coroutines -----------------------------------------------------

    async def _source(self, trace: Trace) -> None:
        loop = self._loop
        for request in trace.requests:
            if request.arrival > loop.now:
                await loop.timer_at(request.arrival)
            self._admit(request.cls)
        self._source_end()

    async def _session_source(
        self, sessions: "Tuple[DecodeSessionSpec, ...]"
    ) -> None:
        """Open each decode session at its arrival (first step only —
        later steps are re-admitted by :meth:`_serve` on completion)."""
        loop = self._loop
        for spec in sorted(sessions, key=lambda s: s.arrival):
            if spec.arrival > loop.now:
                await loop.timer_at(spec.arrival)
            state = _SessionState(
                spec, self._resolve_class(spec.cls), loop.now
            )
            self._sessions.append(state)
            self._open_sessions += 1
            self._admit_step(state)
        self._source_end()

    def _source_end(self) -> None:
        self._sources_open -= 1
        if self._sources_open <= 0:
            self._source_done = True
        self._arrival_event.set()

    @property
    def _drained(self) -> bool:
        """No future arrivals possible: every arrival source finished
        and no session can re-admit a continuation step."""
        return self._source_done and self._open_sessions == 0

    def _resolve_class(self, cls_name: str) -> SLOClass:
        cls = self._classes.get(cls_name)
        if cls is None:
            raise ServingError(
                f"trace request class {cls_name!r} has no SLO class; "
                f"configured: {sorted(self._classes)}"
            )
        return cls

    def _admit(self, cls_name: str) -> None:
        cls = self._resolve_class(cls_name)
        now = self._loop.now
        self._enqueue(_Pending(cls, now, now))

    def _admit_step(self, session: _SessionState) -> None:
        """Admit a session's next step (its first, or a continuation
        entering as the previous step completes)."""
        now = self._loop.now
        self._enqueue(_Pending(session.cls, now, now, session=session))

    def _enqueue(self, pending: _Pending) -> None:
        cls = pending.cls
        self._counts["requests"] += 1
        self._class_counts[cls.name]["requests"] += 1
        if self._waiting_total >= self.config.queue_depth:
            victim_cls = self._shed_victim(cls)
            if victim_cls is None:
                self._counts["shed"] += 1
                self._class_counts[cls.name]["shed"] += 1
                if pending.session is not None:
                    # A dropped continuation orphans its KV-cache: the
                    # whole session aborts rather than stalling forever.
                    self._abort_session(pending.session)
                return
            victim = self._waiting[victim_cls.name].pop()  # newest of class
            self._waiting_total -= 1
            self._counts["shed"] += 1
            self._class_counts[victim_cls.name]["shed"] += 1
            if victim.session is not None:
                self._abort_session(victim.session)
        self._waiting[cls.name].append(pending)
        self._waiting_total += 1
        self._counts["admitted"] += 1
        self._arrival_event.set()

    def _abort_session(self, session: _SessionState) -> None:
        session.aborted = True
        self._close_session(session)

    def _close_session(self, session: _SessionState) -> None:
        self._open_sessions -= 1
        # The batcher may be blocked waiting for this session's next
        # step; wake it so the drain condition is re-checked.
        self._arrival_event.set()

    def _shed_victim(self, incoming: SLOClass) -> Optional[SLOClass]:
        """The class whose newest waiter yields to ``incoming`` (the
        lowest-priority non-empty class strictly below it), or ``None``
        when the incoming request itself must shed."""
        for cls in reversed(self._class_order):
            if cls.priority >= incoming.priority:
                break
            if self._waiting[cls.name]:
                return cls
        return None

    def _oldest_admitted(self) -> float:
        return min(
            queue[0].admitted
            for queue in self._waiting.values()
            if queue
        )

    def _pop_batch(self) -> List[_Pending]:
        batch: List[_Pending] = []
        for cls in self._class_order:
            queue = self._waiting[cls.name]
            while queue and len(batch) < self.config.max_batch:
                batch.append(queue.popleft())
                self._waiting_total -= 1
        return batch

    async def _batcher(self) -> None:
        loop = self._loop
        config = self.config
        while True:
            if self._waiting_total == 0:
                if self._drained:
                    return
                self._arrival_event.clear()
                # Re-check after the clear: a continuation or session
                # close between the check and the clear must not strand
                # the batcher on an already-consumed event.
                if self._drained:
                    return
                await self._arrival_event.wait_future()
                continue
            # Deadline trigger: the batch closes when the oldest waiter
            # has aged window_cycles (or instantly for a zero window).
            while (
                self._waiting_total < config.max_batch
                and not self._drained
            ):
                deadline = self._oldest_admitted() + config.window_cycles
                if config.window_cycles <= 0 or loop.now >= deadline:
                    break
                self._arrival_event.clear()
                fired, _ = await first_of(
                    self._arrival_event.wait_future(),
                    loop.timer_at(deadline),
                )
                if fired == 1:
                    break  # deadline: dispatch what we have
            batch = self._pop_batch()
            replica = await self._free.get()
            self._serve_tasks.append(
                loop.create_task(
                    self._serve(replica, batch),
                    name=f"serve-{len(self._serve_tasks)}",
                )
            )

    async def _serve(self, replica, batch: List[_Pending]) -> None:
        loop = self._loop
        start = loop.now
        cycles = replica.batch_cycles(len(batch))
        await loop.sleep(cycles)
        completion = loop.now
        size = len(batch)
        self._batch_histogram[size] = self._batch_histogram.get(size, 0) + 1
        for pending in batch:
            latency = completion - pending.arrival
            self._completions.append(
                (pending.cls.name, pending.arrival, start, completion, size)
            )
            self._recent.append((completion, latency))
            session = pending.session
            if session is not None and not session.aborted:
                session.step_latencies.append(latency)
                session.steps_done += 1
                if session.steps_done >= session.spec.steps:
                    session.completion = completion
                    self._close_session(session)
                else:
                    # The decode dependency chain: the next token's
                    # request exists only now that this one finished.
                    self._admit_step(session)
        if replica.active:
            self._free.put_nowait(replica)
        else:
            self._parked.append(replica)

    async def _autoscaler(self) -> None:
        loop = self._loop
        config = self.config
        interval = self._autoscale_interval
        window = self._autoscale_window
        idle_intervals = 0
        while True:
            fired, _ = await first_of(
                self._stop_event.wait_future(), loop.sleep(interval)
            )
            if fired == 0:
                return
            horizon = loop.now - window
            while self._recent and self._recent[0][0] < horizon:
                self._recent.popleft()
            p99 = (
                float(np.percentile([lat for _, lat in self._recent], 99))
                if self._recent
                else 0.0
            )
            if (
                len(self._recent) >= config.min_autoscale_samples
                and self._active_count < config.replica_ceiling
                and p99 > config.scale_budget
            ):
                self._spawn_replica()
                idle_intervals = 0
                continue
            # Idle: no backlog, at least one replica sitting free, and
            # the windowed tail comfortably inside budget (half of it).
            idle = (
                self._waiting_total == 0
                and len(self._free) > 0
                and p99 <= 0.5 * config.scale_budget
            )
            if idle:
                idle_intervals += 1
                if (
                    idle_intervals >= config.scale_in_idle_intervals
                    and self._active_count > config.min_replicas
                ):
                    self._retire_replica()
                    idle_intervals = 0
            else:
                idle_intervals = 0

    async def _main(
        self,
        trace: Trace,
        sessions: Tuple[DecodeSessionSpec, ...] = (),
    ) -> None:
        loop = self._loop
        for _ in range(self.config.min_replicas):
            self._spawn_replica()
        self._service_estimate = max(
            getattr(replica, "service_cycles", 0.0)
            for replica in self._replicas
        )
        self._autoscale_interval = (
            self.config.autoscale_interval
            if self.config.autoscale_interval is not None
            else 10.0 * self._service_estimate
        )
        self._autoscale_window = (
            self.config.autoscale_window
            if self.config.autoscale_window is not None
            else 50.0 * self._service_estimate
        )
        self._sources_open = 1 + (1 if sessions else 0)
        source = loop.create_task(self._source(trace), name="source")
        session_source = None
        if sessions:
            session_source = loop.create_task(
                self._session_source(sessions), name="sessions"
            )
        batcher = loop.create_task(self._batcher(), name="batcher")
        autoscaler = None
        if self.config.replica_ceiling > self.config.min_replicas:
            autoscaler = loop.create_task(self._autoscaler(), name="autoscaler")
        await source.future
        if session_source is not None:
            await session_source.future
        await batcher.future
        for task in self._serve_tasks:
            await task.future
        self._stop_event.set()
        if autoscaler is not None:
            await autoscaler.future

    # -- entry point ----------------------------------------------------

    def run(
        self,
        trace: Trace,
        sessions: Tuple[DecodeSessionSpec, ...] = (),
    ) -> GatewayResult:
        """Serve the whole trace (plus any decode sessions); returns the
        measured statistics.

        Deterministic: the same trace (hence seed), sessions, and
        configuration produce the identical result on every run.
        """
        if not trace.requests and not sessions:
            raise ServingError("cannot serve an empty trace")
        loop = VirtualLoop()
        self._reset(loop)
        for spec in sessions:
            # Fail fast, before any coroutine is created: a session
            # with an unconfigured class must not start the run.
            self._resolve_class(spec.cls)
        loop.run_until_complete(self._main(trace, sessions), name="gateway")
        result = self._build_result(trace)
        if self.metrics is not None:
            result.publish(self.metrics)
        return result

    def close(self) -> None:
        """Release every replica built so far (idempotent)."""
        for replica in [*self._replicas, *self._parked]:
            replica.close()
        self._replicas.clear()
        self._parked.clear()

    def _build_result(self, trace: Trace) -> GatewayResult:
        latencies = np.array(
            [completion - arrival for _, arrival, _, completion, _ in self._completions]
        ) if self._completions else np.zeros(0)
        per_class: Dict[str, ClassStats] = {}
        for cls in self.config.classes:
            class_latencies = np.array(
                [
                    completion - arrival
                    for name, arrival, _, completion, _ in self._completions
                    if name == cls.name
                ]
            )
            counts = self._class_counts[cls.name]
            completed = int(class_latencies.size)
            if completed:
                p50 = float(np.percentile(class_latencies, 50))
                p95 = float(np.percentile(class_latencies, 95))
                p99 = float(np.percentile(class_latencies, 99))
                mean = float(np.mean(class_latencies))
                slo_met = int(np.sum(class_latencies <= cls.p99_budget))
            else:
                p50 = p95 = p99 = mean = 0.0
                slo_met = 0
            per_class[cls.name] = ClassStats(
                name=cls.name,
                priority=cls.priority,
                p99_budget=cls.p99_budget,
                requests=counts["requests"],
                shed=counts["shed"],
                completed=completed,
                slo_met=slo_met,
                p50=p50,
                p95=p95,
                p99=p99,
                mean=mean,
            )
        batches = sum(self._batch_histogram.values())
        total_batched = sum(
            size * count for size, count in self._batch_histogram.items()
        )
        makespan = max(
            (completion for _, _, _, completion, _ in self._completions),
            default=0.0,
        )
        session_stats: Optional[SessionStats] = None
        if self._sessions:
            step_latencies = np.array(
                [
                    latency
                    for session in self._sessions
                    for latency in session.step_latencies
                ]
            )
            finished = [
                session
                for session in self._sessions
                if session.completion is not None
            ]
            session_stats = SessionStats(
                offered=len(self._sessions),
                completed=len(finished),
                aborted=sum(1 for s in self._sessions if s.aborted),
                steps_completed=int(step_latencies.size),
                step_p50=(
                    float(np.percentile(step_latencies, 50))
                    if step_latencies.size
                    else 0.0
                ),
                step_p99=(
                    float(np.percentile(step_latencies, 99))
                    if step_latencies.size
                    else 0.0
                ),
                mean_makespan=(
                    float(
                        np.mean(
                            [s.completion - s.arrival for s in finished]
                        )
                    )
                    if finished
                    else 0.0
                ),
            )
        return GatewayResult(
            trace_kind=trace.kind,
            trace_seed=trace.seed,
            requests=self._counts["requests"],
            admitted=self._counts["admitted"],
            shed=self._counts["shed"],
            completed=len(self._completions),
            batches=batches,
            makespan=makespan,
            p50=float(np.percentile(latencies, 50)) if latencies.size else 0.0,
            p95=float(np.percentile(latencies, 95)) if latencies.size else 0.0,
            p99=float(np.percentile(latencies, 99)) if latencies.size else 0.0,
            mean=float(np.mean(latencies)) if latencies.size else 0.0,
            mean_batch=total_batched / batches if batches else 0.0,
            max_batch_served=max(self._batch_histogram, default=0),
            per_class=per_class,
            batch_histogram=dict(sorted(self._batch_histogram.items())),
            replica_timeline=tuple(self._timeline),
            replicas_final=self._active_count,
            replicas_max=max(count for _, count in self._timeline),
            service_cycles=self._service_estimate,
            sessions=session_stats,
        )
