"""A deterministic virtual-time async kernel for the serving gateway.

The gateway (:mod:`repro.serving.gateway`) is written as ordinary
``async def`` coroutines — a request source, a continuous batcher,
replica workers, an autoscaler — but it must run in *simulated
DRAM-cycle time*, not wall-clock time: service times come from backend
cycle counts, traces are replayed by seed, and the measured percentiles
have to be comparable with the offline
:class:`~repro.host.serving.ServingSimulator` cycle for cycle.

``asyncio``'s event loop is wall-clock-driven and nondeterministic under
scheduling jitter, so this module provides the minimal cooperative
kernel the gateway needs instead:

* :class:`VirtualLoop` — the scheduler. Ready tasks always run before
  time advances; when every task is blocked, the clock jumps straight
  to the earliest pending timer. A full million-request day of traffic
  simulates in milliseconds of wall time, identically on every run.
* :class:`SimFuture` — the only suspension point. Everything else
  (:meth:`VirtualLoop.sleep`, :class:`SimQueue`, :class:`SimEvent`,
  :func:`first_of`) is built from it.

Tasks interleave only at ``await`` boundaries, so gateway code can
check-then-wait without missed-wakeup races, and the whole simulation
is exactly reproducible from the trace seed alone.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Coroutine, Deque, List, Optional, Tuple

from repro.errors import ServingError


class SimFuture:
    """A one-shot awaitable value (the kernel's only suspension point).

    ``await``-ing an unresolved future suspends the task until
    :meth:`resolve` runs; a resolved future is awaited without
    suspending. :meth:`cancel` drops the future silently — a later
    :meth:`resolve` becomes a no-op and pending timers on it are
    discarded without advancing the clock (how :func:`first_of` abandons
    the losing branch of a timeout race).
    """

    __slots__ = ("loop", "done", "cancelled", "value", "_callbacks")

    def __init__(self, loop: "VirtualLoop"):
        self.loop = loop
        self.done = False
        self.cancelled = False
        self.value: Any = None
        self._callbacks: List[Callable[[Any], None]] = []

    def resolve(self, value: Any = None) -> None:
        """Deliver the value and wake every waiter (idempotent only
        after :meth:`cancel`)."""
        if self.cancelled:
            return
        if self.done:
            raise ServingError("future resolved twice")
        self.done = True
        self.value = value
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(value)

    def cancel(self) -> None:
        """Abandon the future: waiters are dropped, resolve becomes a
        no-op, and a pending timer on it no longer advances the clock."""
        if not self.done:
            self.cancelled = True
            self._callbacks.clear()

    def add_done_callback(self, callback: Callable[[Any], None]) -> None:
        if self.done:
            callback(self.value)
        elif not self.cancelled:
            self._callbacks.append(callback)

    def __await__(self):
        if not self.done:
            yield self
        return self.value


class SimTask:
    """A coroutine scheduled on a :class:`VirtualLoop`.

    ``task.future`` resolves with the coroutine's return value; awaiting
    it is how one task joins another.
    """

    __slots__ = ("coro", "name", "future")

    def __init__(self, loop: "VirtualLoop", coro: Coroutine, name: str):
        self.coro = coro
        self.name = name
        self.future = SimFuture(loop)

    @property
    def done(self) -> bool:
        return self.future.done

    @property
    def result(self) -> Any:
        return self.future.value


class VirtualLoop:
    """The deterministic scheduler: ready tasks first, then time jumps.

    The run rule is exhaustive and deterministic: while any task is
    ready, step it (FIFO); when none is, pop the earliest timer, advance
    :attr:`now` to it, and fire. If neither exists and the main task is
    unfinished, the gateway has deadlocked — that is a bug, and it is
    reported as :class:`~repro.errors.ServingError` rather than a hang.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._timers: List[Tuple[float, int, SimFuture]] = []
        self._ready: Deque[Tuple[SimTask, Any]] = deque()
        self._seq = 0

    # ------------------------------------------------------------------
    # primitives

    def create_task(self, coro: Coroutine, name: str = "task") -> SimTask:
        """Schedule a coroutine to start on the next scheduler pass."""
        task = SimTask(self, coro, name)
        self._ready.append((task, None))
        return task

    def sleep(self, delay: float) -> SimFuture:
        """A future that resolves ``delay`` cycles from now.

        ``delay <= 0`` still suspends for one scheduler pass (every
        already-ready task runs first), which is what makes
        ``window_cycles=0`` continuous batching well-defined.
        """
        return self.timer_at(self.now + max(0.0, float(delay)))

    def timer_at(self, when: float) -> SimFuture:
        """A future that resolves when the clock reaches ``when``."""
        future = SimFuture(self)
        self._seq += 1
        heapq.heappush(self._timers, (max(when, self.now), self._seq, future))
        return future

    # ------------------------------------------------------------------
    # scheduling

    def _step(self, task: SimTask, value: Any) -> None:
        try:
            awaited = task.coro.send(value)
        except StopIteration as stop:
            task.future.resolve(stop.value)
            return
        if not isinstance(awaited, SimFuture):
            raise ServingError(
                f"task {task.name!r} awaited {type(awaited).__name__}, "
                "which is not a kernel future — only virtual-time "
                "primitives may be awaited inside the gateway"
            )
        awaited.add_done_callback(
            lambda resolved: self._ready.append((task, resolved))
        )

    def run_until_complete(self, coro: Coroutine, name: str = "main") -> Any:
        """Drive the loop until ``coro`` returns; returns its value."""
        main = self.create_task(coro, name)
        while not main.done:
            if self._ready:
                task, value = self._ready.popleft()
                self._step(task, value)
                continue
            while self._timers:
                when, _, future = heapq.heappop(self._timers)
                if future.cancelled:
                    continue  # an abandoned race branch: no time advance
                self.now = max(self.now, when)
                future.resolve(None)
                break
            else:
                raise ServingError(
                    f"virtual-time deadlock at cycle {self.now}: task "
                    f"{name!r} is unfinished but no task is ready and no "
                    "timer is pending"
                )
        return main.result


class SimQueue:
    """An unbounded FIFO channel between tasks (virtual-time
    ``asyncio.Queue``). ``get`` suspends until an item arrives; getters
    are served in FIFO order, which is what keeps replica dispatch
    deterministic."""

    def __init__(self, loop: VirtualLoop):
        self._loop = loop
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimFuture] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put_nowait(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if not getter.cancelled:
                getter.resolve(item)
                return
        self._items.append(item)

    def get_nowait(self) -> Optional[Any]:
        """Pop the head without waiting (``None`` when empty)."""
        return self._items.popleft() if self._items else None

    async def get(self) -> Any:
        if self._items:
            return self._items.popleft()
        future = SimFuture(self._loop)
        self._getters.append(future)
        return await future


class SimEvent:
    """A level-triggered flag; each waiter gets its own future, so one
    waiter racing a timeout (:func:`first_of`) never cancels another's
    wakeup."""

    def __init__(self, loop: VirtualLoop):
        self._loop = loop
        self._set = False
        self._waiters: List[SimFuture] = []

    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        self._set = True
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.cancelled:
                waiter.resolve(True)

    def clear(self) -> None:
        self._set = False

    def wait_future(self) -> SimFuture:
        """A fresh future resolved by the next :meth:`set` (immediately
        if already set)."""
        future = SimFuture(self._loop)
        if self._set:
            future.resolve(True)
        else:
            self._waiters.append(future)
        return future

    async def wait(self) -> None:
        await self.wait_future()


async def first_of(*futures: SimFuture) -> Tuple[int, Any]:
    """Race futures; returns ``(index, value)`` of the first resolved.

    The losing futures are cancelled — in particular a losing timer is
    discarded without ever advancing the virtual clock, so ``first_of(
    arrival, deadline_timer)`` is the batcher's deadline wait.
    """
    if not futures:
        raise ServingError("first_of needs at least one future")
    loop = futures[0].loop
    for index, future in enumerate(futures):
        if future.done:
            for loser in futures:
                if loser is not future:
                    loser.cancel()
            return index, future.value
    combined = SimFuture(loop)

    def make_callback(index: int) -> Callable[[Any], None]:
        def callback(value: Any) -> None:
            if not combined.done:
                combined.resolve((index, value))

        return callback

    for index, future in enumerate(futures):
        future.add_done_callback(make_callback(index))
    index, value = await combined
    for position, future in enumerate(futures):
        if position != index:
            future.cancel()
    return index, value
