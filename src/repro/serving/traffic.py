"""Seed-deterministic traffic traces for the serving gateway.

The paper motivates Newton with edge inference — requests arriving one
at a time, wanting bounded tails — and Oliveira et al.'s edge-to-cloud
PIM study (PAPERS.md) spans exactly the traffic spectrum generated
here:

* :func:`poisson_trace` — the memoryless baseline, the same arrival
  process the offline :class:`~repro.host.serving.ServingSimulator`
  draws, so gateway-vs-model cross-checks can share an arrival stream
  bit for bit;
* :func:`diurnal_trace` — a sinusoidally rate-modulated day: the
  load-follows-users shape autoscalers are sized against;
* :func:`bursty_trace` — a two-state Markov-modulated Poisson process
  (MMPP-2): calm traffic punctuated by dwell-limited bursts at a
  multiple of the base rate, the worst case for tail latency and the
  trace the autoscaler demonstrably scales out (and back in) on.

Every generator is a pure function of its seed (``numpy`` Generator
streams), so traces replay identically across runs, machines, and the
CLI/CI. Traces serialize to a ``newton-trace/v1`` JSON document
(:func:`trace_to_json` / :func:`trace_from_json`) and the CLI accepts
either a file path or an inline ``kind:key=value,...`` spec
(:func:`parse_trace_spec`).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ServingError

TRACE_SCHEMA = "newton-trace/v1"
"""Schema stamp of a serialized trace document."""

DEFAULT_CLASS = "interactive"
"""Class assigned when a trace does not mix request classes."""

TRACE_KINDS = ("poisson", "diurnal", "bursty")
"""Recognized generator kinds for :func:`make_trace` and trace specs."""


@dataclass(frozen=True)
class TraceRequest:
    """One request of a trace: an arrival cycle and an SLO class."""

    arrival: float
    cls: str = DEFAULT_CLASS


@dataclass(frozen=True)
class Trace:
    """An arrival-ordered request stream plus its provenance."""

    kind: str
    seed: int
    mean_interarrival: float
    requests: Tuple[TraceRequest, ...]
    params: Dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def duration(self) -> float:
        """Cycles from time zero to the last arrival."""
        return self.requests[-1].arrival if self.requests else 0.0

    @property
    def classes(self) -> Tuple[str, ...]:
        """The distinct request classes, in first-appearance order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(request.cls, None)
        return tuple(seen)


def _validate(mean_interarrival: float, requests: int) -> None:
    if mean_interarrival <= 0:
        raise ServingError("mean interarrival must be positive")
    if requests <= 0:
        raise ServingError("a trace needs at least one request")


def _assign_classes(
    n: int,
    class_mix: Optional[Sequence[Tuple[str, float]]],
    rng: np.random.Generator,
) -> Tuple[str, ...]:
    """Class labels for ``n`` arrivals (weighted, seed-deterministic)."""
    if not class_mix:
        return (DEFAULT_CLASS,) * n
    names = [name for name, _ in class_mix]
    weights = np.array([weight for _, weight in class_mix], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ServingError(
            f"class mix weights must be non-negative and not all zero, "
            f"got {class_mix}"
        )
    picks = rng.choice(len(names), size=n, p=weights / weights.sum())
    return tuple(names[i] for i in picks)


def interarrival_for_load(
    service_cycles: float, offered_load: float, servers: int = 1
) -> float:
    """The mean interarrival putting a fleet at ``offered_load``.

    Matches :meth:`repro.host.serving.ServingSimulator.simulate`'s
    convention exactly: load is relative to the *aggregate* capacity
    ``servers / service_cycles``, so a trace built from this mean and
    the simulator's own load sweep describe the same stream.
    """
    if service_cycles <= 0:
        raise ServingError("service_cycles must be positive")
    if offered_load <= 0:
        raise ServingError("offered load must be positive")
    if servers < 1:
        raise ServingError("at least one server is required")
    return service_cycles / (offered_load * servers)


def poisson_trace(
    mean_interarrival: float,
    requests: int,
    seed: int = 0,
    *,
    class_mix: Optional[Sequence[Tuple[str, float]]] = None,
) -> Trace:
    """A homogeneous Poisson stream.

    Draws the identical exponential stream the offline simulator draws
    for the same ``(mean, requests, seed)`` — one
    ``default_rng(seed).exponential(mean, size=requests)`` cumsum — so a
    degenerate gateway (no window, batch 1) replays the M/D/c study's
    arrivals exactly.
    """
    _validate(mean_interarrival, requests)
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(mean_interarrival, size=requests))
    classes = _assign_classes(requests, class_mix, rng)
    return Trace(
        kind="poisson",
        seed=seed,
        mean_interarrival=float(mean_interarrival),
        requests=tuple(
            TraceRequest(float(t), cls) for t, cls in zip(arrivals, classes)
        ),
    )


def diurnal_trace(
    mean_interarrival: float,
    requests: int,
    seed: int = 0,
    *,
    period: float,
    amplitude: float = 0.6,
    class_mix: Optional[Sequence[Tuple[str, float]]] = None,
) -> Trace:
    """A sinusoidally rate-modulated day of traffic.

    The instantaneous arrival rate is ``base * (1 + amplitude *
    sin(2*pi*t/period))``: each interarrival is drawn from an
    exponential whose mean tracks the current phase, giving smooth
    peak/trough alternation with overall mean rate ~``1/base``.
    """
    _validate(mean_interarrival, requests)
    if period <= 0:
        raise ServingError("the diurnal period must be positive")
    if not 0 <= amplitude < 1:
        raise ServingError("amplitude must be in [0, 1)")
    rng = np.random.default_rng(seed)
    arrivals = np.empty(requests, dtype=np.float64)
    now = 0.0
    for i in range(requests):
        rate_scale = 1.0 + amplitude * math.sin(2 * math.pi * now / period)
        now += rng.exponential(mean_interarrival / rate_scale)
        arrivals[i] = now
    classes = _assign_classes(requests, class_mix, rng)
    return Trace(
        kind="diurnal",
        seed=seed,
        mean_interarrival=float(mean_interarrival),
        requests=tuple(
            TraceRequest(float(t), cls) for t, cls in zip(arrivals, classes)
        ),
        params={"period": float(period), "amplitude": float(amplitude)},
    )


def bursty_trace(
    mean_interarrival: float,
    requests: int,
    seed: int = 0,
    *,
    burst_factor: float = 8.0,
    calm_dwell: float = 40.0,
    burst_dwell: float = 8.0,
    class_mix: Optional[Sequence[Tuple[str, float]]] = None,
) -> Trace:
    """A two-state MMPP: calm traffic with exponential-dwell bursts.

    The process alternates between a *calm* state and a *burst* state
    at ``burst_factor`` times the calm rate; dwell times are
    exponential with means ``calm_dwell`` / ``burst_dwell`` (in units
    of the calm mean interarrival). The calm rate is normalized so the
    *long-run average* interarrival equals ``mean_interarrival`` — a
    bursty trace at load L offers the same average load as a Poisson
    trace at load L, just unevenly. This is the canonical bursty-edge
    traffic model and the autoscaler's acceptance trace: bursts drive
    the windowed p99 over budget, calm stretches let it scale back in.
    """
    _validate(mean_interarrival, requests)
    if burst_factor < 1:
        raise ServingError("burst_factor must be at least 1")
    if calm_dwell <= 0 or burst_dwell <= 0:
        raise ServingError("dwell times must be positive")
    # Long-run rate = calm_rate * (f_calm + burst_factor * f_burst)
    # where f_* are the dwell time fractions; scale the calm mean so
    # that long-run rate is exactly 1 / mean_interarrival.
    calm_fraction = calm_dwell / (calm_dwell + burst_dwell)
    rate_factor = calm_fraction + burst_factor * (1.0 - calm_fraction)
    mean_interarrival = mean_interarrival * rate_factor
    rng = np.random.default_rng(seed)
    arrivals = np.empty(requests, dtype=np.float64)
    now = 0.0
    bursting = False
    # Next state flip, in absolute cycles.
    flip = now + rng.exponential(calm_dwell * mean_interarrival)
    for i in range(requests):
        while True:
            mean = mean_interarrival / (burst_factor if bursting else 1.0)
            gap = rng.exponential(mean)
            if now + gap <= flip:
                now += gap
                break
            # The state flips before this arrival lands: restart the
            # (memoryless) draw from the flip point in the new state.
            now = flip
            bursting = not bursting
            dwell = burst_dwell if bursting else calm_dwell
            flip = now + rng.exponential(dwell * mean_interarrival)
        arrivals[i] = now
    classes = _assign_classes(requests, class_mix, rng)
    return Trace(
        kind="bursty",
        seed=seed,
        mean_interarrival=float(mean_interarrival / rate_factor),
        requests=tuple(
            TraceRequest(float(t), cls) for t, cls in zip(arrivals, classes)
        ),
        params={
            "burst_factor": float(burst_factor),
            "calm_dwell": float(calm_dwell),
            "burst_dwell": float(burst_dwell),
        },
    )


def make_trace(
    kind: str,
    mean_interarrival: float,
    requests: int,
    seed: int = 0,
    *,
    class_mix: Optional[Sequence[Tuple[str, float]]] = None,
    **params: float,
) -> Trace:
    """Build a trace by generator kind (the string-keyed factory)."""
    if kind == "poisson":
        return poisson_trace(
            mean_interarrival, requests, seed, class_mix=class_mix, **params
        )
    if kind == "diurnal":
        params.setdefault("period", 200.0 * mean_interarrival)
        return diurnal_trace(
            mean_interarrival, requests, seed, class_mix=class_mix, **params
        )
    if kind == "bursty":
        return bursty_trace(
            mean_interarrival, requests, seed, class_mix=class_mix, **params
        )
    raise ServingError(
        f"unknown trace kind {kind!r}; choose from {TRACE_KINDS}"
    )


# ----------------------------------------------------------------------
# trace spec parsing (the CLI's --trace argument)

_SPEC_KEYS = {
    "load",
    "requests",
    "seed",
    "period",
    "amplitude",
    "burst_factor",
    "calm_dwell",
    "burst_dwell",
}


@dataclass(frozen=True)
class TraceSpec:
    """A parsed ``kind:key=value,...`` trace description.

    The spec is service-time-agnostic: ``load`` is a fraction of the
    serving fleet's aggregate capacity, resolved into a concrete mean
    interarrival only once the backend's service time is known
    (:meth:`build`).
    """

    kind: str
    load: float = 0.5
    requests: int = 1000
    seed: int = 0
    class_mix: Optional[Tuple[Tuple[str, float], ...]] = None
    params: Dict[str, float] = field(default_factory=dict)

    def build(self, service_cycles: float, servers: int = 1) -> Trace:
        """The concrete trace at this spec's load for a given fleet."""
        mean = interarrival_for_load(service_cycles, self.load, servers)
        return make_trace(
            self.kind,
            mean,
            self.requests,
            self.seed,
            class_mix=self.class_mix,
            **self.params,
        )


def parse_trace_spec(spec: str) -> TraceSpec:
    """Parse ``kind:key=value,...`` (e.g. ``poisson:load=0.8,requests=2000``).

    Recognized keys: ``load``, ``requests``, ``seed``, the kind-specific
    shape parameters (``period``, ``amplitude``, ``burst_factor``,
    ``calm_dwell``, ``burst_dwell``), and ``classes`` — a ``+``-joined
    list of ``name:weight`` pairs (``classes=interactive:0.8+bulk:0.2``).
    """
    kind, _, rest = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in TRACE_KINDS:
        raise ServingError(
            f"unknown trace kind {kind!r} in spec {spec!r}; choose from "
            f"{TRACE_KINDS}"
        )
    load, requests, seed = 0.5, 1000, 0
    class_mix: Optional[Tuple[Tuple[str, float], ...]] = None
    params: Dict[str, float] = {}
    for item in filter(None, (part.strip() for part in rest.split(","))):
        key, sep, value = item.partition("=")
        key = key.strip()
        if not sep:
            raise ServingError(f"malformed trace spec item {item!r} in {spec!r}")
        if key == "classes":
            pairs = []
            for pair in value.split("+"):
                name, sep2, weight = pair.partition(":")
                if not sep2:
                    raise ServingError(
                        f"malformed class mix {value!r}: want name:weight"
                    )
                pairs.append((name.strip(), float(weight)))
            class_mix = tuple(pairs)
            continue
        if key not in _SPEC_KEYS:
            raise ServingError(
                f"unknown trace spec key {key!r} in {spec!r}; choose from "
                f"{sorted(_SPEC_KEYS | {'classes'})}"
            )
        if key == "load":
            load = float(value)
        elif key == "requests":
            requests = int(value)
        elif key == "seed":
            seed = int(value)
        else:
            params[key] = float(value)
    if load <= 0:
        raise ServingError("trace load must be positive")
    if requests <= 0:
        raise ServingError("a trace needs at least one request")
    return TraceSpec(
        kind=kind,
        load=load,
        requests=requests,
        seed=seed,
        class_mix=class_mix,
        params=params,
    )


def resolve_trace_argument(
    argument: str, service_cycles: float, servers: int = 1
) -> Trace:
    """The CLI's ``--trace`` semantics: a JSON file path, or an inline
    spec resolved against the backend's measured service time."""
    path = Path(argument)
    if path.suffix == ".json" or path.exists():
        return trace_from_json(path)
    return parse_trace_spec(argument).build(service_cycles, servers)


# ----------------------------------------------------------------------
# serialization (newton-trace/v1)

def trace_to_json(trace: Trace, path: Union[str, Path]) -> Path:
    """Write the trace as a ``newton-trace/v1`` JSON document."""
    target = Path(path)
    document = {
        "schema": TRACE_SCHEMA,
        "kind": trace.kind,
        "seed": trace.seed,
        "mean_interarrival": trace.mean_interarrival,
        "params": trace.params,
        "requests": [
            {"arrival": request.arrival, "class": request.cls}
            for request in trace.requests
        ],
    }
    target.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")
    return target


def trace_from_json(path: Union[str, Path]) -> Trace:
    """Load a ``newton-trace/v1`` document (arrivals must be sorted)."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if document.get("schema") != TRACE_SCHEMA:
        raise ServingError(
            f"{path}: unknown trace schema {document.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})"
        )
    requests = tuple(
        TraceRequest(float(item["arrival"]), str(item.get("class", DEFAULT_CLASS)))
        for item in document["requests"]
    )
    arrivals = [request.arrival for request in requests]
    if arrivals != sorted(arrivals):
        raise ServingError(f"{path}: trace arrivals are not sorted")
    return Trace(
        kind=str(document.get("kind", "file")),
        seed=int(document.get("seed", 0)),
        mean_interarrival=float(document.get("mean_interarrival", 0.0) or 0.0),
        requests=requests,
        params={
            key: float(value)
            for key, value in dict(document.get("params", {})).items()
        },
    )
