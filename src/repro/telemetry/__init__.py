"""``repro.telemetry`` — the metrics & cycle-attribution layer.

Lightweight observability for the whole stack: the controller charges
every cycle to the timing constraint that bound it (see
:data:`repro.dram.controller.ATTRIBUTION_CATEGORIES`), the fast path
replays those charges exactly (pinned by the differential suite), and
this package collects the result — plus bus/bank utilization, refresh
accounting, schedule-cache effectiveness, and serving-queue gauges —
into a :class:`MetricsRegistry` with a schema-validated JSON export
(``newton-repro --metrics PATH``).
"""

from repro.telemetry.collect import (
    controller_metrics,
    device_metrics,
    engine_metrics,
    validate_metrics,
)
from repro.telemetry.registry import SCHEMA, Counter, Gauge, MetricsRegistry

__all__ = [
    "SCHEMA",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "controller_metrics",
    "device_metrics",
    "engine_metrics",
    "validate_metrics",
]
