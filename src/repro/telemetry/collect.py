"""Collecting simulator state into schema-validated metric breakdowns.

The exported record answers the question Newton's Section III-F answers
analytically: *where did the cycles go?* Per-command-type counts, a
cycle-attribution breakdown (activation-bound vs column-bound vs
refresh vs bus — the buckets behind the paper's overhead ratio ``o``),
bank/bus utilization, and refresh accounting. :func:`validate_metrics`
enforces the schema plus the accounting invariant that makes the
breakdown trustworthy: the attributed cycles sum exactly to the run's
end cycle.
"""

from __future__ import annotations

from typing import Optional

from repro.dram.commands import CommandKind
from repro.dram.controller import ATTRIBUTION_CATEGORIES, ChannelController
from repro.errors import TelemetryError
from repro.telemetry.registry import SCHEMA

_COMMAND_NAMES = frozenset(kind.name for kind in CommandKind)


def controller_metrics(
    controller: ChannelController, *, end: Optional[int] = None
) -> dict:
    """One channel controller's full breakdown (finalized at ``end``).

    Calls :meth:`~repro.dram.controller.ChannelController.finalize` so
    open-bank time and the end-of-run tail are closed out; pass the
    run's reported end cycle (e.g. ``result.end_cycle``) so in-flight
    completions are attributed rather than dropped.
    """
    end_cycle = controller.finalize(end)
    stats = controller.stats
    banks = len(controller.banks)
    open_denominator = end_cycle * banks
    return {
        "schema": SCHEMA,
        "kind": "controller",
        "telemetry_enabled": controller.telemetry,
        "end_cycle": end_cycle,
        "commands": {
            kind.name: count
            for kind, count in sorted(
                stats.command_counts.items(), key=lambda item: item[0].name
            )
        },
        "total_commands": stats.total_commands,
        "cycle_attribution": {
            category: stats.cycle_attribution.get(category, 0)
            for category in ATTRIBUTION_CATEGORIES
        },
        "counters": {
            "bank_activations": stats.bank_activations,
            "bank_column_accesses": stats.bank_column_accesses,
            "compute_column_accesses": stats.compute_column_accesses,
            "data_transfers": stats.data_transfers,
            "open_bank_cycles": stats.open_bank_cycles,
            "refreshes": stats.refreshes,
            "refresh_stall_cycles": stats.refresh_stall_cycles,
        },
        "utilization": {
            "cmd_bus": controller.cmd_bus.utilization(end_cycle),
            "data_bus": controller.data_bus.utilization(end_cycle),
            "bank_open": (
                stats.open_bank_cycles / open_denominator
                if open_denominator
                else 0.0
            ),
        },
        "buses": {
            "cmd": controller.cmd_bus.snapshot(end_cycle),
            "data": controller.data_bus.snapshot(end_cycle),
        },
        "refresh": controller.refresh.snapshot(),
    }


def engine_metrics(engine, *, end: Optional[int] = None) -> dict:
    """A channel engine's breakdown: controller plus cache effectiveness."""
    record = controller_metrics(engine.channel.controller, end=end)
    cache = engine.schedule_cache
    record["schedule_cache"] = {
        "hits": cache.hits,
        "misses": cache.misses,
        "replayed_commands": cache.replayed_commands,
        "entries": len(cache),
    }
    record["fast_path"] = engine.fast
    record["burst"] = {
        "runs": engine.burst_runs,
        "commands": engine.burst_commands,
    }
    record["fused"] = {
        # Fused-layer dataflow savings: cycles the elided host GWRITEs
        # would have occupied. Deliberately NOT a cycle_attribution
        # bucket — those sum to the end cycle, and these cycles never
        # happened (see docs/model-graphs.md).
        "runs": getattr(engine, "fused_runs", 0),
        "skipped_gwrites": getattr(engine, "fused_skipped_gwrites", 0),
        "estimated_saved_cycles": getattr(engine, "fused_saved_cycles", 0),
    }
    verifier = getattr(engine, "verifier", None)
    record["verify"] = {
        # The opt-in NEWTON_CHECK_INVARIANTS=1 hook (repro.verify.hook).
        "enabled": verifier is not None,
        "commands_verified": (
            0 if verifier is None else verifier.commands_verified
        ),
        "invariants_checked": (
            0 if verifier is None else verifier.invariants_checked
        ),
        "invariant_violations": (
            0 if verifier is None else verifier.invariant_violations
        ),
    }
    return record


def device_metrics(device) -> dict:
    """Per-channel engine breakdowns for a whole Newton device.

    ``load_truncations`` counts timing-only matrix loads whose
    per-channel placements were dropped (only channel 0 is simulated);
    see :meth:`repro.core.device.NewtonDevice.load_matrix`.
    """
    return {
        "schema": SCHEMA,
        "kind": "device",
        "load_truncations": getattr(device, "load_truncations", 0),
        "channels": {
            str(engine.channel_index): engine_metrics(engine)
            for engine in device.engines
        },
    }


def _require(record: dict, key: str, kinds) -> object:
    if key not in record:
        raise TelemetryError(f"metrics record is missing {key!r}")
    value = record[key]
    if not isinstance(value, kinds):
        raise TelemetryError(
            f"metrics field {key!r} has type {type(value).__name__}"
        )
    return value


def validate_metrics(record: dict) -> dict:
    """Validate a controller breakdown; returns it for chaining.

    Checks the schema stamp, per-command counters (known command names,
    non-negative integers, consistent total), the attribution buckets
    (known categories only), and — whenever telemetry was enabled — the
    sum rule: attributed cycles equal the end cycle exactly.
    """
    if _require(record, "schema", str) != SCHEMA:
        raise TelemetryError(
            f"unknown metrics schema {record['schema']!r} (expected {SCHEMA})"
        )
    end_cycle = _require(record, "end_cycle", int)
    if end_cycle < 0:
        raise TelemetryError(f"end_cycle must be non-negative, got {end_cycle}")
    commands = _require(record, "commands", dict)
    for name, count in commands.items():
        if name not in _COMMAND_NAMES:
            raise TelemetryError(f"unknown command kind {name!r} in metrics")
        if not isinstance(count, int) or count < 0:
            raise TelemetryError(
                f"command counter {name!r} must be a non-negative int, "
                f"got {count!r}"
            )
    total = _require(record, "total_commands", int)
    if total != sum(commands.values()):
        raise TelemetryError(
            f"total_commands={total} disagrees with the per-command sum "
            f"{sum(commands.values())}"
        )
    attribution = _require(record, "cycle_attribution", dict)
    for category, cycles in attribution.items():
        if category not in ATTRIBUTION_CATEGORIES:
            raise TelemetryError(
                f"unknown attribution category {category!r} "
                f"(expected one of {ATTRIBUTION_CATEGORIES})"
            )
        if not isinstance(cycles, int) or cycles < 0:
            raise TelemetryError(
                f"attribution bucket {category!r} must be a non-negative "
                f"int, got {cycles!r}"
            )
    if _require(record, "telemetry_enabled", bool):
        attributed = sum(attribution.values())
        if attributed != end_cycle:
            raise TelemetryError(
                f"attributed cycles ({attributed}) do not sum to the end "
                f"cycle ({end_cycle}); the breakdown is not trustworthy"
            )
    _require(record, "utilization", dict)
    _require(record, "refresh", dict)
    return record
