"""The metrics registry: named counters, gauges, and structured sections.

A :class:`MetricsRegistry` is a process-local bag of metrics with a
stable JSON export, shared by the CLI runner (``newton-repro --metrics
PATH``), the benchmark harness, and the serving simulator. It is
deliberately tiny — three metric shapes cover everything the simulator
needs:

* **counter** — a monotonically increasing integer (commands issued,
  requests served, experiments failed);
* **gauge** — a point-in-time float (p99 latency, queue depth, bus
  utilization);
* **section** — a structured breakdown attached wholesale (the
  controller's cycle-attribution report from
  :func:`repro.telemetry.collect.controller_metrics`).

Names are dotted paths (``serving.p99``, ``runner.failed``); the export
groups them flat under their metric shape so downstream tooling never
has to guess a hierarchy.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.errors import TelemetryError

SCHEMA = "newton-telemetry/v1"
"""Schema identifier stamped into every export."""


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount


class Gauge:
    """A named point-in-time value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class MetricsRegistry:
    """Create-or-get access to counters/gauges plus JSON export."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._sections: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # metric access

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        self._check_name(name, self._gauges, "gauge")
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        self._check_name(name, self._counters, "counter")
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def section(self, name: str, payload: dict) -> None:
        """Attach (or replace) a structured breakdown under ``name``."""
        if not isinstance(payload, dict):
            raise TelemetryError(
                f"section {name!r} payload must be a dict, got "
                f"{type(payload).__name__}"
            )
        self._sections[name] = payload

    def _check_name(self, name: str, other: Dict[str, object], shape: str) -> None:
        if not name:
            raise TelemetryError("metric names must be non-empty")
        if name in other:
            raise TelemetryError(
                f"metric {name!r} is already registered as a {shape}"
            )

    # ------------------------------------------------------------------
    # export

    def to_dict(self) -> dict:
        """The registry as a JSON-serializable record."""
        return {
            "schema": SCHEMA,
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "sections": dict(sorted(self._sections.items())),
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        """Write the export to ``path`` and return it."""
        target = Path(path)
        target.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        return target
