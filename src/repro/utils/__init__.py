"""Shared utilities: statistics, table rendering, and unit helpers."""

from repro.utils.stats import geometric_mean, harmonic_mean, summarize
from repro.utils.tables import render_table
from repro.utils.units import (
    CYCLES_PER_NS,
    bytes_per_cycle_to_gbps,
    cycles_to_ns,
    cycles_to_us,
    ns_to_cycles,
)

__all__ = [
    "geometric_mean",
    "harmonic_mean",
    "summarize",
    "render_table",
    "CYCLES_PER_NS",
    "cycles_to_ns",
    "cycles_to_us",
    "ns_to_cycles",
    "bytes_per_cycle_to_gbps",
]
