"""Boolean environment-variable toggles, parsed one way everywhere.

The repository's convention for runtime switches (``NEWTON_NO_FASTPATH``,
``NEWTON_TELEMETRY``, ...) is a *boolean* environment variable:

* truthy spellings:  ``1``, ``true``, ``yes``, ``on``
* falsy spellings:   ``0``, ``false``, ``no``, ``off`` and the empty string
* unset: the toggle's documented default
* anything else: a :class:`RuntimeWarning` naming the variable, then the
  documented default (a typo must never silently flip a behaviour)

Spellings are case-insensitive and surrounding whitespace is ignored.
Historically ``NEWTON_NO_FASTPATH`` treated *any* non-``"0"`` value —
including ``false`` and ``no`` — as "disable the fast path"; this module
is the fix, and every future toggle should go through it.
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

TRUE_SPELLINGS = frozenset({"1", "true", "yes", "on"})
FALSE_SPELLINGS = frozenset({"0", "false", "no", "off", ""})


def parse_flag(value: Optional[str], *, default: bool, name: str = "flag") -> bool:
    """Parse one boolean toggle value (see module docstring for spellings).

    ``None`` (the variable is unset) and unrecognized spellings both
    yield ``default``; the latter also emits a :class:`RuntimeWarning`.
    """
    if value is None:
        return default
    normalized = value.strip().lower()
    if normalized in TRUE_SPELLINGS:
        return True
    if normalized in FALSE_SPELLINGS:
        return False
    warnings.warn(
        f"{name}={value!r} is not a recognized boolean "
        f"(use one of {sorted(TRUE_SPELLINGS)} / {sorted(FALSE_SPELLINGS)}); "
        f"keeping the default {default}",
        RuntimeWarning,
        stacklevel=2,
    )
    return default


def env_flag(name: str, *, default: bool = False) -> bool:
    """Read the boolean environment toggle ``name``.

    Returns ``default`` when unset or unparseable (with a warning for
    the latter); see :func:`parse_flag` for the accepted spellings.
    """
    return parse_flag(os.environ.get(name), default=default, name=name)
