"""Small statistics helpers used by the experiment harnesses.

The paper reports geometric-mean speedups (Figure 8's "gmean" bars), so the
geometric mean here is the one statistic results actually depend on.

Empty inputs: a sweep's row filter can legitimately drop every row
(e.g. a layer subset that excludes a whole family), and one empty
aggregate must not crash a multi-hour ``newton-repro all`` run. Each
helper therefore accepts an ``empty=`` sentinel: when given, an empty
input returns the sentinel after a :class:`RuntimeWarning`; without it
(the default) empty input raises :class:`ValueError` as before.
"""

from __future__ import annotations

import math
import warnings
from typing import Dict, Iterable, Sequence

_RAISE = object()
"""Default ``empty=`` marker: raise on empty input."""


def _handle_empty(fn_name: str, empty):
    if empty is _RAISE:
        raise ValueError(f"{fn_name} of an empty sequence")
    warnings.warn(
        f"{fn_name} of an empty sequence (a row filter dropped every "
        f"value); returning the sentinel {empty!r}",
        RuntimeWarning,
        stacklevel=3,
    )
    return empty


def geometric_mean(values: Iterable[float], *, empty=_RAISE) -> float:
    """Geometric mean of positive values.

    Args:
        values: the sample; every element must be positive (a
            non-positive speedup is always a bug upstream).
        empty: if given, returned (with a warning) for an empty sample
            instead of raising.

    Raises:
        ValueError: if the sequence contains a non-positive value, or is
            empty and no ``empty`` sentinel was supplied.
    """
    vals = list(values)
    if not vals:
        return _handle_empty("geometric_mean", empty)
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"geometric_mean requires positive values, got {v!r}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def harmonic_mean(values: Iterable[float], *, empty=_RAISE) -> float:
    """Harmonic mean of positive values (used for rate-like aggregates).

    Accepts the same ``empty=`` sentinel as :func:`geometric_mean`.
    """
    vals = list(values)
    if not vals:
        return _handle_empty("harmonic_mean", empty)
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"harmonic_mean requires positive values, got {v!r}")
    return len(vals) / sum(1.0 / v for v in vals)


def summarize(values: Sequence[float], *, empty=_RAISE) -> Dict[str, float]:
    """Return min/max/mean/gmean of a sequence of positives.

    Accepts the same ``empty=`` sentinel as :func:`geometric_mean`
    (returned as-is for an empty sample, typically ``{}`` or ``None``).
    """
    vals = list(values)
    if not vals:
        return _handle_empty("summarize", empty)
    return {
        "min": min(vals),
        "max": max(vals),
        "mean": sum(vals) / len(vals),
        "gmean": geometric_mean(vals),
    }
