"""Small statistics helpers used by the experiment harnesses.

The paper reports geometric-mean speedups (Figure 8's "gmean" bars), so the
geometric mean here is the one statistic results actually depend on.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises:
        ValueError: if the sequence is empty or contains a non-positive
            value (a non-positive speedup is always a bug upstream).
    """
    vals = list(values)
    if not vals:
        raise ValueError("geometric_mean of an empty sequence")
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"geometric_mean requires positive values, got {v!r}")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean of positive values (used for rate-like aggregates)."""
    vals = list(values)
    if not vals:
        raise ValueError("harmonic_mean of an empty sequence")
    for v in vals:
        if v <= 0.0:
            raise ValueError(f"harmonic_mean requires positive values, got {v!r}")
    return len(vals) / sum(1.0 / v for v in vals)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return min/max/mean/gmean of a non-empty sequence of positives."""
    vals = list(values)
    if not vals:
        raise ValueError("summarize of an empty sequence")
    return {
        "min": min(vals),
        "max": max(vals),
        "mean": sum(vals) / len(vals),
        "gmean": geometric_mean(vals),
    }
