"""Plain-text table rendering for experiment output.

The benchmark harnesses print the same rows/series the paper's tables and
figures report; this module renders them in a stable, diff-friendly format.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(cell: Cell, float_digits: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: str = "",
    float_digits: int = 2,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Numbers are right-aligned; strings left-aligned. Every row must have
    the same arity as ``headers``.
    """
    formatted: List[List[str]] = []
    numeric: List[bool] = [True] * len(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        cells = [_format_cell(c, float_digits) for c in row]
        for i, cell in enumerate(row):
            if isinstance(cell, str):
                numeric[i] = False
        formatted.append(cells)

    widths = [len(h) for h in headers]
    for cells in formatted:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(cells) for cells in formatted)
    return "\n".join(lines)
