"""Unit conversions for the simulator's clock domain.

The reproduction runs the DRAM command clock at 1 GHz so that one cycle is
one nanosecond; every timing parameter in :mod:`repro.dram.timing` is
therefore directly comparable to the nanosecond values Table III publishes.
All results the paper reports are ratios, so the absolute clock only
matters for the (normalized) power figures and the GB/s shown in traces.
"""

from __future__ import annotations

CYCLES_PER_NS: float = 1.0
"""Command-clock cycles per nanosecond (1 GHz command clock)."""


def cycles_to_ns(cycles: float) -> float:
    """Convert simulator cycles to nanoseconds."""
    return cycles / CYCLES_PER_NS


def cycles_to_us(cycles: float) -> float:
    """Convert simulator cycles to microseconds."""
    return cycles_to_ns(cycles) / 1000.0


def ns_to_cycles(ns: float) -> int:
    """Convert nanoseconds to whole cycles, rounding up (conservative)."""
    import math

    return int(math.ceil(ns * CYCLES_PER_NS))


def bytes_per_cycle_to_gbps(bytes_per_cycle: float) -> float:
    """Convert a bytes/cycle rate to GB/s under the 1 GHz clock."""
    return bytes_per_cycle * CYCLES_PER_NS
