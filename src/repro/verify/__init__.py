"""Protocol-invariant verification and differential fuzzing.

Three independent correctness instruments over the simulator's command
streams (see ``docs/verification.md``):

* :mod:`repro.verify.invariants` — a post-hoc trace validator checking
  every timing/semantic protocol invariant (tCCD, tRRD, sliding-window
  tFAW, tRCD, refresh compliance, GWRITE-before-COMP, result-latch
  read-before-overwrite, ...), emitting structured
  :class:`~repro.verify.invariants.Violation` records;
* :mod:`repro.verify.oracle` — a deliberately-simple issue-cycle oracle
  that re-derives every recorded issue cycle independently of the
  controller (and of :mod:`repro.dram.ticksim`);
* :mod:`repro.verify.fuzz` — a seeded differential fuzzer running random
  cases through every execution tier and device count, with automatic
  case shrinking on failure.

Entry points: ``newton-repro verify --fuzz N --seed S`` (CLI) and the
opt-in ``NEWTON_CHECK_INVARIANTS=1`` engine hook
(:func:`repro.verify.hook.maybe_attach_verifier`).
"""

from repro.verify.fuzz import (
    FuzzCase,
    FuzzReport,
    fuzz,
    generate_case,
    run_case,
    shrink_case,
)
from repro.verify.hook import EngineVerifier, maybe_attach_verifier
from repro.verify.invariants import (
    ALL_RULES,
    InvariantChecker,
    Violation,
    check_trace,
    merge_events,
    require_complete,
)
from repro.verify.oracle import CycleOracle, Divergence

__all__ = [
    "ALL_RULES",
    "CycleOracle",
    "Divergence",
    "EngineVerifier",
    "FuzzCase",
    "FuzzReport",
    "InvariantChecker",
    "Violation",
    "check_trace",
    "fuzz",
    "generate_case",
    "maybe_attach_verifier",
    "merge_events",
    "require_complete",
    "run_case",
    "shrink_case",
]
