"""Seeded differential fuzzing across execution tiers and devices.

Each :class:`FuzzCase` is a randomly drawn (geometry, timing, opt-combo,
workload) point, executed four ways:

1. **per-command reference** — ``fast=False`` with a
   :class:`~repro.dram.trace.CommandTrace` attached, which is also the
   execution whose trace the :class:`~repro.verify.invariants
   .InvariantChecker` and the :class:`~repro.verify.oracle.CycleOracle`
   validate;
2. **burst kernel** — a fresh ``fast=True`` engine's first run (a cold
   schedule-cache miss issues homogeneous runs through the closed-form
   burst kernel);
3. **fast-path replay** — the same engine's subsequent runs (schedule
   cache hits fast-forward the controller);
4. **2-device shard** — when the case says so, the same matrix
   row-sharded over a :class:`~repro.cluster.ShardedCluster` of two
   Newton backends.

The case passes only if every tier produces bit-identical outputs and
identical start/end cycles, the invariant checker finds zero violations,
and the oracle re-derives every recorded issue cycle exactly.

A minority of cases additionally draw a **graph-execution family**
(``case.graph`` in ``decode`` / ``moe`` / ``lora``): a scenario graph
from :mod:`repro.workloads.scenarios` runs as a multi-step
:class:`~repro.host.graph_runtime.GraphSession` under the case's
geometry/timing/opt knobs, and the harness checks that (a) the fused
lowering is bit-identical to the round-trip lowering at every step and
never costs more cycles, (b) the fast-tier session agrees with the
per-command reference tier on outputs *and* cycles, and (c) on 2-device
cases the sharded session matches the single-device one bit-wise. This
extends the differential net to stateful command streams — in-place
``store_matrix`` arena growth, fused ``COMP`` chains, expert routing —
that one-shot GEMV cases never produce.

Failures shrink automatically: a greedy pass re-runs the case under
simplifying transforms (drop the batch, drop the second device, disable
refresh, halve the workload, revert knobs to their defaults) and keeps
every transform that still fails, so the reported case is near-minimal.
Every case is reproducible from ``(seed, index)`` alone via
:func:`generate_case` — see ``docs/verification.md``.

``controller_mutator`` deliberately corrupts controllers before running
(e.g. shrinking the tFAW window by one): the harness's own regression
tests inject bugs this way and assert the checker and oracle catch them.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.backends.newton import NewtonBackend
from repro.cluster import ShardedCluster
from repro.core.engine import NewtonChannelEngine
from repro.core.optimizations import OptimizationConfig
from repro.dram.config import DRAMConfig, hbm2e_like_config
from repro.dram.timing import TimingParams, hbm2e_like_timing
from repro.dram.trace import CommandTrace
from repro.errors import VerificationError
from repro.verify import invariants as inv
from repro.verify import oracle as orc

SCHEMA = "newton-verify/v1"
"""Schema stamp of :meth:`FuzzReport.to_dict` (the CI artifact format)."""

TRACE_CAPACITY = 400_000
"""Ring capacity for the reference tier's trace. Cases are sized well
below this; :func:`repro.verify.invariants.require_complete` raises if a
case ever outgrows it rather than silently checking a partial trace."""

_CASE_SEED_STRIDE = 1_000_003
"""Prime stride decorrelating per-case RNG streams within one seed."""

REFRESH_OFF = "off"
REFRESH_FAST = "fast"
REFRESH_STANDARD = "standard"
_REFRESH_TIMING = {
    # (t_refi, t_rfc): "fast" is shortened so refresh actually fires
    # several times inside a small fuzz workload; "standard" keeps the
    # Table III values (usually meaning zero refreshes per case, which
    # exercises the nothing-due paths).
    REFRESH_FAST: (600, 60),
    REFRESH_STANDARD: (3900, 350),
}

GRAPH_NONE = "none"
GRAPH_FAMILIES = ("decode", "moe", "lora")
"""Scenario graphs a case may draw as its graph-execution family."""

RIVAL_COMMAND_FAMILIES = ("output_stationary", "bankgroup_ext")
"""Non-Newton command families a plain-GEMV case may draw. Rival
families only run on ``graph == "none"`` cases: the graph sessions'
fused-lowering differential is specific to Newton's chunk-major
protocol, and ``output_stationary`` additionally requires the
interleaved traversal."""

ControllerMutator = Callable[[object], None]


@dataclass(frozen=True)
class FuzzCase:
    """One reproducible fuzz input (derivable from ``(seed, index)``)."""

    index: int
    seed: int
    banks: int
    m: int
    n: int
    batch: int
    ganged_compute: bool
    complex_commands: bool
    interleaved_reuse: bool
    four_bank_activation: bool
    aggressive_tfaw: bool
    result_latches: int
    refresh: str
    t_cmd: int
    t_ccd: int
    devices: int
    graph: str = GRAPH_NONE
    family: str = "newton"
    """The command family the case's devices speak (rival families make
    the verifier sweep genuinely different protocols, not just knobs)."""

    def config(self) -> DRAMConfig:
        return hbm2e_like_config(banks_per_channel=self.banks).with_overrides(
            rows_per_bank=128, command_family=self.family
        )

    def timing(self) -> TimingParams:
        overrides = {"t_cmd": self.t_cmd, "t_ccd": self.t_ccd}
        if self.refresh in _REFRESH_TIMING:
            t_refi, t_rfc = _REFRESH_TIMING[self.refresh]
            overrides.update(t_refi=t_refi, t_rfc=t_rfc)
        return hbm2e_like_timing().with_overrides(**overrides)

    def opt(self) -> OptimizationConfig:
        return OptimizationConfig(
            ganged_compute=self.ganged_compute,
            complex_commands=self.complex_commands,
            interleaved_reuse=self.interleaved_reuse,
            four_bank_activation=self.four_bank_activation,
            aggressive_tfaw=self.aggressive_tfaw,
            result_latches=self.result_latches,
        )

    @property
    def refresh_enabled(self) -> bool:
        return self.refresh != REFRESH_OFF

    def case_seed(self) -> int:
        return self.seed * _CASE_SEED_STRIDE + self.index

    def describe(self) -> str:
        return (
            f"case #{self.index} (seed {self.seed}): {self.m}x{self.n} "
            f"batch={self.batch} banks={self.banks} opt={self.opt().label} "
            f"refresh={self.refresh} t_cmd={self.t_cmd} t_ccd={self.t_ccd} "
            f"devices={self.devices} graph={self.graph} family={self.family}"
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


def generate_case(seed: int, index: int) -> FuzzCase:
    """Draw case ``index`` of seed ``seed`` (stable across runs)."""
    rng = np.random.default_rng(seed * _CASE_SEED_STRIDE + index)

    def pick(options, weights):
        return options[rng.choice(len(options), p=np.array(weights) / sum(weights))]

    interleaved = bool(rng.integers(2))
    m = int(rng.integers(1, 41))
    banks = pick([8, 16], [1, 2])
    n = int(rng.integers(1, 321))
    # Mostly >= 2 so the fast tier's later runs exercise schedule
    # replay, not just the cold burst path.
    batch = pick([1, 2, 3], [2, 5, 3])
    ganged_compute = bool(rng.integers(2))
    complex_commands = bool(rng.integers(2))
    four_bank_activation = bool(rng.integers(2))
    aggressive_tfaw = bool(rng.integers(2))
    # Multiple latches only exist on the row-major traversal.
    result_latches = 1 if interleaved else pick([1, 4], [3, 1])
    refresh = pick([REFRESH_FAST, REFRESH_OFF, REFRESH_STANDARD], [6, 2, 2])
    t_cmd = pick([4, 2, 7], [3, 1, 1])
    t_ccd = pick([4, 2, 6], [3, 1, 1])
    devices = 2 if (m >= 2 and rng.random() < 0.3) else 1
    # Drawn after every base field so adding the graph family kept every
    # earlier field of a given (seed, index) identical to previous
    # harness versions.
    graph = pick([GRAPH_NONE, *GRAPH_FAMILIES], [7, 1, 1, 1])
    # The command-family roll is drawn last, after the graph, for the
    # same reproducibility reason — and always drawn (even when it
    # cannot apply) so future fields keep their stream positions.
    family_roll = pick(["newton", *RIVAL_COMMAND_FAMILIES], [3, 1, 1])
    family = "newton"
    if graph == GRAPH_NONE:
        if family_roll == "bankgroup_ext":
            family = family_roll
        elif family_roll == "output_stationary" and interleaved:
            family = family_roll
    return FuzzCase(
        index=index,
        seed=seed,
        banks=banks,
        m=m,
        n=n,
        batch=batch,
        ganged_compute=ganged_compute,
        complex_commands=complex_commands,
        interleaved_reuse=interleaved,
        four_bank_activation=four_bank_activation,
        aggressive_tfaw=aggressive_tfaw,
        result_latches=result_latches,
        refresh=refresh,
        t_cmd=t_cmd,
        t_ccd=t_ccd,
        devices=devices,
        graph=graph,
        family=family,
    )


@dataclass
class CaseResult:
    """Everything one case's execution produced."""

    case: FuzzCase
    failures: List[str] = field(default_factory=list)
    violations: List[inv.Violation] = field(default_factory=list)
    divergences: List[orc.Divergence] = field(default_factory=list)
    checks: int = 0
    """Individual invariant evaluations performed."""
    commands: int = 0
    """Commands the reference tier traced (= records verified)."""

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [self.case.describe()]
        lines.extend(f"  FAIL: {failure}" for failure in self.failures)
        lines.extend(f"  {v.render()}" for v in self.violations[:10])
        lines.extend(f"  {d.render()}" for d in self.divergences[:10])
        return "\n".join(lines)


def _workload(case: FuzzCase):
    rng = np.random.default_rng(case.case_seed())
    matrix = rng.standard_normal((case.m, case.n)).astype(np.float32)
    vectors = rng.standard_normal((case.batch, case.n)).astype(np.float32)
    return matrix, vectors


def _run_engine(
    case: FuzzCase,
    *,
    fast: bool,
    trace: Optional[CommandTrace],
    mutator: Optional[ControllerMutator],
):
    engine = NewtonChannelEngine(
        case.config(),
        case.timing(),
        case.opt(),
        functional=True,
        refresh_enabled=case.refresh_enabled,
        fast=fast,
    )
    controller = engine.channel.controller
    if trace is not None:
        controller.trace = trace
    if mutator is not None:
        mutator(controller)
    matrix, vectors = _workload(case)
    layout = engine.add_matrix(case.m, case.n, matrix)
    results = [engine.run_gemv(layout, vectors[i]) for i in range(case.batch)]
    return engine, results


def _graph_spec(case: FuzzCase):
    """Draw the family's (graph, step count) from the case's own stream.

    Offset from :meth:`FuzzCase.case_seed` so the dims are independent
    of the base GEMV workload draw but still reproducible from
    ``(seed, index)`` alone.
    """
    from repro.workloads.scenarios import decode_model, lora_model, moe_model

    rng = np.random.default_rng(case.case_seed() + 1)
    d = int(rng.choice([8, 16, 24]))
    steps = int(rng.integers(2, 5))
    if case.graph == "decode":
        return decode_model(d=d, window=steps, blocks=1), steps
    if case.graph == "moe":
        return moe_model(d=d, experts=3, top_k=2, blocks=1), steps
    return lora_model(d=d, rank=2, blocks=2), steps


def _graph_backend(case: FuzzCase, *, fast: bool) -> NewtonBackend:
    return NewtonBackend(
        case.config(),
        case.timing(),
        opt=case.opt(),
        functional=True,
        refresh_enabled=case.refresh_enabled,
        fast=fast,
    )


def _run_graph_family(case: FuzzCase, out: CaseResult) -> None:
    """Session differentials: fused vs unfused, tiers, and the shard."""
    spec, steps = _graph_spec(case)
    seed = case.case_seed()

    def run_session(engine, *, fused: bool):
        session = engine.open_session(spec, fused=fused, seed=seed)
        try:
            return session.run_steps(steps)
        finally:
            session.close()
            engine.close()

    unfused = run_session(_graph_backend(case, fast=True), fused=False)
    fused = run_session(_graph_backend(case, fast=True), fused=True)
    reference = run_session(_graph_backend(case, fast=False), fused=False)

    for i, (u, f) in enumerate(zip(unfused, fused)):
        if not np.array_equal(u.output, f.output):
            out.failures.append(
                f"graph {case.graph} step {i}: fused output differs "
                "from the round-trip lowering"
            )
    fused_total = sum(r.total_cycles for r in fused)
    unfused_total = sum(r.total_cycles for r in unfused)
    if fused_total > unfused_total:
        out.failures.append(
            f"graph {case.graph}: fused session cost {fused_total:,.0f} "
            f"cycles > round-trip {unfused_total:,.0f}"
        )
    for i, (u, r) in enumerate(zip(unfused, reference)):
        if not np.array_equal(u.output, r.output):
            out.failures.append(
                f"graph {case.graph} step {i}: fast-tier session output "
                "differs from the per-command reference"
            )
        if u.total_cycles != r.total_cycles:
            out.failures.append(
                f"graph {case.graph} step {i}: fast-tier session cycles "
                f"{u.total_cycles:,.0f} != per-command reference "
                f"{r.total_cycles:,.0f}"
            )

    if case.devices == 2:
        cluster = ShardedCluster(
            [_graph_backend(case, fast=True) for _ in range(case.devices)]
        )
        sharded = run_session(cluster, fused=True)
        for i, (f, s) in enumerate(zip(fused, sharded)):
            if not np.array_equal(f.output, s.output):
                out.failures.append(
                    f"graph {case.graph} step {i}: {case.devices}-device "
                    "session output differs from the single-device one"
                )


def run_case(
    case: FuzzCase, *, controller_mutator: Optional[ControllerMutator] = None
) -> CaseResult:
    """Execute one case through every tier and validate its trace."""
    out = CaseResult(case=case)

    trace = CommandTrace(capacity=TRACE_CAPACITY)
    ref_engine, ref_runs = _run_engine(
        case, fast=False, trace=trace, mutator=controller_mutator
    )
    fast_engine, fast_runs = _run_engine(
        case, fast=True, trace=None, mutator=controller_mutator
    )

    # --- tier agreement: per-command vs burst (run 0) vs replay (run 1+)
    for i, (ref, fst) in enumerate(zip(ref_runs, fast_runs)):
        tier = "burst" if i == 0 else "replay"
        if (ref.start_cycle, ref.end_cycle) != (fst.start_cycle, fst.end_cycle):
            out.failures.append(
                f"run {i}: per-command cycles [{ref.start_cycle}, "
                f"{ref.end_cycle}] != {tier} tier [{fst.start_cycle}, "
                f"{fst.end_cycle}]"
            )
        if not np.array_equal(ref.output, fst.output):
            out.failures.append(
                f"run {i}: per-command output differs from the {tier} tier"
            )

    # --- 2-device shard tier
    if case.devices == 2:
        matrix, vectors = _workload(case)
        cluster = ShardedCluster(
            [
                NewtonBackend(
                    case.config(),
                    case.timing(),
                    opt=case.opt(),
                    functional=True,
                    refresh_enabled=case.refresh_enabled,
                    fast=True,
                )
                for _ in range(case.devices)
            ]
        )
        handle = cluster.load_matrix(matrix)
        for i in range(case.batch):
            run = cluster.gemv(handle, vectors[i])
            if not np.array_equal(run.output, ref_runs[i].output):
                out.failures.append(
                    f"run {i}: {case.devices}-device shard output differs "
                    "from the single-device reference"
                )

    # --- graph-execution family: multi-step session differentials
    if case.graph != GRAPH_NONE:
        _run_graph_family(case, out)

    # --- protocol invariants on the reference tier's trace
    try:
        records = inv.require_complete(trace)
    except VerificationError as error:
        out.failures.append(str(error))
        return out
    out.commands = len(records)
    controller = ref_engine.channel.controller
    end = max((run.end_cycle for run in ref_runs), default=controller.now)
    checker = inv.InvariantChecker(
        case.config(),
        case.timing(),
        aggressive_tfaw=case.aggressive_tfaw,
        # output_stationary accumulates a whole tile in latch 0 across
        # chunks by design, so the one-emit-per-fill latch discipline the
        # interleaved Newton traversal obeys does not apply to it.
        check_latch=(
            case.interleaved_reuse and case.family != "output_stationary"
        ),
        check_refresh_interval=case.refresh_enabled,
    )
    out.violations = inv.check_trace(
        records,
        case.config(),
        case.timing(),
        refresh_log=controller.refresh.log,
        end=end,
        checker=checker,
    )
    out.checks = checker.checks
    if out.violations:
        out.failures.append(
            f"{len(out.violations)} protocol invariant violation(s), first: "
            f"{out.violations[0].render()}"
        )

    # --- independent issue-cycle oracle on the same trace
    out.divergences = orc.check_trace(
        records,
        case.config(),
        case.timing(),
        aggressive_tfaw=case.aggressive_tfaw,
        refresh_log=controller.refresh.log,
    )
    if out.divergences:
        out.failures.append(
            f"oracle re-derives {len(out.divergences)} issue cycle(s) "
            f"differently, first: {out.divergences[0].render()}"
        )
    return out


# ----------------------------------------------------------------------
# shrinking


def _shrink_candidates(case: FuzzCase) -> List[FuzzCase]:
    """Simplifying transforms, most aggressive first."""

    def evolve(**kwargs) -> FuzzCase:
        return dataclasses.replace(case, **kwargs)

    candidates = [
        evolve(batch=1),
        evolve(devices=1),
        evolve(graph=GRAPH_NONE),
        evolve(family="newton"),
        evolve(refresh=REFRESH_OFF),
        evolve(m=max(1, case.m // 2)),
        evolve(n=max(1, case.n // 2)),
        evolve(m=1),
        evolve(n=16),
        evolve(banks=8),
        evolve(result_latches=1),
        evolve(t_cmd=4),
        evolve(t_ccd=4),
        evolve(aggressive_tfaw=False),
        evolve(ganged_compute=True),
        evolve(complex_commands=True),
        evolve(four_bank_activation=True),
    ]
    return [c for c in candidates if c != case]


def shrink_case(
    case: FuzzCase,
    *,
    controller_mutator: Optional[ControllerMutator] = None,
    budget: int = 40,
) -> "tuple[FuzzCase, int]":
    """Greedily simplify a failing case while it keeps failing.

    Returns the smallest still-failing case found and how many candidate
    executions the search spent (bounded by ``budget``).
    """
    spent = 0
    current = case
    improved = True
    while improved and spent < budget:
        improved = False
        for candidate in _shrink_candidates(current):
            if spent >= budget:
                break
            spent += 1
            try:
                result = run_case(
                    candidate, controller_mutator=controller_mutator
                )
            except Exception:  # noqa: BLE001 - a crash still reproduces
                result = None
            if result is None or not result.ok:
                current = candidate
                improved = True
                break
    return current, spent


# ----------------------------------------------------------------------
# the campaign


@dataclass
class FailureRecord:
    """One failing case, as found and as shrunk."""

    original: FuzzCase
    shrunk: FuzzCase
    result: CaseResult
    """The *shrunk* case's result (what to debug first)."""

    def render(self) -> str:
        lines = [self.result.render()]
        if self.shrunk != self.original:
            lines.append(f"  shrunk from: {self.original.describe()}")
        lines.append(
            "  reproduce: repro.verify.generate_case"
            f"({self.original.seed}, {self.original.index})"
        )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign (the ``newton-repro verify`` payload)."""

    seed: int
    requested: int
    cases_run: int = 0
    graph_cases: int = 0
    """Cases that additionally ran a graph-session family."""
    rival_family_cases: int = 0
    """Cases that spoke a non-Newton command family."""
    commands_verified: int = 0
    checks: int = 0
    violations_found: int = 0
    divergences_found: int = 0
    shrink_executions: int = 0
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.cases_run}/{self.requested} cases "
            f"(seed {self.seed}, {self.graph_cases} with graph "
            f"sessions, {self.rival_family_cases} on rival command "
            f"families) — "
            f"{self.commands_verified} commands verified, "
            f"{self.checks} invariant checks, "
            f"{self.violations_found} violation(s), "
            f"{self.divergences_found} oracle divergence(s)"
        ]
        if self.ok:
            lines.append("all cases passed")
        else:
            lines.append(f"{len(self.failures)} case(s) FAILED:")
            lines.extend(record.render() for record in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable report (the nightly CI artifact)."""
        return {
            "schema": SCHEMA,
            "seed": self.seed,
            "requested": self.requested,
            "cases_run": self.cases_run,
            "graph_cases": self.graph_cases,
            "rival_family_cases": self.rival_family_cases,
            "commands_verified": self.commands_verified,
            "checks": self.checks,
            "violations_found": self.violations_found,
            "divergences_found": self.divergences_found,
            "shrink_executions": self.shrink_executions,
            "ok": self.ok,
            "failures": [
                {
                    "original": record.original.to_dict(),
                    "shrunk": record.shrunk.to_dict(),
                    "messages": list(record.result.failures),
                    "violations": [
                        v.render() for v in record.result.violations[:50]
                    ],
                    "divergences": [
                        d.render() for d in record.result.divergences[:50]
                    ],
                }
                for record in self.failures
            ],
        }


def fuzz(
    count: int,
    seed: int = 0,
    *,
    controller_mutator: Optional[ControllerMutator] = None,
    shrink_budget: int = 40,
    progress: Optional[Callable[[CaseResult], None]] = None,
) -> FuzzReport:
    """Run a fuzz campaign of ``count`` cases drawn from ``seed``."""
    report = FuzzReport(seed=seed, requested=count)
    for index in range(count):
        case = generate_case(seed, index)
        result = run_case(case, controller_mutator=controller_mutator)
        report.cases_run += 1
        if case.graph != GRAPH_NONE:
            report.graph_cases += 1
        if case.family != "newton":
            report.rival_family_cases += 1
        report.commands_verified += result.commands
        report.checks += result.checks
        report.violations_found += len(result.violations)
        report.divergences_found += len(result.divergences)
        if progress is not None:
            progress(result)
        if not result.ok:
            shrunk, spent = shrink_case(
                case,
                controller_mutator=controller_mutator,
                budget=shrink_budget,
            )
            report.shrink_executions += spent
            shrunk_result = (
                result
                if shrunk == case
                else run_case(shrunk, controller_mutator=controller_mutator)
            )
            report.failures.append(
                FailureRecord(
                    original=case, shrunk=shrunk, result=shrunk_result
                )
            )
    return report
