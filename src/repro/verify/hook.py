"""The opt-in ``NEWTON_CHECK_INVARIANTS=1`` engine verification hook.

With the flag on, every :class:`~repro.core.engine.NewtonChannelEngine`
attaches an :class:`EngineVerifier` at construction: a streaming trace
recorder that feeds each issued command straight into an incremental
:class:`~repro.verify.invariants.InvariantChecker` (interleaving refresh
windows from the scheduler's log as they appear), then raises
:class:`~repro.errors.VerificationError` at the end of any run that
violated the protocol.

Attaching a recorder to the controller automatically forces the
per-command execution tier for every run (the engine disables schedule
replay and the burst kernel under a trace), so the verifier always sees
the full command stream — that is the point: the hook trades speed for a
protocol check of the exact commands issued. The recorder keeps *no*
history, so arbitrarily long sessions verify in O(1) memory.

The verifier's counters (``invariants_checked`` /
``invariant_violations``) surface in the engine's telemetry export under
the ``verify`` section.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import VerificationError
from repro.utils.envflags import env_flag
from repro.verify.invariants import InvariantChecker, Violation

ENV_FLAG = "NEWTON_CHECK_INVARIANTS"


def check_invariants_env_enabled() -> bool:
    """True when ``NEWTON_CHECK_INVARIANTS`` requests the verifier.

    Off by default (the check forces the per-command tier); accepts the
    repository's standard boolean spellings
    (see :mod:`repro.utils.envflags`).
    """
    return env_flag(ENV_FLAG, default=False)


class EngineVerifier:
    """Streams one engine's issued commands through the invariant checker.

    Installed as the controller's trace recorder: :meth:`record` is
    called per issued command, in issue order. Refresh windows live in
    the scheduler's log, not the command stream, so each :meth:`record`
    first drains any refresh that matured strictly before the incoming
    command (a refresh tying a command's cycle happened after it — the
    barrier stalls from the controller's current time, past every prior
    issue).
    """

    def __init__(self, engine):
        controller = engine.channel.controller
        if controller.trace is not None:
            raise VerificationError(
                "the controller already has a trace recorder; the "
                "invariant verifier cannot attach"
            )
        self._refresh_log = controller.refresh.log
        self._refresh_cursor = 0
        self._reported = 0
        self.checker = InvariantChecker(
            engine.config,
            engine.timing,
            aggressive_tfaw=engine.opt.aggressive_tfaw,
            check_latch=engine.opt.interleaved_reuse,
            check_refresh_interval=controller.refresh.enabled,
        )
        controller.trace = self

    # ------------------------------------------------------------------
    # the trace-recorder interface the controller drives

    def record(self, record) -> None:
        """Observe one issued command (the ``CommandTrace`` protocol)."""
        self._drain_refreshes(before=record.issue)
        self.checker.observe(record)

    def _drain_refreshes(self, before: Optional[int] = None) -> None:
        log = self._refresh_log
        while self._refresh_cursor < len(log):
            issue, done = log[self._refresh_cursor]
            if before is not None and issue >= before:
                break
            self.checker.observe_refresh(issue, done)
            self._refresh_cursor += 1

    # ------------------------------------------------------------------
    # counters (exported under telemetry's ``verify`` section)

    @property
    def invariants_checked(self) -> int:
        """Individual invariant evaluations performed so far."""
        return self.checker.checks

    @property
    def invariant_violations(self) -> int:
        """Violations found so far (also the count already raised for)."""
        return len(self.checker.violations)

    @property
    def commands_verified(self) -> int:
        return self.checker.records_checked

    # ------------------------------------------------------------------

    def after_run(self, end: Optional[int] = None) -> None:
        """Close out a run; raise if it violated the protocol.

        Drains refresh windows logged at the run's trailing barrier,
        re-checks the run-level invariants (refresh debt at ``end``),
        and raises :class:`VerificationError` carrying the new
        violations. Counters update *before* the raise, so telemetry
        still reports a failed run faithfully.
        """
        self._drain_refreshes()
        self.checker.finish(end)
        fresh: List[Violation] = self.checker.violations[self._reported :]
        if fresh:
            self._reported = len(self.checker.violations)
            shown = "\n".join(v.render() for v in fresh[:10])
            more = len(fresh) - min(len(fresh), 10)
            raise VerificationError(
                f"{len(fresh)} protocol invariant violation(s) this run"
                + (f" (first 10 shown; {more} more)" if more else "")
                + f":\n{shown}"
            )


def maybe_attach_verifier(engine) -> Optional[EngineVerifier]:
    """Attach an :class:`EngineVerifier` if the environment asks for one.

    Called by the engine constructor; returns ``None`` (and leaves the
    engine untouched) unless ``NEWTON_CHECK_INVARIANTS`` is truthy and
    the controller has no trace recorder yet.
    """
    if not check_invariants_env_enabled():
        return None
    if engine.channel.controller.trace is not None:
        return None
    return EngineVerifier(engine)
