"""Post-hoc protocol-invariant validation of command traces.

The simulator has three execution tiers (per-command solver, burst
kernel, fast-path replay) pinned pairwise by differential tests — but a
differential test only proves the tiers agree with *each other*. This
module independently re-checks the DRAM command protocol Newton defines
(Table I and Section III) against the one artifact every tier must
produce the same way: the issued command trace.

:class:`InvariantChecker` consumes :class:`~repro.dram.controller.IssueRecord`
events (plus refresh windows from the
:class:`~repro.dram.refresh.RefreshScheduler` log) in issue order and
emits a structured :class:`Violation` for every breach of the invariant
catalog:

========================== ============================================
Rule                       Invariant
========================== ============================================
``issue_order``            issues are monotonically non-decreasing
``cmd_bus``                >= tCMD between any two commands
``tRRD``                   >= tRRD between activation commands
``tFAW``                   any activation and its fourth-previous one
                           are >= tFAW apart (sliding window)
``tRCD``                   no column access within tRCD of the ACT
``tCCD``                   >= tCCD between column accesses per bank
``tRAS``                   no (auto-)precharge within tRAS of the ACT
``tRP``                    no ACT within tRP of the precharge
``tWR``                    no (auto-)precharge within the write recovery
``bank_state``             no ACT on an open bank, no column access or
                           PRE on a closed bank (rows are not
                           double-buffered)
``data_bus``               data-I/O slots (RD/WR/GWRITE/READRES) never
                           overlap
``tree_drain``             READRES waits out the adder-tree drain after
                           the last compute feed
``gwrite_before_comp``     COMP/BUF_READ only read global-buffer
                           sub-chunks a GWRITE has loaded
``latch_overwrite``        a result latch holding unread data is never
                           accumulated into by a later tile (full-reuse
                           single-latch traversal only)
``refresh``                no command inside a refresh blackout, refresh
                           windows are well-formed, and the pending
                           (postponed) refresh debt stays bounded
========================== ============================================

The checker is *incremental*: the engine's opt-in
``NEWTON_CHECK_INVARIANTS=1`` hook feeds it run by run, and the fuzz
harness (:mod:`repro.verify.fuzz`) feeds it whole traces through
:func:`check_trace`. It deliberately shares no code with the controller,
the burst kernel, or the tick simulator — its bookkeeping is spelled out
from the timing spec so a bug in any engine shows up as a violation
rather than being faithfully reproduced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dram.commands import CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.controller import IssueRecord
from repro.dram.timing import TimingParams
from repro.errors import VerificationError

NEG_INF = -(10**18)

# Rule identifiers (the ``Violation.rule`` vocabulary).
R_ORDER = "issue_order"
R_CMD_BUS = "cmd_bus"
R_TRRD = "tRRD"
R_TFAW = "tFAW"
R_TRCD = "tRCD"
R_TCCD = "tCCD"
R_TRAS = "tRAS"
R_TRP = "tRP"
R_TWR = "tWR"
R_BANK_STATE = "bank_state"
R_DATA_BUS = "data_bus"
R_TREE = "tree_drain"
R_GBUF = "gwrite_before_comp"
R_LATCH = "latch_overwrite"
R_REFRESH = "refresh"

ALL_RULES = (
    R_ORDER,
    R_CMD_BUS,
    R_TRRD,
    R_TFAW,
    R_TRCD,
    R_TCCD,
    R_TRAS,
    R_TRP,
    R_TWR,
    R_BANK_STATE,
    R_DATA_BUS,
    R_TREE,
    R_GBUF,
    R_LATCH,
    R_REFRESH,
)
"""Every rule a :class:`Violation` may carry."""

MAX_POSTPONED_REFRESHES = 8
"""JEDEC's refresh-postponement ceiling: at most this many matured
refresh intervals may be outstanding at any time. The checker enforces
it only on request (``max_postponed_refreshes=8``): the simulator's
refresh model deliberately postpones *without* a cap across a long
un-barriered operation (see :mod:`repro.dram.refresh` — the debt is paid
at the next barrier and the average rate is preserved), so the ceiling
is a stricter policy than the model guarantees."""

_COLUMN_KINDS = frozenset(
    {
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.COMP,
        CommandKind.COMP_BANK,
        CommandKind.COL_READ,
        CommandKind.COL_READ_ALL,
    }
)
_DATA_KINDS = frozenset(
    {
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.GWRITE,
        CommandKind.READRES,
        CommandKind.READRES_BANK,
    }
)
_TREE_FEED_KINDS = frozenset(
    {CommandKind.COMP, CommandKind.COMP_BANK, CommandKind.MAC, CommandKind.MAC_ALL}
)
_LATCH_FEED_KINDS = _TREE_FEED_KINDS
_BUFFER_READ_KINDS = frozenset(
    {CommandKind.COMP, CommandKind.COMP_BANK, CommandKind.BUF_READ}
)


@dataclass(frozen=True)
class Violation:
    """One breach of a protocol invariant, located in the trace."""

    rule: str
    """Which invariant broke (one of :data:`ALL_RULES`)."""
    cycle: int
    """Issue cycle of the offending event."""
    index: int
    """Position in the checked record stream (-1 for refresh/end-of-run
    checks that are not anchored to a command)."""
    command: Optional[str]
    """``Command.describe()`` text of the offender, if any."""
    detail: str
    """Human-readable explanation with the numbers that disagree."""

    def render(self) -> str:
        where = f"#{self.index} " if self.index >= 0 else ""
        what = f" {self.command}" if self.command else ""
        return f"[{self.rule}] {where}@{self.cycle}{what}: {self.detail}"


@dataclass
class _BankView:
    """The checker's independent model of one bank's timing state."""

    open_row: Optional[int] = None
    act_time: int = NEG_INF
    ready_for_act: int = 0
    last_column_issue: int = NEG_INF
    wr_recovery_until: int = NEG_INF
    latch_dirty: bool = False
    acted_since_feed: bool = False


class InvariantChecker:
    """Incrementally validates an issued command stream against the spec.

    Feed events in issue order: :meth:`observe` per command record,
    :meth:`observe_refresh` per refresh window (interleaved where they
    occurred — :func:`check_trace` does the merge for whole traces), and
    :meth:`finish` once the run's end cycle is known. Violations
    accumulate on :attr:`violations`; :attr:`checks` counts every
    individual invariant evaluation performed, which is what the
    telemetry counters export.
    """

    FAW_WINDOW = 4

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        *,
        aggressive_tfaw: bool = False,
        check_latch: bool = False,
        check_refresh_interval: bool = True,
        max_postponed_refreshes: Optional[int] = None,
    ):
        self.config = config
        self.timing = timing
        self.faw = timing.faw_window(aggressive_tfaw)
        self.check_latch = check_latch
        """Enable the single-latch overwrite rule. Only sound for the
        interleaved full-reuse traversal: the row-major variants
        deliberately accumulate one latch across tiles."""
        self.check_refresh_interval = check_refresh_interval
        self.max_postponed = max_postponed_refreshes
        self.violations: List[Violation] = []
        self.checks = 0
        self.records_checked = 0
        self.refreshes_checked = 0

        self._banks = [_BankView() for _ in range(config.banks_per_channel)]
        self._last_issue: Optional[int] = None
        # The bankgroup_ext family scopes the four-activation window per
        # bank group (tRRD stays channel-global); every other family
        # keeps the single channel-wide window.
        self._faw_scopes = (
            config.bank_groups
            if config.command_family == "bankgroup_ext"
            else 1
        )
        self._acts: List[Deque[int]] = [
            deque(maxlen=self.FAW_WINDOW) for _ in range(self._faw_scopes)
        ]
        self._last_act = NEG_INF
        self._data_free = 0
        self._last_tree_feed = NEG_INF
        self._loaded_subchunks: set = set()
        self._refresh_blackout_until = NEG_INF
        self._last_refresh_done = NEG_INF
        self._refreshes_seen = 0
        self._index = 0

    # ------------------------------------------------------------------
    # plumbing

    def _flag(
        self,
        rule: str,
        cycle: int,
        detail: str,
        *,
        command: Optional[str] = None,
        index: Optional[int] = None,
    ) -> None:
        self.violations.append(
            Violation(
                rule=rule,
                cycle=cycle,
                index=self._index if index is None else index,
                command=command,
                detail=detail,
            )
        )

    def _check(
        self,
        ok: bool,
        rule: str,
        cycle: int,
        detail: str,
        *,
        command: Optional[str] = None,
    ) -> None:
        self.checks += 1
        if not ok:
            self._flag(rule, cycle, detail, command=command)

    def _target_banks(self, command) -> Sequence[int]:
        kind = command.kind
        if kind is CommandKind.G_ACT:
            size = self.config.bank_group_size
            return range(command.group * size, (command.group + 1) * size)
        if kind in (CommandKind.COMP, CommandKind.COL_READ_ALL):
            return range(self.config.banks_per_channel)
        if command.bank is not None:
            return [command.bank]
        return []

    # ------------------------------------------------------------------
    # refresh events

    def observe_refresh(self, issue: int, done: int) -> None:
        """Feed one refresh window from the scheduler's log."""
        t = self.timing
        self.refreshes_checked += 1
        self._check(
            done - issue == t.t_rfc,
            R_REFRESH,
            issue,
            f"refresh window [{issue}, {done}) spans {done - issue} cycles, "
            f"tRFC is {t.t_rfc}",
        )
        self._check(
            issue >= self._last_refresh_done,
            R_REFRESH,
            issue,
            f"refresh at {issue} overlaps the previous refresh ending at "
            f"{self._last_refresh_done}",
        )
        if self.check_refresh_interval:
            due = (self._refreshes_seen + 1) * t.t_refi
            self._check(
                issue >= due,
                R_REFRESH,
                issue,
                f"refresh #{self._refreshes_seen} issued at {issue}, before "
                f"its interval matured at {due}",
            )
            if self.max_postponed is not None:
                pending = issue // t.t_refi - (self._refreshes_seen + 1)
                self._check(
                    pending <= self.max_postponed,
                    R_REFRESH,
                    issue,
                    f"{pending} refresh intervals still pending at {issue}; "
                    f"the postponement ceiling is {self.max_postponed}",
                )
        self._refreshes_seen += 1
        self._last_refresh_done = done
        self._refresh_blackout_until = max(self._refresh_blackout_until, done)
        # Refresh closes every bank; the implicit precharges the
        # controller performs first are policy, not traced commands.
        for bank in self._banks:
            bank.open_row = None
            bank.act_time = NEG_INF
            bank.ready_for_act = done
            bank.acted_since_feed = bank.latch_dirty

    # ------------------------------------------------------------------
    # command events

    def observe(self, record: IssueRecord) -> None:
        """Feed one issued command; check every invariant that binds it."""
        command = record.command
        at = record.issue
        described = command.describe()
        t = self.timing
        self.records_checked += 1

        if self._last_issue is not None:
            self._check(
                at >= self._last_issue,
                R_ORDER,
                at,
                f"issue {at} precedes the previous issue {self._last_issue}",
                command=described,
            )
            self._check(
                at - self._last_issue >= t.t_cmd,
                R_CMD_BUS,
                at,
                f"only {at - self._last_issue} cycles since the previous "
                f"command, tCMD is {t.t_cmd}",
                command=described,
            )
        self._check(
            at >= self._refresh_blackout_until,
            R_REFRESH,
            at,
            f"command issued inside a refresh blackout ending at "
            f"{self._refresh_blackout_until}",
            command=described,
        )
        self._last_issue = at

        kind = command.kind
        if kind in (CommandKind.ACT, CommandKind.G_ACT):
            self._observe_activation(command, at, described)
        elif kind in _COLUMN_KINDS:
            self._observe_column(command, at, described)
        elif kind is CommandKind.PRE:
            self._observe_pre(command, at, described)
        elif kind is CommandKind.PRE_ALL:
            for index, bank in enumerate(self._banks):
                if bank.open_row is not None:
                    self._precharge_checks(index, bank, at, described)
                    bank.open_row = None
                    bank.ready_for_act = at + t.t_rp
        elif kind is CommandKind.GWRITE:
            self._loaded_subchunks.add(command.subchunk)
        elif kind in (CommandKind.READRES, CommandKind.READRES_BANK):
            self._observe_readres(command, at, described)
        elif kind is CommandKind.REF:
            for index, bank in enumerate(self._banks):
                self._check(
                    bank.open_row is None,
                    R_BANK_STATE,
                    at,
                    f"REF with bank {index} open (all banks must be "
                    "precharged)",
                    command=described,
                )
                bank.open_row = None
                bank.act_time = NEG_INF
                bank.ready_for_act = at + t.t_rfc
            self._refreshes_seen += 0  # explicit REF is not a barrier refresh
        # BUF_READ / MAC / MAC_ALL carry no bank timing constraints.

        if kind in _BUFFER_READ_KINDS and kind is not CommandKind.GWRITE:
            self._check(
                command.subchunk in self._loaded_subchunks,
                R_GBUF,
                at,
                f"sub-chunk {command.subchunk} read before any GWRITE "
                "loaded it",
                command=described,
            )
        if kind in _DATA_KINDS:
            self._check(
                at + t.t_aa >= self._data_free,
                R_DATA_BUS,
                at,
                f"data slot at {at + t.t_aa} overlaps the previous transfer "
                f"ending at {self._data_free}",
                command=described,
            )
            self._data_free = at + t.t_aa + t.t_ccd
        if kind in _TREE_FEED_KINDS:
            self._last_tree_feed = at
            if self.check_latch:
                self._observe_latch_feed(command, at, described)
        self._index += 1

    # ------------------------------------------------------------------
    # per-kind checks

    def _observe_activation(self, command, at: int, described: str) -> None:
        t = self.timing
        targets = list(self._target_banks(command))
        for index in targets:
            bank = self._banks[index]
            self._check(
                bank.open_row is None,
                R_BANK_STATE,
                at,
                f"ACT on bank {index} while row {bank.open_row} is open "
                "(rows are not double-buffered)",
                command=described,
            )
            self._check(
                at >= bank.ready_for_act,
                R_TRP,
                at,
                f"bank {index} not precharge-complete until "
                f"{bank.ready_for_act}",
                command=described,
            )
        self._check(
            at - self._last_act >= t.t_rrd,
            R_TRRD,
            at,
            f"only {at - self._last_act} cycles since the previous "
            f"activation, tRRD is {t.t_rrd}",
            command=described,
        )
        if self._faw_scopes == 1:
            scope = 0
        elif command.kind is CommandKind.G_ACT:
            scope = command.group
        else:
            scope = command.bank // self.config.bank_group_size
        acts = self._acts[scope]
        where = (
            f" (bank group {scope})" if self._faw_scopes > 1 else ""
        )
        for _ in targets:
            if len(acts) == self.FAW_WINDOW:
                anchor = acts[0]
                self._check(
                    at - anchor >= self.faw,
                    R_TFAW,
                    at,
                    f"fifth activation only {at - anchor} cycles after its "
                    f"fourth-previous one at {anchor}, tFAW window is "
                    f"{self.faw}{where}",
                    command=described,
                )
            acts.append(at)
        self._last_act = at
        for index in targets:
            bank = self._banks[index]
            bank.open_row = command.row
            bank.act_time = at
            bank.wr_recovery_until = NEG_INF
            if bank.latch_dirty:
                bank.acted_since_feed = True

    def _observe_column(self, command, at: int, described: str) -> None:
        t = self.timing
        for index in self._target_banks(command):
            bank = self._banks[index]
            if bank.open_row is None:
                self._check(
                    False,
                    R_BANK_STATE,
                    at,
                    f"column access on bank {index} with no open row",
                    command=described,
                )
                continue
            self._check(
                at - bank.act_time >= t.t_rcd,
                R_TRCD,
                at,
                f"bank {index} activated at {bank.act_time}, column access "
                f"only {at - bank.act_time} cycles later (tRCD {t.t_rcd})",
                command=described,
            )
            self._check(
                at - bank.last_column_issue >= t.t_ccd,
                R_TCCD,
                at,
                f"bank {index} column cadence {at - bank.last_column_issue} "
                f"below tCCD {t.t_ccd}",
                command=described,
            )
            bank.last_column_issue = at
            if command.kind is CommandKind.WR:
                bank.wr_recovery_until = at + t.t_wr
            if command.auto_precharge:
                # The deferred close is controller policy, not a traced
                # command: its time is *derived* as the earliest legal
                # cycle, so there is nothing to assert — only bank state
                # to evolve for the checks that follow.
                ap_at = max(
                    bank.act_time + t.t_ras,
                    bank.wr_recovery_until,
                    at + t.t_ccd,
                )
                bank.open_row = None
                bank.ready_for_act = ap_at + t.t_rp

    def _precharge_checks(
        self,
        index: int,
        bank: _BankView,
        at: int,
        described: str,
        *,
        implicit: bool = False,
    ) -> None:
        t = self.timing
        label = "auto-precharge" if implicit else "PRE"
        self._check(
            at - bank.act_time >= t.t_ras,
            R_TRAS,
            at,
            f"{label} on bank {index} only {at - bank.act_time} cycles "
            f"after its ACT at {bank.act_time} (tRAS {t.t_ras})",
            command=described,
        )
        self._check(
            at >= bank.wr_recovery_until,
            R_TWR,
            at,
            f"{label} on bank {index} before write recovery completes at "
            f"{bank.wr_recovery_until}",
            command=described,
        )

    def _observe_pre(self, command, at: int, described: str) -> None:
        t = self.timing
        index = command.bank
        bank = self._banks[index]
        if bank.open_row is None:
            self._check(
                False,
                R_BANK_STATE,
                at,
                f"PRE on closed bank {index}",
                command=described,
            )
            return
        self._precharge_checks(index, bank, at, described)
        self._check(
            at - bank.last_column_issue >= t.t_ccd,
            R_TCCD,
            at,
            f"PRE on bank {index} only {at - bank.last_column_issue} cycles "
            f"after its last column access (tCCD {t.t_ccd})",
            command=described,
        )
        bank.open_row = None
        bank.ready_for_act = at + t.t_rp

    def _observe_readres(self, command, at: int, described: str) -> None:
        t = self.timing
        anchor = self._last_tree_feed
        scope = "the last compute feed"
        if command.kind is CommandKind.READRES_BANK and command.bank is not None:
            bank = self._banks[command.bank]
            if bank.last_column_issue > anchor:
                anchor = bank.last_column_issue
                scope = f"bank {command.bank}'s last column access"
        if anchor != NEG_INF:
            self._check(
                at - anchor >= t.t_tree_drain,
                R_TREE,
                at,
                f"result read only {at - anchor} cycles after {scope} "
                f"(adder-tree drain is {t.t_tree_drain})",
                command=described,
            )
        if self.check_latch:
            if command.kind is CommandKind.READRES:
                for bank in self._banks:
                    bank.latch_dirty = False
                    bank.acted_since_feed = False
            elif command.bank is not None:
                self._banks[command.bank].latch_dirty = False
                self._banks[command.bank].acted_since_feed = False

    def _observe_latch_feed(self, command, at: int, described: str) -> None:
        if command.kind in (CommandKind.COMP, CommandKind.MAC_ALL):
            targets: Iterable[int] = range(self.config.banks_per_channel)
        elif command.bank is not None:
            targets = [command.bank]
        else:
            targets = []
        for index in targets:
            bank = self._banks[index]
            self._check(
                not (bank.latch_dirty and bank.acted_since_feed),
                R_LATCH,
                at,
                f"bank {index}'s result latch holds unread data from a "
                "previous tile; this compute overwrites it before a "
                "READRES drained it",
                command=described,
            )
            bank.latch_dirty = True
            bank.acted_since_feed = False

    # ------------------------------------------------------------------
    # end of run

    def finish(self, end: Optional[int] = None) -> List[Violation]:
        """Close out run-level checks; returns all violations so far.

        ``end`` is the run's end cycle; when a postponement ceiling was
        requested (``max_postponed_refreshes``), the outstanding
        (matured but unissued) refresh debt at ``end`` must not exceed
        it. Safe to call after every run of a persistent engine.
        """
        if (
            self.check_refresh_interval
            and end is not None
            and self.max_postponed is not None
        ):
            pending = end // self.timing.t_refi - self._refreshes_seen
            self._check(
                pending <= self.max_postponed,
                R_REFRESH,
                end,
                f"{pending} refresh intervals matured but unissued by the "
                f"end of the run (ceiling {self.max_postponed})",
                command=None,
            )
            # Anchor run-level violations to no particular command.
            if self.violations and self.violations[-1].cycle == end and (
                self.violations[-1].rule == R_REFRESH
                and self.violations[-1].index == self._index
            ):
                last = self.violations[-1]
                self.violations[-1] = Violation(
                    rule=last.rule,
                    cycle=last.cycle,
                    index=-1,
                    command=None,
                    detail=last.detail,
                )
        return self.violations


def merge_events(
    records: Sequence[IssueRecord],
    refresh_log: Sequence[Tuple[int, int]] = (),
) -> List[Tuple[int, int, object]]:
    """Interleave command records and refresh windows in event order.

    Refreshes happen at barriers *between* commands: a refresh whose
    issue cycle ties a command's was triggered after it (the barrier
    stalls from the controller's current time). Returns
    ``(cycle, kind, payload)`` triples where kind 0 is a command and
    kind 1 a refresh window.
    """
    events: List[Tuple[int, int, object]] = [
        (record.issue, 0, record) for record in records
    ]
    events.extend((issue, 1, (issue, done)) for issue, done in refresh_log)
    events.sort(key=lambda event: (event[0], event[1]))
    return events


def check_trace(
    records: Sequence[IssueRecord],
    config: DRAMConfig,
    timing: TimingParams,
    *,
    aggressive_tfaw: bool = False,
    check_latch: bool = False,
    refresh_log: Sequence[Tuple[int, int]] = (),
    check_refresh_interval: bool = True,
    end: Optional[int] = None,
    checker: Optional[InvariantChecker] = None,
) -> List[Violation]:
    """Validate a whole trace; returns the violations found.

    The one-shot wrapper around :class:`InvariantChecker`: merges the
    refresh log into the record stream, feeds everything, and closes
    with :meth:`InvariantChecker.finish`. Pass ``checker`` to reuse (and
    inspect) the checker instance — e.g. for its ``checks`` counter.
    """
    if checker is None:
        checker = InvariantChecker(
            config,
            timing,
            aggressive_tfaw=aggressive_tfaw,
            check_latch=check_latch,
            check_refresh_interval=check_refresh_interval,
        )
    for _, kind, payload in merge_events(records, refresh_log):
        if kind == 1:
            issue, done = payload  # type: ignore[misc]
            checker.observe_refresh(issue, done)
        else:
            checker.observe(payload)  # type: ignore[arg-type]
    return checker.finish(end)


def require_complete(trace) -> List[IssueRecord]:
    """All records of a :class:`~repro.dram.trace.CommandTrace`, or raise.

    A ring-buffer trace that already dropped records cannot be verified
    — the checker would start from unknown bank/window state and flag
    phantom violations.
    """
    if trace.truncated:
        raise VerificationError(
            f"trace ring dropped {trace.total_recorded - len(trace)} "
            "records; raise the trace capacity to verify this run"
        )
    return trace.records()
