"""A deliberately-simple issue-cycle oracle for trace cross-checking.

The production :class:`~repro.dram.controller.ChannelController` computes
issue cycles with incremental bookkeeping spread across bank state
machines, bus timers and the activation-window tracker; the burst kernel
and fast-path replay then reproduce its answers in closed form. This
oracle is the third, structurally different implementation of the same
timing rules: one flat function of explicit state per command, with no
shared code, no attribution, and no fast paths. Three independent
derivations (controller, :mod:`repro.dram.ticksim`, this oracle) that
agree cycle-for-cycle make a bookkeeping bug in any one of them visible.

Two entry points:

* :meth:`CycleOracle.check_trace` — re-derive every issue cycle of a
  recorded trace and report each :class:`Divergence` from what the
  controller actually did. Refresh windows are applied *exogenously*
  from the scheduler's log (Newton's refresh rule decides *when* to
  refresh — policy, not protocol — so the oracle replays the decision
  and re-derives only its timing consequences).
* :meth:`CycleOracle.predict` — run the oracle forward over a command
  list with no trace to compare against, returning the issue cycles it
  derives. This is what the ticksim cross-check tests consume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

from repro.dram.commands import Command, CommandKind
from repro.dram.config import DRAMConfig
from repro.dram.controller import IssueRecord
from repro.dram.timing import TimingParams
from repro.errors import ConfigurationError

NEG_INF = -(10**18)

_COLUMN_KINDS = frozenset(
    {
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.COMP,
        CommandKind.COMP_BANK,
        CommandKind.COL_READ,
        CommandKind.COL_READ_ALL,
    }
)
_DATA_KINDS = frozenset(
    {
        CommandKind.RD,
        CommandKind.WR,
        CommandKind.GWRITE,
        CommandKind.READRES,
        CommandKind.READRES_BANK,
    }
)
_TREE_FEED_KINDS = frozenset(
    {CommandKind.COMP, CommandKind.COMP_BANK, CommandKind.MAC, CommandKind.MAC_ALL}
)
_ALL_BANK_KINDS = frozenset({CommandKind.COMP, CommandKind.COL_READ_ALL})


@dataclass(frozen=True)
class Divergence:
    """One command whose recorded issue cycle the oracle derives differently."""

    index: int
    """Position in the checked record stream."""
    command: str
    """``Command.describe()`` text."""
    recorded: int
    """Issue cycle the controller recorded."""
    recomputed: int
    """Issue cycle the oracle derives from the same history."""

    def render(self) -> str:
        return (
            f"#{self.index} {self.command}: controller issued at "
            f"{self.recorded}, oracle derives {self.recomputed}"
        )


@dataclass
class _OracleBank:
    open_row: Optional[int] = None
    act_time: int = NEG_INF
    ready_for_act: int = 0
    precharge_ready: int = 0
    last_col: int = NEG_INF


class CycleOracle:
    """Recomputes issue cycles one command at a time from explicit state."""

    FAW_WINDOW = 4

    def __init__(
        self,
        config: DRAMConfig,
        timing: TimingParams,
        *,
        aggressive_tfaw: bool = False,
    ):
        self.config = config
        self.timing = timing
        self.faw = timing.faw_window(aggressive_tfaw)
        self._banks = [_OracleBank() for _ in range(config.banks_per_channel)]
        # bankgroup_ext scopes the four-activation window per bank group
        # (tRRD stays channel-global); every other family keeps one
        # channel-wide window.
        self._faw_scopes = (
            config.bank_groups
            if config.command_family == "bankgroup_ext"
            else 1
        )
        self._acts: List[Deque[int]] = [
            deque(maxlen=self.FAW_WINDOW) for _ in range(self._faw_scopes)
        ]
        self._last_act = NEG_INF
        self._cmd_free = 0
        self._data_free = 0
        self._last_tree_feed = NEG_INF

    # ------------------------------------------------------------------
    # state queries

    def _targets(self, command: Command) -> Sequence[int]:
        kind = command.kind
        if kind is CommandKind.G_ACT:
            size = self.config.bank_group_size
            return range(command.group * size, (command.group + 1) * size)
        if kind in _ALL_BANK_KINDS:
            return range(self.config.banks_per_channel)
        if command.bank is not None:
            return [command.bank]
        return []

    def _act_scope(self, command: Command) -> int:
        """The tFAW scope an activation command's targets land in."""
        if self._faw_scopes == 1:
            return 0
        if command.kind is CommandKind.G_ACT:
            return command.group
        return command.bank // self.config.bank_group_size

    def _window_earliest(self, count: int, scope: int = 0) -> int:
        """Earliest cycle ``count`` simultaneous activations satisfy
        tRRD and the four-activation window (JEDEC: any activation and
        its fourth-previous one are >= tFAW apart)."""
        bound = self._last_act + self.timing.t_rrd
        history = list(self._acts[scope])
        back = self.FAW_WINDOW - count + 1
        if len(history) >= back:
            bound = max(bound, history[-back] + self.faw)
        return bound

    def earliest_issue(self, command: Command) -> int:
        """The earliest cycle this command may legally issue."""
        t = self.timing
        kind = command.kind
        bound = self._cmd_free
        if kind in (CommandKind.ACT, CommandKind.G_ACT):
            targets = self._targets(command)
            bound = max(
                bound,
                max(self._banks[b].ready_for_act for b in targets),
                self._window_earliest(
                    len(list(targets)), self._act_scope(command)
                ),
            )
        elif kind in _COLUMN_KINDS:
            for b in self._targets(command):
                bank = self._banks[b]
                bound = max(
                    bound, bank.act_time + t.t_rcd, bank.last_col + t.t_ccd
                )
            if kind in _DATA_KINDS:
                bound = max(bound, self._data_free - t.t_aa)
        elif kind is CommandKind.GWRITE:
            bound = max(bound, self._data_free - t.t_aa)
        elif kind in (CommandKind.READRES, CommandKind.READRES_BANK):
            anchor = self._last_tree_feed
            if kind is CommandKind.READRES_BANK and command.bank is not None:
                anchor = max(anchor, self._banks[command.bank].last_col)
            bound = max(
                bound, anchor + t.t_tree_drain, self._data_free - t.t_aa
            )
        elif kind is CommandKind.PRE:
            bank = self._banks[command.bank]
            bound = max(
                bound, bank.precharge_ready, bank.last_col + t.t_ccd
            )
        elif kind is CommandKind.PRE_ALL:
            open_banks = [b for b in self._banks if b.open_row is not None]
            if open_banks:
                bound = max(
                    bound,
                    max(b.precharge_ready for b in open_banks),
                    max(b.last_col for b in open_banks) + t.t_ccd,
                )
        elif kind is CommandKind.REF:
            bound = max(
                bound, max(b.ready_for_act for b in self._banks)
            )
        elif kind in (CommandKind.BUF_READ, CommandKind.MAC, CommandKind.MAC_ALL):
            pass  # only the command bus binds
        else:  # pragma: no cover - the kind enum is closed
            raise ConfigurationError(f"oracle does not model {kind}")
        return max(bound, 0)

    def apply(self, command: Command, at: int) -> None:
        """Evolve the oracle's state as if ``command`` issued at ``at``."""
        t = self.timing
        kind = command.kind
        self._cmd_free = at + t.t_cmd
        if kind in (CommandKind.ACT, CommandKind.G_ACT):
            targets = list(self._targets(command))
            for b in targets:
                bank = self._banks[b]
                bank.open_row = command.row
                bank.act_time = at
                bank.precharge_ready = at + t.t_ras
            acts = self._acts[self._act_scope(command)]
            for _ in targets:
                acts.append(at)
            self._last_act = at
        elif kind in _COLUMN_KINDS:
            for b in self._targets(command):
                bank = self._banks[b]
                bank.last_col = at
                if kind is CommandKind.WR:
                    bank.precharge_ready = max(
                        bank.precharge_ready, at + t.t_wr
                    )
                if command.auto_precharge:
                    ap_at = max(bank.precharge_ready, at + t.t_ccd)
                    bank.open_row = None
                    bank.ready_for_act = ap_at + t.t_rp
            if kind in _TREE_FEED_KINDS:
                self._last_tree_feed = at
            if kind in _DATA_KINDS:
                self._data_free = at + t.t_aa + t.t_ccd
        elif kind in _DATA_KINDS:  # GWRITE / READRES / READRES_BANK
            self._data_free = at + t.t_aa + t.t_ccd
        elif kind in (CommandKind.MAC, CommandKind.MAC_ALL):
            self._last_tree_feed = at
        elif kind is CommandKind.PRE:
            bank = self._banks[command.bank]
            bank.open_row = None
            bank.ready_for_act = at + t.t_rp
        elif kind is CommandKind.PRE_ALL:
            for bank in self._banks:
                if bank.open_row is not None:
                    bank.open_row = None
                    bank.ready_for_act = at + t.t_rp
        elif kind is CommandKind.REF:
            done = at + t.t_rfc
            for bank in self._banks:
                bank.open_row = None
                bank.act_time = NEG_INF
                bank.ready_for_act = done
                bank.precharge_ready = done

    def apply_refresh(self, issue: int, done: int) -> None:
        """Apply one exogenous refresh window from the scheduler's log.

        The refresh closes every bank and holds them (and both buses)
        until ``done`` — the oracle's rendering of the controller's
        barrier refresh.
        """
        for bank in self._banks:
            bank.open_row = None
            bank.act_time = NEG_INF
            bank.ready_for_act = max(bank.ready_for_act, done)
            bank.precharge_ready = max(bank.precharge_ready, done)
        self._cmd_free = max(self._cmd_free, done)
        self._data_free = max(self._data_free, done)

    # ------------------------------------------------------------------
    # entry points

    def check_trace(
        self,
        records: Sequence[IssueRecord],
        refresh_log: Sequence[Tuple[int, int]] = (),
    ) -> List[Divergence]:
        """Re-derive every recorded issue cycle; report disagreements.

        State evolves from the *recorded* cycles, not the recomputed
        ones, so one divergence is reported once instead of cascading
        into a different answer for every subsequent command.
        """
        divergences: List[Divergence] = []
        refreshes = sorted(refresh_log)
        next_refresh = 0
        for index, record in enumerate(records):
            # A refresh whose issue cycle ties a command's happened after
            # it: the barrier stalls from the controller's current time,
            # which already covers every prior issue.
            while (
                next_refresh < len(refreshes)
                and refreshes[next_refresh][0] < record.issue
            ):
                self.apply_refresh(*refreshes[next_refresh])
                next_refresh += 1
            expected = self.earliest_issue(record.command)
            if expected != record.issue:
                divergences.append(
                    Divergence(
                        index=index,
                        command=record.command.describe(),
                        recorded=record.issue,
                        recomputed=expected,
                    )
                )
            self.apply(record.command, record.issue)
        return divergences

    def predict(self, commands: Sequence[Command]) -> List[int]:
        """Derive issue cycles for a refresh-free command list."""
        issues: List[int] = []
        for command in commands:
            at = self.earliest_issue(command)
            self.apply(command, at)
            issues.append(at)
        return issues


def check_trace(
    records: Sequence[IssueRecord],
    config: DRAMConfig,
    timing: TimingParams,
    *,
    aggressive_tfaw: bool = False,
    refresh_log: Sequence[Tuple[int, int]] = (),
) -> List[Divergence]:
    """One-shot wrapper: oracle-check a whole trace."""
    oracle = CycleOracle(config, timing, aggressive_tfaw=aggressive_tfaw)
    return oracle.check_trace(records, refresh_log)
