"""Benchmark workloads: the Table II layers and end-to-end model graphs."""

from repro.workloads.spec import LayerSpec, ModelSpec, BenchmarkLayer
from repro.workloads.catalog import TABLE_II_LAYERS, layer_by_name
from repro.workloads.models import (
    END_TO_END_MODELS,
    alexnet_model,
    bert_large_model,
    dlrm_model,
    gnmt_model,
    model_by_name,
)
from repro.workloads.generator import WorkloadData, generate_layer_data, generate_vector

__all__ = [
    "LayerSpec",
    "ModelSpec",
    "BenchmarkLayer",
    "TABLE_II_LAYERS",
    "layer_by_name",
    "END_TO_END_MODELS",
    "gnmt_model",
    "bert_large_model",
    "alexnet_model",
    "dlrm_model",
    "model_by_name",
    "WorkloadData",
    "generate_layer_data",
    "generate_vector",
]
