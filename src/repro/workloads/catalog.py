"""The Table II benchmark catalog.

Six matrix-vector shapes from NLP (GNMT, BERT) and recommendation (DLRM)
models plus the two AlexNet fully-connected layers, with the exact
dimensions the paper lists.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.spec import BenchmarkLayer

TABLE_II_LAYERS: List[BenchmarkLayer] = [
    BenchmarkLayer("GNMTs1", "GNMT", m=4096, n=1024),
    BenchmarkLayer("GNMTs2", "GNMT", m=4096, n=2048),
    BenchmarkLayer("BERTs1", "BERT", m=1024, n=1024),
    BenchmarkLayer("BERTs2", "BERT", m=1024, n=4096),
    BenchmarkLayer("BERTs3", "BERT", m=4096, n=1024),
    BenchmarkLayer("AlexNetL6", "AlexNet", m=21632, n=2048),
    BenchmarkLayer("AlexNetL7", "AlexNet", m=2048, n=2048),
    BenchmarkLayer("DLRMs1", "DLRM", m=512, n=256),
]
"""Table II, verbatim."""

_BY_NAME: Dict[str, BenchmarkLayer] = {layer.name: layer for layer in TABLE_II_LAYERS}

KEY_TARGET_WORKLOADS = ("GNMT", "BERT", "DLRM")
"""The paper's 'key target applications' (49x mean); AlexNet's FC layers
are a free benefit, not a target."""


def layer_by_name(name: str) -> BenchmarkLayer:
    """Look up a Table II layer.

    Raises:
        KeyError: for names not in Table II.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark layer {name!r}; Table II has {sorted(_BY_NAME)}"
        ) from None
