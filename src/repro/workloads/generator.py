"""Seeded synthetic data for the workloads.

Newton's timing depends only on operand shapes and its numerics only on
bit patterns, so seeded Gaussian weights scaled for well-conditioned
bfloat16 accumulation (1/sqrt(n) columns, Xavier-style) stand in for
trained checkpoints; functional results are verified against NumPy on
the same data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadData:
    """A generated (matrix, vector) pair plus its float64 reference."""

    matrix: np.ndarray
    vector: np.ndarray
    reference: np.ndarray
    """float64 matrix-vector product of the float32 operands."""


def generate_vector(n: int, seed: int = 0) -> np.ndarray:
    """A unit-scale random input vector."""
    if n <= 0:
        raise ConfigurationError("vector length must be positive")
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n).astype(np.float32)


def generate_layer_data(m: int, n: int, seed: int = 0) -> WorkloadData:
    """Matrix, vector, and exact reference for an ``m x n`` layer."""
    if m <= 0 or n <= 0:
        raise ConfigurationError("layer dimensions must be positive")
    rng = np.random.default_rng(seed)
    matrix = (rng.standard_normal((m, n)) / np.sqrt(n)).astype(np.float32)
    vector = rng.standard_normal(n).astype(np.float32)
    reference = matrix.astype(np.float64) @ vector.astype(np.float64)
    return WorkloadData(matrix=matrix, vector=vector, reference=reference)
