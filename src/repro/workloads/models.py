"""End-to-end model graphs for Figure 8's right-hand section.

The graphs chain the Table II layer shapes into full inference passes:

* **GNMT** — an 8-layer LSTM stack per decoded token. Each LSTM layer's
  four gates form one fused 4-hidden x input matrix; the first four
  layers consume the 2048-wide bidirectional/concatenated state (the
  GNMTs2 shape) and the rest the 1024-wide state (GNMTs1).
* **BERT-large** — 24 transformer blocks, each QKV (3 x BERTs1),
  attention output (BERTs1 with LayerNorm), FFN up (BERTs3 = 4096x1024,
  GELU) and FFN down (BERTs2 = 1024x4096, LayerNorm), plus a small
  host-side attention-glue stage (softmax / score matmuls at sequence
  length 1 are negligible but still charged).
* **AlexNet** — the compute-bound convolutional stack runs on the host
  (~1.3 GFLOPs; Newton does not target CNNs), followed by the two
  Table II FC layers.
* **DLRM** — host-side embedding gathers, then the bottom/top MLP stack
  built from the DLRMs1 shape (12 layers, the scale of DLRM's bottom +
  top MLPs). A single layer finishes inside the refresh window, but the
  stack is long enough that an end-to-end run crosses it — reproducing
  the direction of the paper's 70x (single layer) vs 47x (end-to-end)
  gap, though not its full magnitude (our tRFC/tREFI ratio bounds the
  possible drop at ~9%).

Weights are synthetic (Newton's behaviour depends only on shapes), so
"end-to-end" here means end-to-end *execution*, not trained accuracy.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.spec import LayerSpec, ModelSpec


def gnmt_model() -> ModelSpec:
    """GNMT: 8 stacked LSTM layers per decoded token.

    Each layer's fused 4-gate matrix is one Newton GEMV (the GNMTs1/s2
    shapes); the host applies the real LSTM cell update element-wise
    (``output_transform="lstm_cell"``, :mod:`repro.host.cells`). The
    first four layers consume the 2048-wide concatenation of the
    previous layer's output with the layer's own previous hidden state
    (the recurrent input), the rest the 1024-wide output alone.
    """
    layers: List[LayerSpec] = []
    for i in range(4):
        layers.append(
            LayerSpec(
                f"lstm{i}_gates", m=4096, n=2048, output_transform="lstm_cell"
            )
        )
    for i in range(4, 8):
        layers.append(
            LayerSpec(
                f"lstm{i}_gates", m=4096, n=1024, output_transform="lstm_cell"
            )
        )
    return ModelSpec(
        name="GNMT",
        layers=tuple(layers),
        description="8-layer LSTM stack, one decoded token",
    )


def bert_large_model(blocks: int = 24) -> ModelSpec:
    """BERT-large: 24 transformer blocks, single-token inference."""
    layers: List[LayerSpec] = []
    for b in range(blocks):
        for proj in ("q", "k", "v"):
            layers.append(LayerSpec(f"blk{b}_{proj}", m=1024, n=1024))
        # Attention glue on the host: scores + softmax + weighted sum.
        layers.append(
            LayerSpec(
                f"blk{b}_attn_glue",
                on_newton=False,
                host_flops=64 * 1024,
                host_bytes=4 * 1024 * 2,
            )
        )
        layers.append(
            LayerSpec(f"blk{b}_attn_out", m=1024, n=1024, batchnorm=True)
        )
        layers.append(LayerSpec(f"blk{b}_ffn_up", m=4096, n=1024, activation="gelu"))
        layers.append(
            LayerSpec(f"blk{b}_ffn_down", m=1024, n=4096, batchnorm=True)
        )
    return ModelSpec(
        name="BERT",
        layers=tuple(layers),
        description=f"BERT-large, {blocks} blocks, single token",
    )


def alexnet_model() -> ModelSpec:
    """AlexNet: host convolutions, then the Table II FC layers.

    The paper reports the FC layers are only ~15% of AlexNet's inference
    time on the GPU (Section IV), which is why its end-to-end speedup is
    just 1.2x. The conv stack's host time is sized to reproduce exactly
    that published ratio on our GPU model (GPGPU-sim's convolutions run
    at far below peak; we encode the paper's measured fraction rather
    than re-deriving their conv efficiency).
    """
    conv_flops = 240_000_000_000  # sized for the published 85%/15% split
    conv_bytes = 8_000_000  # activations + weights traffic
    return ModelSpec(
        name="AlexNet",
        layers=(
            LayerSpec(
                "conv_stack",
                on_newton=False,
                host_flops=conv_flops,
                host_bytes=conv_bytes,
            ),
            LayerSpec("fc6", m=21632, n=2048, activation="relu"),
            LayerSpec("fc7", m=2048, n=2048, activation="relu"),
        ),
        description="conv stack on host + FC6/FC7 on Newton",
    )


def dlrm_model(mlp_layers: int = 12) -> ModelSpec:
    """DLRM: host embedding gathers + the bottom/top MLP stack."""
    layers: List[LayerSpec] = [
        LayerSpec(
            "embedding_gather",
            on_newton=False,
            host_flops=26 * 64,
            host_bytes=26 * 64 * 2,  # 26 sparse features, 64-wide embeddings
        )
    ]
    for i in range(mlp_layers):
        # Every MLP layer uses the Table II DLRMs1 shape; the runtime's
        # shape glue folds the 512-wide output back to the 256-wide input.
        layers.append(LayerSpec(f"mlp{i}", m=512, n=256, activation="relu"))
    return ModelSpec(
        name="DLRM",
        layers=tuple(layers),
        description="embedding gathers on host + MLP stack on Newton",
    )


END_TO_END_MODELS: Dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (gnmt_model(), bert_large_model(), alexnet_model(), dlrm_model())
}
"""The four Figure 8 end-to-end benchmarks."""


def model_by_name(name: str) -> ModelSpec:
    """Look up an end-to-end model graph.

    Raises:
        KeyError: for names without a model graph.
    """
    try:
        return END_TO_END_MODELS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(END_TO_END_MODELS)}"
        ) from None
