"""The LLM serving scenario pack: decode, MoE routing, LoRA adapters.

Three memory-bound model graphs beyond the Figure 8 classics, exercising
the stateful layer kinds the session executor
(:mod:`repro.host.graph_runtime`) adds on top of plain FC chains:

* **decode** — a small transformer decoder run one token at a time. Each
  block projects q/k/v, scores the query against a **bank-resident
  KV-cache arena** that grows in place across ``step()`` calls
  (``kind="attention"``), then runs the output and FFN projections. The
  per-step command streams are window-sized, so decode settles into the
  steady-state replay tier like any fixed shape.
* **moe** — sparse mixture-of-experts: a router GEMV picks ``top_k`` of
  ``experts`` per token and only the selected expert matrices run
  (``kind="moe"``). All expert matrices are resident (placement follows
  the backend — on a sharded cluster every expert is row-sharded across
  the devices).
* **lora** — low-rank adaptation: every layer is a frozen base GEMV plus
  a rank-``r`` delta ``B @ (A @ x)`` (``kind="lora"``); the A→B chain and
  the base/A input reuse both fuse, so two of a layer's three GEMVs skip
  the host GWRITE round trip in fused mode.

Shapes default small (``d=256``) so functional simulation stays fast;
the shapes, not the sizes, carry the behaviour under study.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.workloads.spec import LayerSpec, ModelSpec


def decode_model(
    *, d: int = 256, window: int = 32, blocks: int = 2, ffn_mult: int = 2
) -> ModelSpec:
    """A per-token transformer decode graph with a growing KV-cache.

    ``window`` is the KV-cache arena capacity: a session allocates the
    K (``window x d``) and V (``d x window``) arenas bank-resident at
    open and appends one token per step — stepping past ``window``
    tokens raises. Per block: q/k/v projections, cached attention, the
    attention output projection (normalized), and a ``ffn_mult``-wide
    FFN pair.
    """
    if d <= 0 or window <= 0 or blocks <= 0 or ffn_mult <= 0:
        raise ConfigurationError("decode_model dimensions must be positive")
    layers: List[LayerSpec] = []
    for b in range(blocks):
        for proj in ("q", "k", "v"):
            layers.append(LayerSpec(f"blk{b}_{proj}", m=d, n=d))
        layers.append(
            LayerSpec(
                f"blk{b}_attn",
                kind="attention",
                m=window,
                n=d,
                window=window,
            )
        )
        layers.append(LayerSpec(f"blk{b}_attn_out", m=d, n=d, batchnorm=True))
        layers.append(
            LayerSpec(f"blk{b}_ffn_up", m=ffn_mult * d, n=d, activation="gelu")
        )
        layers.append(
            LayerSpec(f"blk{b}_ffn_down", m=d, n=ffn_mult * d, batchnorm=True)
        )
    return ModelSpec(
        name="decode",
        layers=tuple(layers),
        description=(
            f"{blocks}-block transformer decode, d={d}, "
            f"KV window {window} tokens"
        ),
    )


def moe_model(
    *, d: int = 256, experts: int = 4, top_k: int = 2, blocks: int = 2
) -> ModelSpec:
    """Sparse MoE blocks: a dense mixing GEMV, then routed experts."""
    if d <= 0 or blocks <= 0:
        raise ConfigurationError("moe_model dimensions must be positive")
    layers: List[LayerSpec] = []
    for b in range(blocks):
        layers.append(LayerSpec(f"blk{b}_mix", m=d, n=d, activation="relu"))
        layers.append(
            LayerSpec(
                f"blk{b}_moe",
                kind="moe",
                m=d,
                n=d,
                experts=experts,
                top_k=top_k,
            )
        )
    return ModelSpec(
        name="moe",
        layers=tuple(layers),
        description=(
            f"{blocks} MoE blocks, d={d}, top-{top_k} of {experts} experts"
        ),
    )


def lora_model(*, d: int = 256, rank: int = 8, blocks: int = 4) -> ModelSpec:
    """A stack of LoRA-adapted layers (base GEMV + low-rank delta)."""
    if d <= 0 or blocks <= 0:
        raise ConfigurationError("lora_model dimensions must be positive")
    layers = tuple(
        LayerSpec(f"lora{b}", kind="lora", m=d, n=d, rank=rank, activation="relu")
        for b in range(blocks)
    )
    return ModelSpec(
        name="lora",
        layers=layers,
        description=f"{blocks} LoRA layers, d={d}, rank {rank}",
    )


SCENARIOS = ("decode", "moe", "lora")
"""The scenario names `newton-repro --scenario` accepts."""


def scenario_model(name: str, **kwargs) -> ModelSpec:
    """Build a scenario graph by name (kwargs reach the factory).

    Raises:
        ConfigurationError: for unknown scenario names.
    """
    factories: Dict[str, object] = {
        "decode": decode_model,
        "moe": moe_model,
        "lora": lora_model,
    }
    try:
        factory = factories[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {SCENARIOS}"
        ) from None
    return factory(**kwargs)
