"""Workload specifications: single layers (Table II) and model graphs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.numerics.activation import ACTIVATIONS


@dataclass(frozen=True)
class BenchmarkLayer:
    """One Table II matrix-vector benchmark."""

    name: str
    workload: str
    m: int
    """Matrix rows (output elements)."""
    n: int
    """Matrix columns = input vector length."""

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ConfigurationError(f"{self.name}: dimensions must be positive")

    @property
    def matrix_shape(self) -> Tuple[int, int]:
        """(m, n), as Table II lists it."""
        return (self.m, self.n)

    @property
    def matrix_bytes(self) -> int:
        """Filter matrix footprint in bfloat16 bytes."""
        return self.m * self.n * 2

    @property
    def flops(self) -> int:
        """Multiply-accumulate FLOPs of one matrix-vector product."""
        return 2 * self.m * self.n


LAYER_KINDS = ("fc", "attention", "moe", "lora")
"""Graph-layer kinds the session executor understands: plain FC GEMV,
attention against a bank-resident KV-cache arena, sparse MoE expert
dispatch, and LoRA low-rank adaptation (base + B@(A@x) delta)."""


@dataclass(frozen=True)
class LayerSpec:
    """One layer of an end-to-end model graph."""

    name: str
    m: int = 0
    n: int = 0
    activation: str = "identity"
    batchnorm: bool = False
    """Whether a vector-wide normalization follows (its first-tile latency
    is exposed; Section III-C)."""
    on_newton: bool = True
    """FC layers run on Newton; convolutions / embeddings / attention glue
    run on the host and are timed by the host compute model."""
    host_flops: int = 0
    """FLOPs of host-side work for layers with ``on_newton=False``."""
    host_bytes: int = 0
    """Memory traffic of that host-side work."""

    output_transform: str = "none"
    """Host-side structural transform after the activation: "none", or
    "lstm_cell" (split fused gates [i|f|g|o] and run the LSTM update;
    requires ``m`` to be four times the hidden width)."""

    kind: str = "fc"
    """Graph-layer kind (see :data:`LAYER_KINDS`). Non-``fc`` kinds are
    executed by the session graph executor
    (:mod:`repro.host.graph_runtime`); the stateless per-layer runtime
    only understands ``fc``."""

    window: int = 0
    """``attention`` layers: KV-cache arena capacity in tokens. The
    arena is allocated bank-resident at this capacity when a session
    opens and grows in place across decode steps."""

    experts: int = 0
    """``moe`` layers: number of expert FC matrices (each ``m x n``)."""

    top_k: int = 0
    """``moe`` layers: experts selected per token by the router."""

    rank: int = 0
    """``lora`` layers: low-rank adapter width (A is ``rank x n``,
    B is ``m x rank``)."""

    def __post_init__(self) -> None:
        if self.kind not in LAYER_KINDS:
            raise ConfigurationError(
                f"{self.name}: unknown layer kind {self.kind!r} "
                f"(expected one of {LAYER_KINDS})"
            )
        if self.on_newton:
            if self.m <= 0 or self.n <= 0:
                raise ConfigurationError(
                    f"{self.name}: Newton layers need positive dimensions"
                )
            if self.host_flops > 0 or self.host_bytes > 0:
                raise ConfigurationError(
                    f"{self.name}: host_flops/host_bytes describe host-side "
                    "layers; a Newton layer cannot carry host work "
                    "(split it into an on_newton=False layer)"
                )
        else:
            if self.host_flops <= 0 and self.host_bytes <= 0:
                raise ConfigurationError(
                    f"{self.name}: host layers need host_flops or host_bytes"
                )
            if self.kind != "fc":
                raise ConfigurationError(
                    f"{self.name}: {self.kind!r} layers execute on Newton "
                    "(on_newton=False is only for plain host stages)"
                )
        if self.activation not in ACTIVATIONS:
            raise ConfigurationError(
                f"{self.name}: unknown activation {self.activation!r}"
            )
        if self.output_transform not in ("none", "lstm_cell"):
            raise ConfigurationError(
                f"{self.name}: unknown output_transform {self.output_transform!r}"
            )
        if self.output_transform == "lstm_cell" and self.m % 4 != 0:
            raise ConfigurationError(
                f"{self.name}: lstm_cell needs m divisible by 4 (fused gates)"
            )
        if self.kind == "attention":
            if self.window <= 0:
                raise ConfigurationError(
                    f"{self.name}: attention layers need a positive window "
                    "(KV-cache capacity)"
                )
            if self.m != self.window:
                raise ConfigurationError(
                    f"{self.name}: attention layers score against the cache, "
                    f"so m must equal window (got m={self.m}, "
                    f"window={self.window})"
                )
        elif self.window != 0:
            raise ConfigurationError(
                f"{self.name}: window only applies to attention layers"
            )
        if self.kind == "moe":
            if self.experts < 2:
                raise ConfigurationError(
                    f"{self.name}: moe layers need at least 2 experts"
                )
            if not 0 < self.top_k <= self.experts:
                raise ConfigurationError(
                    f"{self.name}: top_k must be in [1, experts] "
                    f"(got top_k={self.top_k}, experts={self.experts})"
                )
        elif self.experts != 0 or self.top_k != 0:
            raise ConfigurationError(
                f"{self.name}: experts/top_k only apply to moe layers"
            )
        if self.kind == "lora":
            if self.rank <= 0:
                raise ConfigurationError(
                    f"{self.name}: lora layers need a positive rank"
                )
            if self.rank >= min(self.m, self.n):
                raise ConfigurationError(
                    f"{self.name}: lora rank {self.rank} is not low-rank for "
                    f"a {self.m}x{self.n} base"
                )
        elif self.rank != 0:
            raise ConfigurationError(
                f"{self.name}: rank only applies to lora layers"
            )


@dataclass(frozen=True)
class ModelSpec:
    """An end-to-end model: an ordered layer graph."""

    name: str
    layers: Tuple[LayerSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(f"{self.name}: a model needs layers")

    @property
    def newton_layers(self) -> List[LayerSpec]:
        """The FC layers Newton accelerates."""
        return [layer for layer in self.layers if layer.on_newton]

    @property
    def requires_session(self) -> bool:
        """Whether the graph carries stateful (non-``fc``) layers that
        only the session executor (``Backend.open_session``) can run."""
        return any(layer.kind != "fc" for layer in self.layers)

    @property
    def total_fc_bytes(self) -> int:
        """Filter footprint of all Newton layers."""
        return sum(2 * layer.m * layer.n for layer in self.newton_layers)
