"""Workload specifications: single layers (Table II) and model graphs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.numerics.activation import ACTIVATIONS


@dataclass(frozen=True)
class BenchmarkLayer:
    """One Table II matrix-vector benchmark."""

    name: str
    workload: str
    m: int
    """Matrix rows (output elements)."""
    n: int
    """Matrix columns = input vector length."""

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0:
            raise ConfigurationError(f"{self.name}: dimensions must be positive")

    @property
    def matrix_shape(self) -> Tuple[int, int]:
        """(m, n), as Table II lists it."""
        return (self.m, self.n)

    @property
    def matrix_bytes(self) -> int:
        """Filter matrix footprint in bfloat16 bytes."""
        return self.m * self.n * 2

    @property
    def flops(self) -> int:
        """Multiply-accumulate FLOPs of one matrix-vector product."""
        return 2 * self.m * self.n


@dataclass(frozen=True)
class LayerSpec:
    """One layer of an end-to-end model graph."""

    name: str
    m: int = 0
    n: int = 0
    activation: str = "identity"
    batchnorm: bool = False
    """Whether a vector-wide normalization follows (its first-tile latency
    is exposed; Section III-C)."""
    on_newton: bool = True
    """FC layers run on Newton; convolutions / embeddings / attention glue
    run on the host and are timed by the host compute model."""
    host_flops: int = 0
    """FLOPs of host-side work for layers with ``on_newton=False``."""
    host_bytes: int = 0
    """Memory traffic of that host-side work."""

    output_transform: str = "none"
    """Host-side structural transform after the activation: "none", or
    "lstm_cell" (split fused gates [i|f|g|o] and run the LSTM update;
    requires ``m`` to be four times the hidden width)."""

    def __post_init__(self) -> None:
        if self.on_newton:
            if self.m <= 0 or self.n <= 0:
                raise ConfigurationError(
                    f"{self.name}: Newton layers need positive dimensions"
                )
        elif self.host_flops <= 0 and self.host_bytes <= 0:
            raise ConfigurationError(
                f"{self.name}: host layers need host_flops or host_bytes"
            )
        if self.activation not in ACTIVATIONS:
            raise ConfigurationError(
                f"{self.name}: unknown activation {self.activation!r}"
            )
        if self.output_transform not in ("none", "lstm_cell"):
            raise ConfigurationError(
                f"{self.name}: unknown output_transform {self.output_transform!r}"
            )
        if self.output_transform == "lstm_cell" and self.m % 4 != 0:
            raise ConfigurationError(
                f"{self.name}: lstm_cell needs m divisible by 4 (fused gates)"
            )


@dataclass(frozen=True)
class ModelSpec:
    """An end-to-end model: an ordered layer graph."""

    name: str
    layers: Tuple[LayerSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.layers:
            raise ConfigurationError(f"{self.name}: a model needs layers")

    @property
    def newton_layers(self) -> List[LayerSpec]:
        """The FC layers Newton accelerates."""
        return [layer for layer in self.layers if layer.on_newton]

    @property
    def total_fc_bytes(self) -> int:
        """Filter footprint of all Newton layers."""
        return sum(2 * layer.m * layer.n for layer in self.newton_layers)
