"""The ``repro.backends`` execution surface and registry."""

import numpy as np
import pytest

from repro.backends import (
    AnalyticalBackend,
    Backend,
    GpuBackend,
    IdealBackend,
    NewtonBackend,
    available_backends,
    make_backend,
    register_backend,
)
from repro.baselines.analytical import AnalyticalModel
from repro.baselines.gpu import titan_v_like
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.core.device import NewtonDevice
from repro.core.optimizations import FULL, NON_OPT
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing
from repro.errors import ConfigurationError, LayoutError, ProtocolError
from repro.workloads.generator import generate_layer_data, generate_vector
from repro.workloads.spec import LayerSpec, ModelSpec


def _config(channels=4, banks=8):
    return hbm2e_like_config(num_channels=channels, banks_per_channel=banks)


class TestRegistry:
    def test_built_ins_registered(self):
        assert available_backends() == (
            "analytical", "gpu", "hetero", "ideal", "newton"
        )

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ConfigurationError, match="analytical"):
            make_backend("tpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("newton", NewtonBackend)

    def test_factory_builds_each_kind(self):
        for name, cls in [
            ("newton", NewtonBackend),
            ("analytical", AnalyticalBackend),
            ("ideal", IdealBackend),
            ("gpu", GpuBackend),
        ]:
            backend = make_backend(
                name, config=_config(), timing=hbm2e_like_timing(),
                functional=False,
            )
            assert isinstance(backend, cls)
            assert isinstance(backend, Backend)
            assert backend.name == name


class TestNewtonBackend:
    """The adapter is a transparent wrapper over NewtonDevice."""

    def test_gemv_matches_direct_device(self):
        data = generate_layer_data(256, 128, seed=1)
        vector = generate_vector(128, seed=2)
        device = NewtonDevice(
            _config(), hbm2e_like_timing(), FULL, functional=True
        )
        direct = device.gemv(device.load_matrix(data.matrix), vector)

        backend = NewtonBackend(_config(), hbm2e_like_timing(), functional=True)
        run = backend.gemv(backend.load_matrix(data.matrix), vector)
        assert run.cycles == direct.cycles
        assert np.array_equal(run.output, direct.output)

    def test_wraps_an_existing_device(self):
        device = NewtonDevice(
            _config(), hbm2e_like_timing(), FULL, functional=False
        )
        backend = NewtonBackend(device=device)
        assert backend.device is device
        assert backend.config is device.config
        assert backend.functional is False

    def test_opt_is_forwarded(self):
        naive = NewtonBackend(
            _config(), hbm2e_like_timing(), opt=NON_OPT, functional=False
        )
        full = NewtonBackend(
            _config(), hbm2e_like_timing(), opt=FULL, functional=False
        )
        n_cycles = naive.service_cycles(naive.load_matrix(m=512, n=512))
        f_cycles = full.service_cycles(full.load_matrix(m=512, n=512))
        assert n_cycles > f_cycles

    def test_collect_metrics_is_device_shaped(self):
        backend = NewtonBackend(_config(), hbm2e_like_timing(), functional=False)
        backend.gemv(backend.load_matrix(m=128, n=128))
        record = backend.collect_metrics()
        assert record["kind"] == "device"
        assert "channels" in record


class TestModelBackends:
    """Closed-form backends agree with the models they wrap."""

    def test_analytical_predicts_model_cycles(self):
        config, timing = _config(), hbm2e_like_timing()
        backend = AnalyticalBackend(config, timing, functional=False)
        model = AnalyticalModel(config, timing, aggressive_tfaw=True)
        handle = backend.load_matrix(m=1024, n=512)
        assert backend.service_cycles(handle) == pytest.approx(
            model.predicted_layer_cycles(1024, 512, channels=config.num_channels)
        )

    def test_ideal_predicts_model_cycles(self):
        config, timing = _config(), hbm2e_like_timing()
        backend = IdealBackend(config, timing, functional=False)
        model = IdealNonPim(config, timing)
        handle = backend.load_matrix(m=1024, n=512)
        assert backend.service_cycles(handle) == pytest.approx(
            model.gemv_cycles(1024, 512)
        )

    def test_gpu_predicts_model_cycles(self):
        config, timing = _config(), hbm2e_like_timing()
        backend = GpuBackend(config, timing, functional=False)
        model = titan_v_like(config, timing)
        handle = backend.load_matrix(m=1024, n=512)
        assert backend.service_cycles(handle) == pytest.approx(
            model.gemv_cycles(1024, 512)
        )

    @pytest.mark.parametrize("name", ["analytical", "ideal", "gpu"])
    def test_functional_output_is_the_product(self, name):
        backend = make_backend(name, functional=True)
        data = generate_layer_data(64, 32, seed=3)
        vector = generate_vector(32, seed=4)
        run = backend.gemv(backend.load_matrix(data.matrix), vector)
        assert run.output.dtype == np.float32
        assert np.allclose(run.output, data.matrix @ vector, rtol=1e-5)

    def test_functional_needs_the_matrix(self):
        backend = make_backend("analytical", functional=True)
        with pytest.raises(ProtocolError):
            backend.load_matrix(m=16, n=16)

    def test_non_2d_matrix_rejected(self):
        backend = make_backend("ideal")
        with pytest.raises(LayoutError):
            backend.load_matrix(np.ones(8, dtype=np.float32))

    def test_metrics_count_gemvs(self):
        backend = make_backend("gpu")
        handle = backend.load_matrix(m=64, n=64)
        backend.gemv(handle)
        backend.gemv(handle)
        record = backend.collect_metrics()
        assert record["kind"] == "model"
        assert record["backend"] == "gpu"
        assert record["gemvs"] == 2
        assert record["total_cycles"] > 0

    def test_newton_only_kwargs_ignored(self):
        """The factory can pass Newton knobs to any backend."""
        backend = make_backend(
            "analytical", opt=FULL, refresh_enabled=True, fast=False
        )
        assert backend.name == "analytical"


class TestBatchValidation:
    """Every adapter rejects malformed batches identically (satellite 2)."""

    @pytest.mark.parametrize("name", ["newton", "analytical", "ideal", "gpu", "hetero"])
    def test_width_mismatch_rejected(self, name):
        backend = make_backend(
            name, config=_config(), timing=hbm2e_like_timing(), functional=False
        )
        handle = backend.load_matrix(m=64, n=32)
        with pytest.raises(LayoutError):
            backend.gemv_batch(handle, np.ones((2, 31), dtype=np.float32))

    @pytest.mark.parametrize("name", ["newton", "analytical", "ideal", "gpu", "hetero"])
    def test_3d_batch_rejected(self, name):
        backend = make_backend(
            name, config=_config(), timing=hbm2e_like_timing(), functional=False
        )
        handle = backend.load_matrix(m=64, n=32)
        with pytest.raises(LayoutError):
            backend.gemv_batch(handle, np.ones((2, 2, 32), dtype=np.float32))

    def test_1d_vector_promoted(self):
        backend = make_backend("ideal", functional=True)
        data = generate_layer_data(16, 8, seed=5)
        handle = backend.load_matrix(data.matrix)
        runs = backend.gemv_batch(handle, np.ones(8, dtype=np.float32))
        assert len(runs) == 1

    def test_timing_only_batch_size(self):
        backend = make_backend(
            "newton", config=_config(), timing=hbm2e_like_timing(),
            functional=False,
        )
        handle = backend.load_matrix(m=64, n=32)
        with pytest.raises(ProtocolError):
            backend.gemv_batch(handle, batch=0)


class TestLoadModel:
    def test_fc_layers_become_resident(self):
        spec = ModelSpec(
            name="two-fc",
            layers=(
                LayerSpec("fc1", m=64, n=32, activation="relu"),
                LayerSpec("host", on_newton=False, host_flops=100),
                LayerSpec("fc2", m=32, n=64, activation="identity"),
            ),
        )
        backend = make_backend(
            "newton", config=_config(), timing=hbm2e_like_timing(),
            functional=False,
        )
        residency = backend.load_model(spec)
        assert set(residency) == {"fc1", "fc2"}
