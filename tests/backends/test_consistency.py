"""Cross-backend cost-surface consistency (ISSUE 9 satellite).

Every registered backend, whatever it models, must present a sane cost
surface to the layers above it: ``service_cycles`` monotonic in each of
(m, n) — more rows or longer rows never get *cheaper* — and a batched
dispatch never cheaper than a single GEMV. The heterogeneous placement
layer leans on both (a cost model that dips with size would make the
placement DP prefer padding), so they are pinned for every backend the
registry can hand out.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import available_backends, make_backend
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing

SHAPE_GRID = (32, 64, 128, 256)
"""Each dimension sweeps this grid while the other holds."""

BASE_M, BASE_N = 64, 64


def _backend(name: str):
    # Refresh is disabled so the cycle-accurate backends are phase-free:
    # monotonicity must hold exactly, not just on average.
    return make_backend(
        name,
        config=hbm2e_like_config(num_channels=2, banks_per_channel=8),
        timing=hbm2e_like_timing(),
        functional=False,
        refresh_enabled=False,
    )


@pytest.mark.parametrize("name", sorted(available_backends()))
class TestServiceMonotonicity:
    def test_monotonic_in_rows(self, name):
        cycles = []
        for m in SHAPE_GRID:
            backend = _backend(name)
            handle = backend.load_matrix(m=m, n=BASE_N)
            cycles.append(backend.service_cycles(handle))
            backend.close()
        assert cycles == sorted(cycles), (
            f"{name}: service_cycles not monotonic in m: {cycles}"
        )

    def test_monotonic_in_cols(self, name):
        cycles = []
        for n in SHAPE_GRID:
            backend = _backend(name)
            handle = backend.load_matrix(m=BASE_M, n=n)
            cycles.append(backend.service_cycles(handle))
            backend.close()
        assert cycles == sorted(cycles), (
            f"{name}: service_cycles not monotonic in n: {cycles}"
        )


@pytest.mark.parametrize("name", sorted(available_backends()))
class TestBatchNotCheaperThanSingle:
    @pytest.mark.parametrize("batch", [1, 2, 8])
    def test_batch_total_at_least_single(self, name, batch):
        """Total batch-dispatch cycles >= one GEMV's cycles.

        Backends with batch reuse (the GPU roofline) may beat k
        independent runs, but a k-way dispatch can never undercut a
        single request — the queueing layer sums per-run cycles for
        replica occupancy and relies on this floor.
        """
        backend = _backend(name)
        handle = backend.load_matrix(m=BASE_M, n=BASE_N)
        single = backend.gemv(handle).cycles
        fresh = _backend(name)
        fresh_handle = fresh.load_matrix(m=BASE_M, n=BASE_N)
        runs = fresh.gemv_batch(fresh_handle, batch=batch)
        total = sum(run.cycles for run in runs)
        assert len(runs) == batch
        assert total >= single - 1e-9, (
            f"{name}: batch of {batch} totals {total} cycles, cheaper "
            f"than one GEMV at {single}"
        )
        backend.close()
        fresh.close()

    def test_functional_batch_matches_loop(self, name):
        """Functional outputs from a batched dispatch equal per-vector
        runs — batching changes timing, never data."""
        config = hbm2e_like_config(num_channels=2, banks_per_channel=8)
        backend = make_backend(
            name, config=config, timing=hbm2e_like_timing(), functional=True
        )
        rng = np.random.default_rng(11)
        matrix = rng.standard_normal((16, 32)).astype(np.float32)
        vectors = rng.standard_normal((3, 32)).astype(np.float32)
        handle = backend.load_matrix(matrix)
        batched = [run.output for run in backend.gemv_batch(handle, vectors)]
        fresh = make_backend(
            name, config=config, timing=hbm2e_like_timing(), functional=True
        )
        fresh_handle = fresh.load_matrix(matrix)
        looped = [
            fresh.gemv(fresh_handle, vectors[i]).output for i in range(3)
        ]
        for a, b in zip(batched, looped):
            assert np.array_equal(a, b)
        backend.close()
        fresh.close()
