"""Error-path contracts: ProtocolError and LayoutError surfaces.

Every batch entry point must reject malformed shapes with LayoutError
(not a numpy broadcast error three layers down), and the functional
datapath must refuse protocol-order violations — reading the global
buffer before a GWRITE loaded it, touching latches that do not exist —
with ProtocolError.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import available_backends, make_backend
from repro.cluster import ShardedCluster
from repro.core.device import validate_batch_vectors
from repro.core.global_buffer import GlobalBuffer
from repro.core.mac_unit import BankMacUnit
from repro.dram.config import DRAMConfig
from repro.dram.timing import TimingParams
from repro.errors import LayoutError, ProtocolError

SMALL = DRAMConfig(num_channels=1, banks_per_channel=8, rows_per_bank=256)
M, N = 4, 32


class TestCompBeforeGwrite:
    """COMP semantics on a functional device require a loaded buffer."""

    def test_read_subchunk_before_gwrite(self):
        buffer = GlobalBuffer(SMALL)
        with pytest.raises(ProtocolError, match="GWRITE"):
            buffer.read_subchunk(0)

    def test_tile_compute_with_missing_subchunk(self):
        buffer = GlobalBuffer(SMALL)
        buffer.load_subchunk(1, np.ones(SMALL.elems_per_col))
        with pytest.raises(ProtocolError, match="sub-chunk 0"):
            buffer.chunk(2)

    def test_loaded_subchunk_reads_back(self):
        buffer = GlobalBuffer(SMALL)
        buffer.load_subchunk(0, np.ones(SMALL.elems_per_col))
        assert buffer.read_subchunk(0).shape == (SMALL.elems_per_col,)

    def test_subchunk_index_out_of_range(self):
        buffer = GlobalBuffer(SMALL)
        with pytest.raises(ProtocolError):
            buffer.read_subchunk(buffer.subchunks)
        with pytest.raises(ProtocolError):
            buffer.load_subchunk(-1, np.ones(SMALL.elems_per_col))

    def test_gwrite_of_wrong_width(self):
        buffer = GlobalBuffer(SMALL)
        with pytest.raises(ProtocolError, match="sub-chunk"):
            buffer.load_subchunk(0, np.ones(SMALL.elems_per_col + 1))

    def test_mac_latch_out_of_range(self):
        mac = BankMacUnit(SMALL, num_latches=1)
        lanes = np.ones(SMALL.mults_per_bank, dtype=np.float32)
        with pytest.raises(ProtocolError, match="latch"):
            mac.compute(lanes, lanes, latch=1)
        with pytest.raises(ProtocolError, match="latch"):
            mac.read_and_clear(-1)

    def test_mac_operand_width(self):
        mac = BankMacUnit(SMALL)
        with pytest.raises(ProtocolError, match="sub-chunk"):
            mac.compute(np.ones(3), np.ones(3))


class TestBatchShapeValidation:
    def test_validator_promotes_1d(self):
        out = validate_batch_vectors(np.zeros(N, dtype=np.float32), N)
        assert out.shape == (1, N)

    @pytest.mark.parametrize(
        "shape", [(2, 2, N), (N,) * 3, (2, N + 1), (N + 1,)]
    )
    def test_validator_rejects(self, shape):
        with pytest.raises(LayoutError):
            validate_batch_vectors(np.zeros(shape, dtype=np.float32), N)

    @pytest.fixture(params=sorted(available_backends()))
    def backend(self, request):
        return make_backend(
            request.param, SMALL, TimingParams(), functional=True
        )

    def test_every_backend_rejects_malformed_batches(self, backend, rng):
        matrix = rng.standard_normal((M, N)).astype(np.float32)
        handle = backend.load_matrix(matrix)
        with pytest.raises(LayoutError):
            backend.gemv_batch(handle, np.zeros((2, 2, N), dtype=np.float32))
        with pytest.raises(LayoutError):
            backend.gemv_batch(handle, np.zeros((2, N + 1), dtype=np.float32))
        with pytest.raises(LayoutError):
            backend.gemv_batch(handle, np.zeros(N + 1, dtype=np.float32))
        # The legal twin still runs.
        runs = backend.gemv_batch(
            handle, np.zeros((2, N), dtype=np.float32)
        )
        assert len(runs) == 2

    def test_cluster_rejects_malformed_batches(self, rng):
        cluster = ShardedCluster(
            [
                make_backend("newton", SMALL, TimingParams(), functional=True)
                for _ in range(2)
            ]
        )
        matrix = rng.standard_normal((M, N)).astype(np.float32)
        handle = cluster.load_matrix(matrix)
        with pytest.raises(LayoutError):
            cluster.gemv_batch(handle, np.zeros((2, 2, N), dtype=np.float32))
        with pytest.raises(LayoutError):
            cluster.gemv_batch(handle, np.zeros((3, N - 1), dtype=np.float32))
        assert len(cluster.gemv_batch(handle, np.zeros((2, N)))) == 2
