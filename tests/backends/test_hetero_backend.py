"""The hetero backend: placement routing, bit-identity, telemetry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import make_backend
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing
from repro.errors import ConfigurationError
from repro.telemetry import SCHEMA
from repro.workloads.scenarios import scenario_model


def _config():
    return hbm2e_like_config(num_channels=2, banks_per_channel=8)


def _hetero(**kwargs):
    kwargs.setdefault("config", _config())
    kwargs.setdefault("timing", hbm2e_like_timing())
    return make_backend("hetero", **kwargs)


def _newton(**kwargs):
    kwargs.setdefault("config", _config())
    kwargs.setdefault("timing", hbm2e_like_timing())
    return make_backend("newton", **kwargs)


class TestConstruction:
    def test_rejects_unknown_placement(self):
        with pytest.raises(ConfigurationError):
            _hetero(placement="fastest")

    def test_gpu_overrides_reach_the_roofline(self):
        stock = _hetero(functional=False)
        tuned = _hetero(
            functional=False,
            gpu_overrides={"kernel_overhead_cycles": 12345.0},
        )
        assert (
            tuned.cost.gpu_model.kernel_overhead_cycles
            == stock.cost.gpu_model.kernel_overhead_cycles + 12345.0
        )

    def test_ignores_registry_knobs_it_does_not_own(self):
        # The registry passes one knob set to any backend name.
        backend = _hetero(functional=False, seed=3, mode="shard")
        assert backend.name == "hetero"
        backend.close()


class TestPlacementRouting:
    def test_batch_one_goes_to_newton(self):
        backend = _hetero(functional=False)
        handle = backend.load_matrix(m=512, n=512)
        backend.gemv(handle)
        assert backend.collect_metrics()["dispatches"]["newton"] == 1
        backend.close()

    def test_large_batch_goes_to_gpu(self):
        backend = _hetero(functional=False)
        handle = backend.load_matrix(m=512, n=512)
        runs = backend.gemv_batch(handle, batch=128)
        assert len(runs) == 128
        metrics = backend.collect_metrics()
        assert metrics["dispatches"]["gpu"] == 1
        # The whole dispatch is one kernel: total equals the roofline.
        total = sum(run.cycles for run in runs)
        assert total == pytest.approx(
            backend.cost.gpu_model.gemv_cycles(512, 512, batch=128)
        )
        backend.close()

    def test_forced_policies(self):
        for policy, side in [("all-newton", "newton"), ("all-gpu", "gpu")]:
            backend = _hetero(functional=False, placement=policy)
            handle = backend.load_matrix(m=512, n=512)
            backend.gemv(handle)
            backend.gemv_batch(handle, batch=128)
            counts = backend.collect_metrics()["dispatches"]
            assert counts[side] == 2
            assert counts["newton" if side == "gpu" else "gpu"] == 0
            backend.close()

    def test_crossing_charges_exposed_transfer(self):
        backend = _hetero(functional=False)
        handle = backend.load_matrix(m=512, n=512)
        solo = backend.gemv(handle).cycles  # newton, no boundary yet
        backend.gemv_batch(handle, batch=128)  # gpu: one crossing
        crossed = backend.gemv(handle).cycles  # back to newton: another
        metrics = backend.collect_metrics()
        assert metrics["crossings"] == 2
        assert metrics["exposed_transfer_cycles"] > 0
        assert crossed > solo - 1  # boundary cost rides on the run
        backend.close()

    def test_service_cycles_deterministic_and_placed(self):
        backend = _hetero(functional=False)
        small = backend.load_matrix(m=64, n=64)
        assert backend.service_cycles(small) == backend.service_cycles(small)
        # The serving layer sees the cheaper side's service time.
        assert backend.service_cycles(small) == min(
            backend.cost.measure("newton", 64, 64),
            backend.cost.predict("gpu", 64, 64),
        )
        backend.close()


class TestBitIdentity:
    """The hybrid's functional contract: placement never changes bits."""

    def test_gemv_chain_matches_all_newton(self):
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((48, 64)).astype(np.float32)
        vectors = rng.standard_normal((130, 64)).astype(np.float32)
        ours = _hetero(functional=True)
        reference = _newton(functional=True)
        h1, h2 = ours.load_matrix(matrix), reference.load_matrix(matrix)
        # Mix regimes: singles, then a large batch, then singles again.
        a = [ours.gemv(h1, vectors[0]).output]
        a += [r.output for r in ours.gemv_batch(h1, vectors[1:129])]
        a.append(ours.gemv(h1, vectors[129]).output)
        b = [reference.gemv(h2, vectors[0]).output]
        b += [r.output for r in reference.gemv_batch(h2, vectors[1:129])]
        b.append(reference.gemv(h2, vectors[129]).output)
        assert len(a) == len(b) == 130
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
        ours.close()
        reference.close()

    def test_session_outputs_match_all_newton(self):
        """A fused graph session on hetero is bit-identical to newton
        (the CI hetero-smoke contract)."""
        spec = scenario_model("decode", window=3)
        outs = {}
        for name in ("hetero", "newton"):
            engine = make_backend(name, functional=True)
            session = engine.open_session(spec, fused=True, seed=0)
            try:
                outs[name] = [r.output for r in session.run_steps(3)]
            finally:
                session.close()
                engine.close()
        for ours, reference in zip(outs["hetero"], outs["newton"]):
            assert np.array_equal(ours, reference)


class TestFusionAcrossBoundaries:
    def test_fused_honored_on_newton_side(self):
        backend = _hetero(functional=False, refresh_enabled=False)
        handle = backend.load_matrix(m=256, n=256)
        backend.gemv(handle)  # establish newton residency
        unfused = backend.gemv(handle).cycles
        fused = backend.gemv(handle, fused_input=True).cycles
        assert fused < unfused
        backend.close()

    def test_crossing_forces_host_round_trip(self):
        def third_run_cycles(fused_input: bool) -> float:
            backend = _hetero(functional=False, refresh_enabled=False)
            handle = backend.load_matrix(m=512, n=512)
            backend.gemv(handle)
            backend.gemv_batch(handle, batch=128)  # hop to the GPU side
            cycles = backend.gemv(handle, fused_input=fused_input).cycles
            exposed = backend.collect_metrics()["exposed_transfer_cycles"]
            backend.close()
            return cycles, exposed

        fused, fused_exposed = third_run_cycles(True)
        unfused, _ = third_run_cycles(False)
        # fused_input is dropped at the boundary: the crossing run costs
        # exactly what an unfused one does, handoff included.
        assert fused == unfused
        assert fused_exposed > 0


class TestTelemetry:
    def test_metrics_schema_and_decisions(self):
        backend = _hetero(functional=False)
        backend.calibrate(
            [type("L", (), {"name": "L", "m": 64, "n": 64})()]
        )
        handle = backend.load_matrix(m=64, n=64)
        backend.gemv(handle)
        backend.gemv_batch(handle, batch=4)
        record = backend.collect_metrics()
        assert record["schema"] == SCHEMA
        assert record["kind"] == "hetero"
        assert record["placement"] == "auto"
        assert sum(record["dispatches"].values()) == 2
        assert len(record["decisions"]) == 2
        decision = record["decisions"][0]
        for key in ("m", "n", "batch", "backend", "predicted_cycles",
                    "actual_cycles", "error_pct"):
            assert key in decision
        assert record["calibration"]["within_budget"] in (True, False)
        assert record["newton"]["schema"] == SCHEMA
        backend.close()

    def test_decision_records_bounded(self):
        from repro.backends.hetero import MAX_DECISION_RECORDS

        backend = _hetero(functional=False)
        handle = backend.load_matrix(m=16, n=32)
        for _ in range(MAX_DECISION_RECORDS + 5):
            backend.gemv(handle)
        record = backend.collect_metrics()
        assert len(record["decisions"]) == MAX_DECISION_RECORDS
        assert sum(record["dispatches"].values()) == MAX_DECISION_RECORDS + 5
        backend.close()
