"""The Section III-F analytical model."""

import pytest

from repro.baselines.analytical import AnalyticalModel
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing
from repro.errors import ConfigurationError

CFG = hbm2e_like_config()
TIMING = hbm2e_like_timing()


@pytest.fixture
def model():
    return AnalyticalModel(CFG, TIMING, aggressive_tfaw=True)


class TestPerRowModel:
    def test_ideal_row_time(self, model):
        assert model.t_ideal_non_pim_row() == 32 * TIMING.t_ccd

    def test_newton_row_formula(self, model):
        """t = max(tRRD, tFAW)(n/4 - 1) + tACT + col*tCCD."""
        expected = (
            max(TIMING.t_rrd, TIMING.t_faw_aim) * 3
            + TIMING.t_rcd
            + TIMING.t_rp
            + 32 * TIMING.t_ccd
        )
        assert model.t_newton_row() == expected

    def test_speedup_is_n_over_o_plus_1(self, model):
        o = model.overhead_ratio()
        assert model.predicted_speedup() == pytest.approx(16 / (o + 1))

    def test_paper_operating_point(self, model):
        """The preset must land at the paper's ~10x for 16 banks."""
        assert model.predicted_speedup() == pytest.approx(10.0, rel=0.05)

    def test_bank_sweep_is_sublinear(self, model):
        """Figure 10's Amdahl effect: more banks, diminishing returns."""
        s8 = model.predicted_speedup(8)
        s16 = model.predicted_speedup(16)
        s32 = model.predicted_speedup(32)
        assert s8 < s16 < s32
        assert s16 < 2 * s8
        assert s32 < 2 * s16

    def test_standard_tfaw_hurts(self):
        slow = AnalyticalModel(CFG, TIMING, aggressive_tfaw=False)
        fast = AnalyticalModel(CFG, TIMING, aggressive_tfaw=True)
        assert slow.predicted_speedup() < fast.predicted_speedup()

    def test_bank_count_validated(self, model):
        with pytest.raises(ConfigurationError):
            model.activation_overhead(6)
        with pytest.raises(ConfigurationError):
            model.predicted_speedup(-4)


class TestLayerModel:
    def test_layer_cycles_scale_with_rows(self, model):
        """Adding tiles adds exactly one steady-state row time each
        (the GWRITE loading is a per-chunk constant)."""
        small = model.predicted_layer_cycles(16, 512)
        big = model.predicted_layer_cycles(160, 512)
        assert big - small == pytest.approx(9 * model.t_newton_row())

    def test_layer_cycles_scale_with_chunks(self, model):
        one = model.predicted_layer_cycles(16, 512)
        two = model.predicted_layer_cycles(16, 1024)
        assert two == pytest.approx(2 * one, rel=0.01)

    def test_channel_partitioning(self, model):
        whole = model.predicted_layer_cycles(160, 512, channels=1)
        split = model.predicted_layer_cycles(160, 512, channels=2)
        assert split == pytest.approx(whole / 2, rel=0.1)

    def test_partial_chunk_cheaper(self, model):
        full = model.predicted_layer_cycles(16, 512)
        half = model.predicted_layer_cycles(16, 256)
        assert half < full

    def test_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.predicted_layer_cycles(0, 4)
        with pytest.raises(ConfigurationError):
            model.predicted_layer_cycles(4, 4, channels=0)
