"""The Titan-V-like GPU roofline model and its calibration anchors."""

import pytest

from repro.baselines.gpu import GpuModel, titan_v_like
from repro.baselines.ideal_nonpim import IdealNonPim
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing
from repro.errors import ConfigurationError

CFG = hbm2e_like_config(num_channels=24)
TIMING = hbm2e_like_timing()


@pytest.fixture
def gpu():
    return titan_v_like(CFG, TIMING)


class TestCalibration:
    def test_ideal_nonpim_is_5_4x_faster_at_batch_1(self, gpu):
        """The paper's published mean gap between Ideal Non-PIM and the
        GPU — the model's primary calibration anchor."""
        ideal = IdealNonPim(CFG, TIMING)
        ratio = gpu.gemv_cycles(4096, 1024) / ideal.gemv_cycles(4096, 1024)
        assert ratio == pytest.approx(5.4, rel=0.02)

    def test_small_kernels_less_efficient(self, gpu):
        """A 512x256 GEMV cannot fill 80 SMs: per-byte time is worse."""
        big_per_byte = gpu.gemv_cycles(4096, 1024) / (4096 * 1024)
        small_per_byte = gpu.gemv_cycles(512, 256) / (512 * 256)
        assert small_per_byte > 2 * big_per_byte

    def test_batch_improves_per_input_time_sublinearly(self, gpu):
        per1 = gpu.gemv_cycles_per_input(4096, 1024, batch=1)
        per64 = gpu.gemv_cycles_per_input(4096, 1024, batch=64)
        improvement = per1 / per64
        assert 40 < improvement < 64  # sublinear in k

    def test_compute_roofline_binds_eventually(self):
        gpu = GpuModel(CFG, TIMING, peak_flops_per_cycle=100.0)
        # With tiny compute throughput, big batches become compute-bound:
        # per-input time stops improving.
        per64 = gpu.gemv_cycles_per_input(4096, 1024, batch=64)
        per128 = gpu.gemv_cycles_per_input(4096, 1024, batch=128)
        assert per128 == pytest.approx(per64, rel=0.05)


class TestValidation:
    def test_efficiency_bounds(self):
        with pytest.raises(ConfigurationError):
            GpuModel(CFG, TIMING, gemv_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            GpuModel(CFG, TIMING, gemv_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            GpuModel(CFG, TIMING, batch_decay=0.1)
        with pytest.raises(ConfigurationError):
            GpuModel(CFG, TIMING, refresh_derate=0.9)

    def test_dimension_validation(self, gpu):
        with pytest.raises(ConfigurationError):
            gpu.gemv_cycles(0, 4)
        with pytest.raises(ConfigurationError):
            gpu.efficiency_at_batch(0)

    def test_host_op_roofline(self, gpu):
        compute_bound = gpu.host_op_cycles(flops=10**9, traffic_bytes=10)
        assert compute_bound == pytest.approx(
            10**9 / (gpu.peak_flops_per_cycle * gpu.compute_efficiency)
        )
        memory_bound = gpu.host_op_cycles(flops=10, traffic_bytes=10**9)
        assert memory_bound == pytest.approx(10**9 / gpu.bytes_per_cycle())
        with pytest.raises(ConfigurationError):
            gpu.host_op_cycles(-1, 0)

    def test_saturation_factor_monotone(self, gpu):
        assert gpu.saturation_factor(10**9) == 1.0
        assert 0 < gpu.saturation_factor(10**5) < gpu.saturation_factor(10**6) < 1.0
