"""Ideal Non-PIM: the bandwidth-bound upper baseline."""

import pytest

from repro.baselines.ideal_nonpim import IdealNonPim
from repro.dram.config import hbm2e_like_config
from repro.dram.timing import hbm2e_like_timing
from repro.errors import ConfigurationError


@pytest.fixture
def ideal():
    return IdealNonPim(hbm2e_like_config(num_channels=24), hbm2e_like_timing())


class TestIdealNonPim:
    def test_bandwidth(self, ideal):
        # 24 channels x 32 B per 4 cycles = 192 B/cycle.
        assert ideal.bytes_per_cycle() == pytest.approx(192.0)

    def test_time_is_matrix_transfer(self, ideal):
        m, n = 4096, 1024
        cycles = ideal.gemv_cycles(m, n)
        expected = 2 * m * n / 192.0 * ideal.refresh_derate()
        assert cycles == pytest.approx(expected)

    def test_batch_amortizes_matrix(self, ideal):
        """Per-input time falls as 1/k (the Figure 11 effect)."""
        per1 = ideal.gemv_cycles_per_input(4096, 1024, batch=1)
        per8 = ideal.gemv_cycles_per_input(4096, 1024, batch=8)
        assert per8 == pytest.approx(per1 / 8)

    def test_refresh_derate(self, ideal):
        assert ideal.refresh_derate() > 1.0
        no_refresh = IdealNonPim(ideal.config, ideal.timing, refresh_enabled=False)
        assert no_refresh.refresh_derate() == 1.0
        assert no_refresh.gemv_cycles(64, 64) < ideal.gemv_cycles(64, 64)

    def test_model_cycles(self, ideal):
        assert ideal.model_cycles(192) == pytest.approx(ideal.refresh_derate())

    def test_validation(self, ideal):
        with pytest.raises(ConfigurationError):
            ideal.gemv_cycles(0, 4)
        with pytest.raises(ConfigurationError):
            ideal.gemv_cycles(4, 4, batch=0)
        with pytest.raises(ConfigurationError):
            ideal.model_cycles(0)

    def test_scales_with_channels(self):
        timing = hbm2e_like_timing()
        one = IdealNonPim(hbm2e_like_config(num_channels=1), timing)
        four = IdealNonPim(hbm2e_like_config(num_channels=4), timing)
        assert one.gemv_cycles(64, 512) == pytest.approx(
            4 * four.gemv_cycles(64, 512)
        )
